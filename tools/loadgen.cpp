// HTTP load generator over the epoll load engine (src/http/load_client).
//
// Drives N concurrent keep-alive connections against a server from one
// thread, closed-loop by default or open-loop at a fixed request rate,
// and prints one JSON report line (rps + latency percentiles).
//
//   build/tools/loadgen --port 8080 --connections 100 --duration-ms 5000
//   build/tools/loadgen --port 8080 --connections 1000 --rps 5000 \
//       --target /portal?q=hello
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "http/load_client.hpp"
#include "util/error.hpp"

using namespace wsc;

int main(int argc, char** argv) {
  http::LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<std::uint16_t>(std::atoi(next("--port")));
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      options.connections =
          static_cast<std::size_t>(std::atol(next("--connections")));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0) {
      options.duration =
          std::chrono::milliseconds(std::atol(next("--duration-ms")));
    } else if (std::strcmp(argv[i], "--warmup-ms") == 0) {
      options.warmup =
          std::chrono::milliseconds(std::atol(next("--warmup-ms")));
    } else if (std::strcmp(argv[i], "--rps") == 0) {
      options.open_rps = std::atof(next("--rps"));
    } else if (std::strcmp(argv[i], "--target") == 0) {
      options.target = next("--target");
    } else if (std::strcmp(argv[i], "--method") == 0) {
      options.method = next("--method");
    } else if (std::strcmp(argv[i], "--body") == 0) {
      options.body = next("--body");
    } else {
      std::fprintf(stderr,
                   "usage: %s --port N [--host H] [--connections N]\n"
                   "  [--duration-ms N] [--warmup-ms N] [--rps R (open loop)]\n"
                   "  [--target /path] [--method GET] [--body S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }
  try {
    http::LoadReport report = http::run_load(options);
    std::printf("%s\n", report.json().c_str());
    return report.connected == 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 1;
  }
}
