// serve_services — host every built-in dummy Web service on one HTTP
// server, for interactive use with soapcall / wsdl_export or any external
// SOAP client.
//
//   build/tools/serve_services [port]        (default: auto-assign)
//
// Endpoints:  /soap/google  /soap/amazon  /soap/quotes  /soap/news
// Add --multiref to emit Axis-style multiRef responses.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "http/server.hpp"
#include "services/amazon/service.hpp"
#include "services/google/service.hpp"
#include "services/news/service.hpp"
#include "services/quotes/service.hpp"
#include "transport/soap_http.hpp"
#include "util/strings.hpp"

using namespace wsc;

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  bool multiref = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--multiref") == 0) {
      multiref = true;
    } else {
      port = static_cast<std::uint16_t>(util::parse_i32(argv[i]));
    }
  }

  auto google = services::google::make_google_service(
      std::make_shared<services::google::GoogleBackend>());
  auto amazon = services::amazon::make_amazon_service(
      std::make_shared<services::amazon::AmazonBackend>());
  auto quotes = services::quotes::make_quotes_service(
      std::make_shared<services::quotes::QuoteBackend>());
  auto news = services::news::make_news_service(
      std::make_shared<services::news::NewsBackend>());
  for (auto& service : {google, amazon, quotes, news})
    service->set_multiref_responses(multiref);

  // One server, one handler routing by path.
  auto h_google = transport::make_soap_handler("/soap/google", google);
  auto h_amazon = transport::make_soap_handler("/soap/amazon", amazon);
  auto h_quotes = transport::make_soap_handler("/soap/quotes", quotes);
  auto h_news = transport::make_soap_handler("/soap/news", news);
  http::HttpServer server(port, [=](const http::Request& request) {
    if (util::starts_with(request.target, "/soap/google")) return h_google(request);
    if (util::starts_with(request.target, "/soap/amazon")) return h_amazon(request);
    if (util::starts_with(request.target, "/soap/quotes")) return h_quotes(request);
    if (util::starts_with(request.target, "/soap/news")) return h_news(request);
    http::Response r;
    r.status = 404;
    r.body = "services: /soap/google /soap/amazon /soap/quotes /soap/news";
    return r;
  });
  server.start();

  std::printf("serving dummy Web services (%s responses):\n",
              multiref ? "multiRef" : "inline");
  for (const char* name : {"google", "amazon", "quotes", "news"})
    std::printf("  %s/soap/%s\n", server.base_url().c_str(), name);
  std::printf("try:\n  build/tools/soapcall %s/soap/google google "
              "doSpellingSuggestion key=k phrase='web servies' --twice\n",
              server.base_url().c_str());
  std::fflush(stdout);

  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}
