// soapcall — generic dynamic invoker: call any operation of a built-in
// service contract over HTTP, building parameters from the command line
// and rendering the result reflectively.
//
//   build/tools/soapcall <endpoint-url> <google|amazon|quotes|news> \
//                        <operation> [name=value ...] [--xml] [--twice]
//
//   --xml    print the raw response document instead of the decoded object
//   --twice  invoke twice through a response cache and report the hit
//
// Example against a locally served dummy (see examples/quickstart):
//   build/tools/soapcall http://127.0.0.1:8080/soap/google google \
//       doSpellingSuggestion key=k phrase="web servies" --twice
#include <cstdio>
#include <cstring>
#include <string>

#include "core/client.hpp"
#include "reflect/algorithms.hpp"
#include "services/amazon/service.hpp"
#include "services/google/service.hpp"
#include "services/news/service.hpp"
#include "services/quotes/service.hpp"
#include "soap/serializer.hpp"
#include "transport/http_transport.hpp"
#include "util/strings.hpp"

using namespace wsc;
using reflect::Object;

namespace {

std::shared_ptr<const wsdl::ServiceDescription> description_for(
    const std::string& name) {
  if (name == "google") return services::google::google_description();
  if (name == "amazon") return services::amazon::amazon_description();
  if (name == "quotes") return services::quotes::quotes_description();
  if (name == "news") return services::news::news_description();
  return nullptr;
}

/// Build a parameter object from its WSDL-declared type and a CLI string.
Object parse_value(const reflect::TypeInfo& type, const std::string& text) {
  using reflect::Kind;
  switch (type.kind) {
    case Kind::Bool: return Object::make(util::parse_bool(text));
    case Kind::Int32: return Object::make(util::parse_i32(text));
    case Kind::Int64: return Object::make(util::parse_i64(text));
    case Kind::Double: return Object::make(util::parse_double(text));
    case Kind::String: return Object::make(text);
    default:
      throw Error("soapcall: cannot build '" + type.name +
                  "' parameters from the command line");
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <endpoint-url> <google|amazon|quotes|news> "
               "<operation> [name=value ...] [--xml] [--twice]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage(argv[0]);
  std::string endpoint = argv[1];
  auto description = description_for(argv[2]);
  if (!description) return usage(argv[0]);
  std::string operation = argv[3];

  bool want_xml = false, twice = false;
  std::vector<soap::Parameter> params;
  try {
    const wsdl::OperationInfo& op = description->require_operation(operation);
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--xml") == 0) {
        want_xml = true;
        continue;
      }
      if (std::strcmp(argv[i], "--twice") == 0) {
        twice = true;
        continue;
      }
      std::string arg = argv[i];
      auto eq = arg.find('=');
      if (eq == std::string::npos) return usage(argv[0]);
      std::string name = arg.substr(0, eq);
      const wsdl::ParamSpec* spec = op.param(name);
      if (!spec) {
        std::fprintf(stderr, "operation '%s' has no parameter '%s'\n",
                     operation.c_str(), name.c_str());
        return 2;
      }
      params.push_back({name, parse_value(*spec->type, arg.substr(eq + 1))});
    }
    if (params.size() != op.params.size()) {
      std::fprintf(stderr, "operation '%s' needs %zu parameters, got %zu\n",
                   operation.c_str(), op.params.size(), params.size());
      return 2;
    }

    if (want_xml) {
      // Raw round trip, no decoding.
      soap::RpcRequest request;
      request.endpoint = endpoint;
      request.ns = description->target_namespace();
      request.operation = operation;
      request.params = params;
      transport::HttpTransport transport;
      transport::WireResponse wire =
          transport.post(util::Uri::parse(endpoint),
                         request.ns + "#" + operation,
                         soap::serialize_request(request));
      std::fwrite(wire.body.data(), 1, wire.body.size(), stdout);
      std::fputc('\n', stdout);
      return 0;
    }

    cache::CachingServiceClient::Options options;
    options.policy.cacheable(operation, std::chrono::hours(1));
    auto response_cache = std::make_shared<cache::ResponseCache>();
    cache::CachingServiceClient client(
        std::make_shared<transport::HttpTransport>(), description, endpoint,
        response_cache, options);

    auto invoke_and_print = [&](const char* label) {
      auto t0 = std::chrono::steady_clock::now();
      Object result = client.invoke(operation, params);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      std::string rendered;
      try {
        rendered = reflect::to_string(result);
      } catch (const SerializationError&) {
        rendered = "<" + result.type().name + ", no printable form>";
      }
      std::printf("%s (%.3f ms): %s\n", label, ms, rendered.c_str());
    };
    invoke_and_print("call 1");
    if (twice) {
      invoke_and_print("call 2");
      std::printf("cache: %s\n", response_cache->stats().to_string().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
