// wsdl_export — print the WSDL 1.1 contract of any built-in service.
//
//   build/tools/wsdl_export <google|amazon|quotes|news> [endpoint-url]
//
// The document is produced by wsdl::to_wsdl_xml from the same in-memory
// ServiceDescription the runtime stubs use, so what this prints is, by
// construction, the contract the middleware actually speaks.
#include <cstdio>
#include <cstring>
#include <string>

#include "services/amazon/service.hpp"
#include "services/google/service.hpp"
#include "services/news/service.hpp"
#include "services/quotes/service.hpp"
#include "wsdl/wsdl_writer.hpp"

using namespace wsc;

namespace {

std::shared_ptr<const wsdl::ServiceDescription> description_for(
    const std::string& name) {
  if (name == "google") return services::google::google_description();
  if (name == "amazon") return services::amazon::amazon_description();
  if (name == "quotes") return services::quotes::quotes_description();
  if (name == "news") return services::news::news_description();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <google|amazon|quotes|news> [endpoint-url]\n",
                 argv[0]);
    return 2;
  }
  auto description = description_for(argv[1]);
  if (!description) {
    std::fprintf(stderr, "unknown service '%s'\n", argv[1]);
    return 2;
  }
  std::string endpoint =
      argc > 2 ? argv[2] : "http://localhost:8080/soap/" + std::string(argv[1]);
  std::string doc = wsdl::to_wsdl_xml(*description, endpoint);
  std::fwrite(doc.data(), 1, doc.size(), stdout);
  std::fputc('\n', stdout);
  return 0;
}
