// cachetop — a top(1)-style live view of the portal's cache telemetry.
//
// Polls the admin endpoints a running portal_site (or anything using
// PortalSite's handler) exposes:
//
//   /metrics   lifetime + rolling-window counters (Prometheus text)
//   /profiles  per-(service, operation, representation) cost rows,
//              hot keys, cache footprint (JSON)
//   /adaptive  adaptive representation policy state (JSON; optional —
//              older portals without the endpoint just lose the column)
//   /events    recent structured events (JSON)
//
// and redraws a terminal dashboard every --interval seconds.  `--once`
// prints a single frame without clearing the screen (CI smoke mode) and
// exits non-zero if any endpoint is unreachable or malformed.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "http/client.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/uri.hpp"

using namespace wsc;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  double interval_s = 2.0;
  bool once = false;
  std::size_t keys = 10;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--url http://host:port] [--host H] [--port P]\n"
               "          [--interval SECONDS] [--keys N] [--once]\n",
               argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--url") == 0) {
      util::Uri uri = util::Uri::parse(next(i));
      args.host = uri.host;
      args.port = uri.effective_port();
    } else if (std::strcmp(argv[i], "--host") == 0) {
      args.host = next(i);
    } else if (std::strcmp(argv[i], "--port") == 0) {
      args.port = static_cast<std::uint16_t>(std::atoi(next(i)));
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      args.interval_s = std::atof(next(i));
    } else if (std::strcmp(argv[i], "--keys") == 0) {
      args.keys = static_cast<std::size_t>(std::atoi(next(i)));
    } else if (std::strcmp(argv[i], "--once") == 0) {
      args.once = true;
    } else {
      usage(argv[0]);
    }
  }
  return args;
}

std::string fetch(http::HttpConnection& conn, const std::string& path) {
  http::Request request;
  request.target = path;
  request.headers.set("Host", conn.host());
  http::Response response = conn.round_trip(request);
  if (response.status != 200)
    throw Error("GET " + path + " -> HTTP " + std::to_string(response.status));
  return response.body;
}

/// Value of the first sample line `<name> <value>` (no labels) in a
/// Prometheus text exposition; 0 when absent.
double prom_value(const std::string& text, std::string_view name) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line(text.data() + pos, eol - pos);
    if (line.size() > name.size() + 1 && line.substr(0, name.size()) == name &&
        line[name.size()] == ' ')
      return std::strtod(line.data() + name.size() + 1, nullptr);
    pos = eol + 1;
  }
  return 0;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int u = 0;
  while (bytes >= 1024 && u < 3) {
    bytes /= 1024;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%s", bytes, units[u]);
  return buf;
}

/// The adaptive candidate entry for (operation, representation), if the
/// policy tracks it.
const util::json::Value* adaptive_candidate(const util::json::Value& adaptive,
                                            const std::string& operation,
                                            const std::string& representation) {
  const util::json::Value* ops = adaptive.find("operations");
  if (!ops) return nullptr;
  for (const util::json::Value& op : ops->array) {
    if (op.string_or("operation") != operation) continue;
    if (const util::json::Value* cands = op.find("candidates"))
      for (const util::json::Value& c : cands->array)
        if (c.string_or("representation") == representation) return &c;
    return nullptr;
  }
  return nullptr;
}

/// The operation's current serving representation per the policy ("" when
/// unmanaged).
std::string adaptive_current(const util::json::Value& adaptive,
                             const std::string& operation) {
  if (const util::json::Value* ops = adaptive.find("operations"))
    for (const util::json::Value& op : ops->array)
      if (op.string_or("operation") == operation)
        return op.string_or("representation");
  return "";
}

void draw_frame(const Args& args, const std::string& prom,
                const util::json::Value& profiles,
                const util::json::Value& adaptive,
                const util::json::Value& events) {
  const double hits = prom_value(prom, "wsc_cache_hits_total");
  const double misses = prom_value(prom, "wsc_cache_misses_total");
  // The cache counters are collector samples (no windowed twin in the
  // exposition); the rolling view comes from the profile rows instead.
  double hits_w = 0, misses_w = 0;
  if (const util::json::Value* rows = profiles.find("rows")) {
    for (const util::json::Value& row : rows->array) {
      hits_w += row.number_or("window_hits");
      misses_w += row.number_or("window_misses");
    }
  }
  const double lookups = hits + misses;
  const double lookups_w = hits_w + misses_w;

  std::printf("cachetop — %s:%u\n", args.host.c_str(), args.port);
  std::printf(
      "lifetime: %.0f lookups, %.1f%% hit | last %s: %.0f lookups, %.1f%% "
      "hit\n",
      lookups, lookups ? 100.0 * hits / lookups : 0.0,
      profiles.string_or("window", "60s").c_str(), lookups_w,
      lookups_w ? 100.0 * hits_w / lookups_w : 0.0);
  std::printf(
      "stores %.0f  evictions %.0f  stale serves %.0f  retries %.0f  "
      "breaker opens %.0f\n",
      prom_value(prom, "wsc_cache_stores_total"),
      prom_value(prom, "wsc_cache_evictions_total"),
      prom_value(prom, "wsc_cache_stale_serves_total"),
      prom_value(prom, "wsc_cache_transport_retries_total"),
      prom_value(prom, "wsc_cache_breaker_opens_total"));
  std::printf(
      "anti-herd: coalesced waits %.0f (%.0f failed)  swr serves %.0f  "
      "refresh-ahead %.0f\n",
      prom_value(prom, "wsc_cache_coalesced_waits_total"),
      prom_value(prom, "wsc_cache_coalesced_failures_total"),
      prom_value(prom, "wsc_cache_stale_while_revalidate_served_total"),
      prom_value(prom, "wsc_cache_refresh_ahead_triggered_total"));
  if (const util::json::Value* cache = profiles.find("cache"))
    std::printf("footprint: %.0f entries, %s\n", cache->number_or("entries"),
                human_bytes(cache->number_or("bytes")).c_str());
  if (adaptive.find("operations")) {
    const util::json::Value* pressure = adaptive.find("memory_pressure");
    std::printf(
        "adaptive: objective %s  decisions %.0f  switches %.0f  probes %.0f  "
        "pressure %s\n",
        adaptive.string_or("objective", "?").c_str(),
        adaptive.number_or("decisions"), adaptive.number_or("switches"),
        adaptive.number_or("explore_stores"),
        pressure && pressure->boolean ? "ON" : "off");
  }

  // `*` marks the operation's current serving representation per the
  // adaptive policy; "score" is that candidate's objective score (blank
  // until the policy has enough samples).
  std::printf("\n%-28s %-16s %8s %8s %7s %10s %10s %10s %10s\n", "operation",
              "representation", "hits", "misses", "hit%", "hit p99",
              "deser p99", "bytes/ent", "score");
  if (const util::json::Value* rows = profiles.find("rows")) {
    for (const util::json::Value& row : rows->array) {
      const std::string operation = row.string_or("operation");
      const std::string rep = row.string_or("representation");
      const std::string op = row.string_or("service") + "." + operation;
      const util::json::Value* hit = row.find("hit");
      const util::json::Value* deser = row.find("deserialize");
      const bool serving = adaptive_current(adaptive, operation) == rep;
      const util::json::Value* cand =
          adaptive_candidate(adaptive, operation, rep);
      const double score = cand ? cand->number_or("score", -1) : -1;
      char score_buf[24] = "";
      if (score >= 0) std::snprintf(score_buf, sizeof score_buf, "%.3g", score);
      std::printf(
          "%-28s %-14s%s %8.0f %8.0f %6.1f%% %9.1fus %9.1fus %10.0f %10s\n",
          op.c_str(), rep.c_str(), serving ? " *" : "  ",
          row.number_or("hits"), row.number_or("misses"),
          100.0 * row.number_or("hit_ratio"),
          (hit ? hit->number_or("p99_ns") : 0) / 1e3,
          (deser ? deser->number_or("p99_ns") : 0) / 1e3,
          row.number_or("bytes_per_entry"), score_buf);
    }
  }

  if (const util::json::Value* hot = profiles.find("hot_keys")) {
    std::printf("\nhot keys (count±error):\n");
    std::size_t shown = 0;
    for (const util::json::Value& key : hot->array) {
      if (shown++ >= args.keys) break;
      std::string material = key.string_or("key");
      if (material.size() > 60) material = material.substr(0, 57) + "...";
      std::printf("  %8.0f ±%-6.0f %s\n", key.number_or("count"),
                  key.number_or("error"), material.c_str());
    }
    if (shown == 0) std::printf("  (tracking off or no traffic yet)\n");
  }

  if (const util::json::Value* list = events.find("events")) {
    std::printf("\nrecent events (%.0f dropped):\n",
                events.number_or("dropped"));
    // Newest last in the snapshot; show the tail.
    std::size_t begin =
        list->array.size() > 8 ? list->array.size() - 8 : 0;
    for (std::size_t i = begin; i < list->array.size(); ++i) {
      const util::json::Value& e = list->array[i];
      std::printf("  %6.1fs ago  %-14s %-18s %s\n",
                  e.number_or("age_ms") / 1e3, e.string_or("kind").c_str(),
                  e.string_or("scope").c_str(), e.string_or("detail").c_str());
    }
    if (list->array.empty()) std::printf("  (none)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  http::SocketOptions socket_options;
  socket_options.connect_timeout = std::chrono::seconds(5);
  socket_options.read_timeout = std::chrono::seconds(5);
  socket_options.write_timeout = std::chrono::seconds(5);
  http::HttpConnection conn(args.host, args.port, socket_options);

  for (;;) {
    std::string prom;
    util::json::Value profiles, adaptive, events;
    try {
      prom = fetch(conn, "/metrics");
      profiles = util::json::parse(fetch(conn, "/profiles"));
      events = util::json::parse(fetch(conn, "/events"));
      // Optional endpoint: a portal predating the adaptive policy still
      // renders everything else.
      try {
        adaptive = util::json::parse(fetch(conn, "/adaptive"));
      } catch (const std::exception&) {
        adaptive = util::json::Value{};
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cachetop: %s\n", error.what());
      if (args.once) return 1;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(args.interval_s));
      continue;
    }
    if (!args.once) std::printf("\x1b[2J\x1b[H");  // clear + home
    draw_frame(args, prom, profiles, adaptive, events);
    std::fflush(stdout);
    if (args.once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(args.interval_s));
  }
}
