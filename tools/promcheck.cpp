// promcheck: validate Prometheus text exposition format (version 0.0.4).
//
//   promcheck <file>     validate a saved scrape
//   promcheck            validate stdin (e.g. curl .../metrics | promcheck)
//
// Exit 0 and "OK (<n> bytes)" when the input parses; exit 1 with the first
// violation otherwise.  CI pipes the portal's /metrics endpoint through
// this after the smoke run.
#include <cstdio>
#include <optional>
#include <string>

#include "obs/promcheck.hpp"

int main(int argc, char** argv) {
  std::string input;
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "rb");
    if (!f) {
      std::fprintf(stderr, "promcheck: cannot open '%s'\n", argv[1]);
      return 2;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) input.append(buf, n);
    std::fclose(f);
  } else {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) input.append(buf, n);
  }

  if (std::optional<std::string> error = wsc::obs::validate_prometheus_text(input)) {
    std::fprintf(stderr, "promcheck: %s\n", error->c_str());
    return 1;
  }
  std::printf("OK (%zu bytes)\n", input.size());
  return 0;
}
