// Portal-site scenario (paper §5.2, Figure 2), live:
//
//   load simulator --HTTP--> portal site --SOAP/HTTP--> dummy Google WS
//
// Runs the full topology on loopback, sweeps the cache-hit ratio for a
// chosen representation, and prints throughput / response-time lines like
// the Figure 3 series.  Optionally serves the portal for manual browsing.
//
//   build/examples/portal_site                 # run the sweep and exit
//   build/examples/portal_site --serve         # keep serving (ctrl-C quits)
//   build/examples/portal_site --port 8080     # pin the portal listen port
//   build/examples/portal_site --no-sweep      # skip the sweep (CI smoke)
//   build/examples/portal_site --mode threaded # thread-per-connection server
//                                              # (default: epoll reactor)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "http/server.hpp"
#include "portal/load_sim.hpp"
#include "portal/portal.hpp"
#include "services/google/service.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"

using namespace wsc;

int main(int argc, char** argv) {
  bool serve = false;
  bool sweep = true;
  int port = 0;  // 0 = ephemeral
  http::ServerOptions server_options;
  server_options.mode = http::ServerOptions::Mode::Reactor;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mode") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (std::strcmp(mode, "threaded") == 0) {
        server_options.mode = http::ServerOptions::Mode::Threaded;
      } else if (std::strcmp(mode, "reactor") == 0) {
        server_options.mode = http::ServerOptions::Mode::Reactor;
      } else {
        std::fprintf(stderr, "unknown --mode %s\n", mode);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--serve] [--no-sweep] [--port N] "
                   "[--mode threaded|reactor]\n",
                   argv[0]);
      return 2;
    }
  }

  // Backend: dummy Google Web service on its own HTTP server.
  auto backend = std::make_shared<services::google::GoogleBackend>();
  auto soap_server = transport::serve_soap(
      0, "/soap/google", services::google::make_google_service(backend));
  std::string backend_endpoint = soap_server->base_url() + "/soap/google";
  std::printf("backend Google WS : %s\n", backend_endpoint.c_str());

  // Portal: caching client middleware with the section-6 Auto policy.
  portal::PortalConfig config;
  config.backend_endpoint = backend_endpoint;
  config.transport = std::make_shared<transport::HttpTransport>();
  config.options.key_method = cache::KeyMethod::ToString;
  config.options.policy = services::google::default_google_policy();
  portal::PortalSite site(std::move(config));
  http::HttpServer portal_server(static_cast<std::uint16_t>(port),
                                 site.handler(), server_options);
  site.attach_server(portal_server);
  portal_server.start();
  std::printf("portal mode       : %s\n",
              server_options.mode == http::ServerOptions::Mode::Reactor
                  ? "reactor (epoll)"
                  : "threaded");
  std::printf("portal site       : %s/portal?q=anything\n",
              portal_server.base_url().c_str());
  std::printf("admin endpoints   : %s/stats  %s/metrics  %s/adaptive\n\n",
              portal_server.base_url().c_str(),
              portal_server.base_url().c_str(),
              portal_server.base_url().c_str());

  if (sweep) {
    std::printf(
        "hit%%   throughput     mean    p95   (cache: auto representation)\n");
    for (int hit = 0; hit <= 100; hit += 25) {
      site.response_cache().clear();
      portal::LoadConfig load;
      load.concurrency = 4;
      load.requests_per_client = 50;
      load.hit_ratio = hit / 100.0;
      load.hot_set_size = 8;
      portal::LoadReport report =
          portal::run_load_http(portal_server.base_url(), load);
      std::printf("%3d%%  %9.0f/s  %6.2fms %6.2fms\n", hit,
                  report.throughput_rps, report.mean_response_ms(),
                  static_cast<double>(report.latency.percentile(0.95)) / 1e6);
    }
    std::printf("\nfinal cache state: %s\n",
                site.response_cache().stats().to_string().c_str());
  }

  if (serve) {
    std::printf("\nserving; open %s/portal?q=hello (ctrl-C to quit)\n",
                portal_server.base_url().c_str());
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }
  portal_server.stop();
  soap_server->stop();
  return 0;
}
