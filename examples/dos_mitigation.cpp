// DoS absorption (paper §3.2): "response caching, which reduces the
// processing overhead, is effective against denial of service (DoS)
// attacks that send the same requests repeatedly."
//
// Floods the dummy Google service with identical requests through two
// portals — one with the cache disabled, one with a 1-second TTL — and
// compares how much load reaches the backend and what the attacker's
// flood does to throughput.
//
//   build/examples/dos_mitigation
#include <chrono>
#include <cstdio>

#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"

using namespace wsc;
using services::google::GoogleBackend;
using services::google::GoogleClient;

namespace {

struct FloodResult {
  double seconds;
  cache::StatsSnapshot stats;
};

FloodResult flood(const std::string& endpoint, bool caching, int requests) {
  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy(
      cache::Representation::Auto, std::chrono::seconds(1));
  options.caching_enabled = caching;
  auto response_cache = std::make_shared<cache::ResponseCache>();
  GoogleClient client(std::make_shared<transport::HttpTransport>(), endpoint,
                      response_cache, options);

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    client.doGoogleSearch("the same malicious query, over and over");
  }
  auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(),
          response_cache->stats()};
}

}  // namespace

int main() {
  auto backend = std::make_shared<GoogleBackend>();
  auto server = transport::serve_soap(
      0, "/soap/google", services::google::make_google_service(backend));
  std::string endpoint = server->base_url() + "/soap/google";

  const int kRequests = 3000;
  std::printf("flooding with %d identical doGoogleSearch requests...\n\n",
              kRequests);

  FloodResult uncached = flood(endpoint, /*caching=*/false, kRequests);
  std::printf("cache OFF: %6.2fs  (%7.0f req/s)  backend saw %d requests\n",
              uncached.seconds, kRequests / uncached.seconds, kRequests);

  FloodResult cached = flood(endpoint, /*caching=*/true, kRequests);
  std::printf("cache ON : %6.2fs  (%7.0f req/s)  backend saw %llu requests\n",
              cached.seconds, kRequests / cached.seconds,
              static_cast<unsigned long long>(cached.stats.misses));

  std::printf("\nabsorption: %.2f%% of the flood never reached the service\n",
              100.0 * (1.0 - static_cast<double>(cached.stats.misses) /
                                 static_cast<double>(kRequests)));
  std::printf("speedup under attack: %.1fx\n",
              uncached.seconds / cached.seconds);

  server->stop();
  return 0;
}
