// Quickstart: call the dummy Google Web service through the caching client
// middleware and watch the representations at work.
//
//   build/examples/quickstart
//
// Starts an in-process HTTP server hosting the dummy Google service (the
// Tomcat+Axis stand-in), creates a caching client with the section-6 Auto
// representation, then issues repeated identical requests to show the
// miss -> hit transition and the cost difference.
#include <chrono>
#include <cstdio>

#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"
#include "wsdl/wsdl_writer.hpp"

using namespace wsc;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  // --- server side: dummy Google Web service over HTTP ---------------------
  auto backend = std::make_shared<services::google::GoogleBackend>();
  auto service = services::google::make_google_service(backend);
  auto server = transport::serve_soap(/*port=*/0, "/soap/google", service);
  std::string endpoint = server->base_url() + "/soap/google";
  std::printf("dummy Google Web service listening at %s\n", endpoint.c_str());

  // The service publishes standard WSDL 1.1 (interoperability first).
  std::string wsdl_doc =
      wsdl::to_wsdl_xml(*services::google::google_description(), endpoint);
  std::printf("WSDL contract: %zu bytes (rpc/encoded, SOAP 1.1)\n\n",
              wsdl_doc.size());

  // --- client side: caching middleware --------------------------------------
  cache::CachingServiceClient::Options options;
  options.key_method = cache::KeyMethod::ToString;
  options.policy = services::google::default_google_policy();  // Auto, 1h TTL
  auto response_cache = std::make_shared<cache::ResponseCache>();

  services::google::GoogleClient google(
      std::make_shared<transport::HttpTransport>(), endpoint, response_cache,
      options);

  // --- the application: three operations, twice each -------------------------
  for (int round = 1; round <= 2; ++round) {
    std::printf("--- round %d (%s) ---\n", round,
                round == 1 ? "cache misses: full SOAP round trips"
                           : "cache hits: served from the response cache");

    auto t0 = std::chrono::steady_clock::now();
    std::string suggestion = google.doSpellingSuggestion("web servies caching");
    std::printf("doSpellingSuggestion -> \"%s\"  (%.3f ms)\n",
                suggestion.c_str(), ms_since(t0));

    t0 = std::chrono::steady_clock::now();
    auto page = google.doGetCachedPage("http://example.com/index.html");
    std::printf("doGetCachedPage      -> %zu bytes  (%.3f ms)\n", page.size(),
                ms_since(t0));

    t0 = std::chrono::steady_clock::now();
    auto result = google.doGoogleSearch("response caching middleware");
    std::printf("doGoogleSearch       -> %d results of ~%d  (%.3f ms)\n",
                static_cast<int>(result.resultElements.size()),
                result.estimatedTotalResultsCount, ms_since(t0));
  }

  std::printf("\ncache: %s\n", response_cache->stats().to_string().c_str());
  server->stop();
  return 0;
}
