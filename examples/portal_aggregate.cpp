// The paper's FULL intro scenario: "Assume that the portal site uses
// several back-end services, such as stock quote services, search
// services, and news services ... the portal site sends requests to the
// servers of companies that provide these services."
//
// One portal page aggregates three SOAP backends — Google search, stock
// quotes, news — through a single shared response cache, with per-service
// TTLs chosen by the administrator (search: 1 h, news: 5 min, quotes: 5 s).
//
//   build/examples/portal_aggregate
#include <cstdio>

#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "services/news/service.hpp"
#include "services/quotes/service.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"

using namespace wsc;
using reflect::Object;
using soap::Parameter;

namespace {

/// The aggregated page: three backend calls through one cache.
struct AggregatePortal {
  AggregatePortal(const std::string& google_ep, const std::string& quotes_ep,
                  const std::string& news_ep)
      : shared_cache(std::make_shared<cache::ResponseCache>()),
        transport(std::make_shared<transport::HttpTransport>()),
        google_client(
            transport, google_ep, shared_cache,
            [] {
              cache::CachingServiceClient::Options o;
              o.policy = services::google::default_google_policy();
              return o;
            }()),
        quote_client(
            transport, services::quotes::quotes_description(), quotes_ep,
            shared_cache,
            [] {
              cache::CachingServiceClient::Options o;
              o.policy = services::quotes::default_quotes_policy();
              return o;
            }()),
        news_client(
            transport, services::news::news_description(), news_ep,
            shared_cache,
            [] {
              cache::CachingServiceClient::Options o;
              o.policy = services::news::default_news_policy();
              return o;
            }()) {}

  std::string render(const std::string& query) {
    auto search = google_client.doGoogleSearch(query);
    Object quotes = quote_client.invoke(
        "GetQuotes", {{"symbols", Object::make(std::string("IBM,MSFT,SUNW"))}});
    Object feed = news_client.invoke(
        "TopHeadlines",
        {{"topic", Object::make(query)}, {"count", Object::make(std::int32_t{3})}});

    std::string page = "== results for '" + query + "' ==\n";
    for (const auto& e : search.resultElements)
      page += "  " + e.title + "  (" + e.hostName + ")\n";
    page += "== markets ==\n";
    for (const auto& q : quotes.as<services::quotes::QuoteBatch>().quotes) {
      char line[96];
      std::snprintf(line, sizeof(line), "  %-5s %8.2f (%+.2f)\n",
                    q.symbol.c_str(), q.last, q.change);
      page += line;
    }
    page += "== headlines ==\n";
    for (const auto& h : feed.as<services::news::NewsFeed>().headlines)
      page += "  " + h.title + " [" + h.source + "]\n";
    return page;
  }

  std::shared_ptr<cache::ResponseCache> shared_cache;
  std::shared_ptr<transport::HttpTransport> transport;
  services::google::GoogleClient google_client;
  cache::CachingServiceClient quote_client;
  cache::CachingServiceClient news_client;
};

}  // namespace

int main() {
  // Three independent provider companies, three HTTP servers.
  auto google_backend = std::make_shared<services::google::GoogleBackend>();
  auto google_server = transport::serve_soap(
      0, "/soap", services::google::make_google_service(google_backend));
  auto quote_backend = std::make_shared<services::quotes::QuoteBackend>();
  auto quotes_server = transport::serve_soap(
      0, "/soap", services::quotes::make_quotes_service(quote_backend));
  auto news_backend = std::make_shared<services::news::NewsBackend>();
  auto news_server = transport::serve_soap(
      0, "/soap", services::news::make_news_service(news_backend));

  AggregatePortal portal(google_server->base_url() + "/soap",
                         quotes_server->base_url() + "/soap",
                         news_server->base_url() + "/soap");

  std::printf("--- first page render: 3 backend SOAP calls (all misses) ---\n");
  std::printf("%s\n", portal.render("web services").c_str());
  std::printf("cache: %s\n\n", portal.shared_cache->stats().to_string().c_str());

  std::printf("--- same page again: all three served from one cache ---\n");
  portal.render("web services");
  std::printf("cache: %s\n", portal.shared_cache->stats().to_string().c_str());

  google_server->stop();
  quotes_server->stop();
  news_server->stop();
  return 0;
}
