// Cache policy in practice (paper §3.2 / Table 1): the Amazon Web services
// operation list split into cacheable searches and uncacheable cart calls.
//
// Demonstrates:
//   1. the paper's recommended policy working correctly,
//   2. what goes wrong when an administrator caches a stateful operation,
//   3. per-operation TTLs and the stats surface an administrator watches.
//
//   build/examples/amazon_policy
#include <cstdio>

#include "core/client.hpp"
#include "services/amazon/service.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"

using namespace wsc;
using namespace wsc::services::amazon;
using reflect::Object;
using soap::Parameter;

namespace {

std::vector<Parameter> search_params(const std::string& q) {
  return {{"key", Object::make(std::string("demo-key"))},
          {"query", Object::make(q)},
          {"page", Object::make(std::int32_t{1})}};
}

Parameter cart_id(const char* id) {
  return {"cartId", Object::make(std::string(id))};
}

void print_cart(const char* label, const Object& cart) {
  const auto& c = cart.as<ShoppingCart>();
  std::printf("%-28s items=%zu subtotal=$%.2f\n", label, c.items.size(),
              c.subtotal);
}

}  // namespace

int main() {
  auto backend = std::make_shared<AmazonBackend>();
  auto server = transport::serve_soap(0, "/onca/soap", make_amazon_service(backend));
  std::string endpoint = server->base_url() + "/onca/soap";
  std::printf("dummy Amazon Web services at %s\n\n", endpoint.c_str());

  // --- 1. the paper's policy: 20 searches cacheable, 6 cart ops not --------
  cache::CachingServiceClient::Options options;
  options.policy = default_amazon_policy(std::chrono::minutes(10));
  auto response_cache = std::make_shared<cache::ResponseCache>();
  cache::CachingServiceClient client(std::make_shared<transport::HttpTransport>(),
                                     amazon_description(), endpoint,
                                     response_cache, options);

  std::printf("searching twice per operation (second call should hit)...\n");
  for (const std::string& op : {std::string("KeywordSearch"),
                                std::string("AuthorSearch"),
                                std::string("SimilaritySearch")}) {
    client.invoke(op, search_params("icdcs"));
    client.invoke(op, search_params("icdcs"));
  }
  std::printf("after searches: %s\n\n", response_cache->stats().to_string().c_str());

  std::printf("cart operations always reach the server:\n");
  client.invoke("AddShoppingCartItems",
                {cart_id("alice"), {"asin", Object::make(std::string("B000000042"))},
                 {"quantity", Object::make(std::int32_t{2})}});
  print_cart("after AddShoppingCartItems:",
             client.invoke("GetShoppingCart", {cart_id("alice")}));
  client.invoke("RemoveShoppingCartItems",
                {cart_id("alice"), {"asin", Object::make(std::string("B000000042"))}});
  print_cart("after RemoveShoppingCartItems:",
             client.invoke("GetShoppingCart", {cart_id("alice")}));

  // --- 2. the misconfiguration the policy exists to prevent ----------------
  std::printf("\nmisconfigured client (GetShoppingCart cacheable):\n");
  cache::CachingServiceClient::Options bad_options;
  bad_options.policy = default_amazon_policy();
  bad_options.policy.cacheable("GetShoppingCart", std::chrono::minutes(10));
  cache::CachingServiceClient bad_client(
      std::make_shared<transport::HttpTransport>(), amazon_description(),
      endpoint, std::make_shared<cache::ResponseCache>(), bad_options);

  bad_client.invoke("GetShoppingCart", {cart_id("bob")});  // caches empty
  bad_client.invoke("AddShoppingCartItems",
                    {cart_id("bob"), {"asin", Object::make(std::string("B000000099"))},
                     {"quantity", Object::make(std::int32_t{1})}});
  print_cart("stale cached read:",
             bad_client.invoke("GetShoppingCart", {cart_id("bob")}));
  std::printf("  ^ the add is invisible: this is why Table 1 marks cart "
              "operations uncacheable\n");

  server->stop();
  return 0;
}
