// Table 9 — memory size of cached objects (bytes).
//
// Paper:                 Spelling   CachedPage  GoogleSearch
//   XML message              520       5338         5024
//   Java serialized form      21       3611         1914
//   Java object               28       3600          464
//
// Expected shape: XML much larger than serialized/object forms EXCEPT for
// CachedPage, where a single byte array dominates every representation
// ("the size of the object is not very different for the different data
// representations").
//
// Beyond the paper: the two SAX rows compare the legacy string-soup
// EventSequence against the compact arena form under the (now honest)
// memory_size() accounting; the compact form must cost at most half the
// legacy bytes on the GoogleSearch fixture.  All rows are also written to
// BENCH_table9.json (row -> bytes_per_entry) for cross-PR tracking.
#include <cstdio>

#include "bench/common.hpp"
#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"

int main() {
  using namespace wsc;
  using namespace wsc::bench;

  std::vector<OperationCase> cases = google_cases();

  std::printf("Table 9: Memory size of cached objects (bytes)\n");
  std::printf("%-22s  %18s  %18s  %18s\n", "", "SpellingSuggestion",
              "CachedPage", "GoogleSearch");
  std::printf("%-22s  %10s  %6s  %10s  %6s  %10s  %6s\n", "representation",
              "measured", "paper", "measured", "paper", "measured", "paper");

  const int paper_xml[3] = {520, 5338, 5024};
  const int paper_ser[3] = {21, 3611, 1914};
  const int paper_obj[3] = {28, 3600, 464};

  BenchJson json;
  std::size_t xml[3], ser[3], obj[3], sax[3], sax_compact[3];
  for (int i = 0; i < 3; ++i) {
    const OperationCase& c = cases[static_cast<std::size_t>(i)];
    xml[i] = c.response_xml.size();
    ser[i] = reflect::serialize(c.response_object).size();
    obj[i] = reflect::memory_size(c.response_object);
    sax[i] = c.response_events.memory_size();
    sax_compact[i] = c.response_compact_events.memory_size();
    json.add("XML message/" + c.op_name, "bytes_per_entry",
             static_cast<double>(xml[i]));
    json.add("Serialized form/" + c.op_name, "bytes_per_entry",
             static_cast<double>(ser[i]));
    json.add("Application object/" + c.op_name, "bytes_per_entry",
             static_cast<double>(obj[i]));
    json.add("SAX events sequence/" + c.op_name, "bytes_per_entry",
             static_cast<double>(sax[i]));
    json.add("SAX events compact/" + c.op_name, "bytes_per_entry",
             static_cast<double>(sax_compact[i]));
  }

  auto print_row = [&](const char* label, const std::size_t* measured,
                       const int* paper) {
    std::printf("%-22s", label);
    for (int i = 0; i < 3; ++i) {
      if (paper)
        std::printf("  %10zu  %6d", measured[i], paper[i]);
      else
        std::printf("  %10zu  %6s", measured[i], "-");
    }
    std::printf("\n");
  };
  print_row("XML message", xml, paper_xml);
  print_row("Java serialized form", ser, paper_ser);
  print_row("Java object", obj, paper_obj);
  print_row("SAX events sequence", sax, nullptr);
  print_row("SAX events compact", sax_compact, nullptr);

  // Shape checks: XML dominates the serialized form for Spelling and
  // GoogleSearch and exceeds the in-memory object; all three
  // representations are comparable for CachedPage.  (The C++ object row is
  // fatter relative to the paper's Java numbers: every std::string field
  // carries a 32-byte handle, where the paper's instrument reported only
  // payload bytes — see EXPERIMENTS.md.)
  bool ok = xml[0] > 5 * ser[0] && xml[2] > 2 * ser[2] && xml[2] > obj[2];
  double page_ratio = static_cast<double>(xml[1]) / static_cast<double>(ser[1]);
  ok = ok && page_ratio < 2.0;  // base64 expansion only (4/3 + envelope)
  std::printf(
      "\nshape check (XML >> object except byte-array CachedPage): %s\n",
      ok ? "PASS" : "FAIL");

  // Compact-representation claim: at most half the legacy SAX bytes on the
  // GoogleSearch fixture (and never larger on any fixture).
  double compact_ratio =
      static_cast<double>(sax_compact[2]) / static_cast<double>(sax[2]);
  bool compact_ok = compact_ratio <= 0.5;
  for (int i = 0; i < 3; ++i) compact_ok = compact_ok && sax_compact[i] <= sax[i];
  std::printf("compact SAX vs legacy on GoogleSearch: %.1f%% (%s)\n",
              compact_ratio * 100.0, compact_ok ? "PASS <= 50%" : "FAIL");

  json.write_file("BENCH_table9.json");
  return ok && compact_ok ? 0 : 1;
}
