// Table 9 — memory size of cached objects (bytes).
//
// Paper:                 Spelling   CachedPage  GoogleSearch
//   XML message              520       5338         5024
//   Java serialized form      21       3611         1914
//   Java object               28       3600          464
//
// Expected shape: XML much larger than serialized/object forms EXCEPT for
// CachedPage, where a single byte array dominates every representation
// ("the size of the object is not very different for the different data
// representations").
#include <cstdio>

#include "bench/common.hpp"
#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"

int main() {
  using namespace wsc;
  using namespace wsc::bench;

  std::vector<OperationCase> cases = google_cases();

  std::printf("Table 9: Memory size of cached objects (bytes)\n");
  std::printf("%-22s  %18s  %18s  %18s\n", "", "SpellingSuggestion",
              "CachedPage", "GoogleSearch");
  std::printf("%-22s  %10s  %6s  %10s  %6s  %10s  %6s\n", "representation",
              "measured", "paper", "measured", "paper", "measured", "paper");

  const int paper_xml[3] = {520, 5338, 5024};
  const int paper_ser[3] = {21, 3611, 1914};
  const int paper_obj[3] = {28, 3600, 464};

  std::size_t xml[3], ser[3], obj[3];
  for (int i = 0; i < 3; ++i) {
    const OperationCase& c = cases[static_cast<std::size_t>(i)];
    xml[i] = c.response_xml.size();
    ser[i] = reflect::serialize(c.response_object).size();
    obj[i] = reflect::memory_size(c.response_object);
  }

  auto print_row = [&](const char* label, const std::size_t* measured,
                       const int* paper) {
    std::printf("%-22s", label);
    for (int i = 0; i < 3; ++i) std::printf("  %10zu  %6d", measured[i], paper[i]);
    std::printf("\n");
  };
  print_row("XML message", xml, paper_xml);
  print_row("Java serialized form", ser, paper_ser);
  print_row("Java object", obj, paper_obj);

  // Shape checks: XML dominates the serialized form for Spelling and
  // GoogleSearch and exceeds the in-memory object; all three
  // representations are comparable for CachedPage.  (The C++ object row is
  // fatter relative to the paper's Java numbers: every std::string field
  // carries a 32-byte handle, where the paper's instrument reported only
  // payload bytes — see EXPERIMENTS.md.)
  bool ok = xml[0] > 5 * ser[0] && xml[2] > 2 * ser[2] && xml[2] > obj[2];
  double page_ratio = static_cast<double>(xml[1]) / static_cast<double>(ser[1]);
  ok = ok && page_ratio < 2.0;  // base64 expansion only (4/3 + envelope)
  std::printf(
      "\nshape check (XML >> object except byte-array CachedPage): %s\n",
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
