// Ablation J (ISSUE 8) — the thundering herd, with and without the
// single-flight layer.
//
// Experiment A (cold-miss herd): N threads request the SAME uncached key
// at the same instant against a backend that takes a fixed latency per
// call.  With coalescing one leader pays the wire call and N-1 followers
// wait on its flight; without it every thread pays its own call.  The
// metric that matters is backend calls — the acceptance criterion is ONE
// backend call for the full herd.
//
// Experiment B (TTL-expiry storm): a warm hot key expires under sustained
// concurrent traffic.  Without stale-while-revalidate the first wave
// blocks on the refetch (coalescing bounds the backend cost but callers
// still stall); with SWR the stale value is served immediately and ONE
// background refresh renews the entry — no caller ever blocks.
//
// This bench uses real threads and a real (small) backend latency, so it
// measures the actual blocking behaviour rather than a simulation of it.
// Run with --smoke for the CI-sized version (64-thread herd).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/inproc_transport.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

using namespace wsc;
using services::google::GoogleBackend;
using std::chrono::duration_cast;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

namespace {

constexpr const char* kEndpoint = "inproc://google/api";

/// Counts wire calls reaching the (latency-simulating) origin.
class CountingTransport final : public transport::Transport {
 public:
  explicit CountingTransport(std::shared_ptr<Transport> inner)
      : inner_(std::move(inner)) {}
  transport::WireResponse post(const util::Uri& endpoint,
                               const transport::WireRequest& request) override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_->post(endpoint, request);
  }
  using Transport::post;
  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<Transport> inner_;
  std::atomic<std::uint64_t> calls_{0};
};

struct Stack {
  Stack(milliseconds backend_latency, milliseconds ttl, bool coalesce,
        milliseconds swr_grace, double refresh_ahead) {
    backend = std::make_shared<GoogleBackend>();
    auto origin = std::make_shared<transport::InProcessTransport>();
    origin->bind(kEndpoint, services::google::make_google_service(backend));
    origin->set_latency(duration_cast<microseconds>(backend_latency));
    wire = std::make_shared<CountingTransport>(origin);

    response_cache = std::make_shared<cache::ResponseCache>(
        cache::ResponseCache::Config{}, clock);

    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy(
        cache::Representation::Auto, ttl);
    if (swr_grace.count() > 0)
      options.policy.stale_while_revalidate("doSpellingSuggestion", swr_grace);
    if (refresh_ahead > 0.0)
      options.policy.refresh_ahead("doSpellingSuggestion", refresh_ahead);
    options.coalesce_misses = coalesce;
    client = std::make_unique<services::google::GoogleClient>(
        wire, kEndpoint, response_cache, options);
  }

  util::SteadyClock clock;  // real time: the herd and TTL expiry are real
  std::shared_ptr<GoogleBackend> backend;
  std::shared_ptr<CountingTransport> wire;
  std::shared_ptr<cache::ResponseCache> response_cache;
  std::unique_ptr<services::google::GoogleClient> client;
};

struct HerdResult {
  std::uint64_t backend_calls = 0;
  int errors = 0;
  double max_caller_ms = 0;
  double p50_caller_ms = 0;
  cache::StatsSnapshot stats;
};

/// Release `threads` callers of the same phrase simultaneously (arrival
/// gate) and measure each caller's latency.
HerdResult run_herd(Stack& stack, int threads) {
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::vector<double> latencies_ms(static_cast<std::size_t>(threads));
  std::atomic<int> errors{0};

  std::vector<std::thread> herd;
  herd.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    herd.emplace_back([&, i] {
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      auto start = steady_clock::now();
      try {
        stack.client->doSpellingSuggestion("the same hot phrase");
      } catch (const Error&) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      latencies_ms[static_cast<std::size_t>(i)] =
          duration_cast<microseconds>(steady_clock::now() - start).count() /
          1000.0;
    });
  while (ready.load(std::memory_order_relaxed) < threads)
    std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : herd) t.join();

  HerdResult r;
  r.backend_calls = stack.wire->calls();
  r.errors = errors.load();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  r.max_caller_ms = latencies_ms.back();
  r.p50_caller_ms = latencies_ms[latencies_ms.size() / 2];
  r.stats = stack.response_cache->stats();
  return r;
}

void cold_miss_herd(bench::BenchJson& json, int threads,
                    milliseconds backend_latency) {
  std::printf(
      "Ablation J-A (cold-miss herd): %d threads, one key, cold cache,\n"
      "backend latency %lld ms per call\n",
      threads, static_cast<long long>(backend_latency.count()));
  std::printf("%14s %14s %8s %12s %12s %12s\n", "coalescing", "backend_calls",
              "errors", "p50_ms", "max_ms", "coal_waits");

  for (bool coalesce : {false, true}) {
    Stack stack(backend_latency, std::chrono::hours(1), coalesce,
                milliseconds(0), 0.0);
    HerdResult r = run_herd(stack, threads);
    std::printf("%14s %14llu %8d %12.2f %12.2f %12llu\n",
                coalesce ? "single-flight" : "off",
                static_cast<unsigned long long>(r.backend_calls), r.errors,
                r.p50_caller_ms, r.max_caller_ms,
                static_cast<unsigned long long>(r.stats.coalesced_waits));

    std::string row =
        std::string("herd coalesce=") + (coalesce ? "on" : "off");
    json.add(row, "threads", threads);
    json.add(row, "backend_calls", static_cast<double>(r.backend_calls));
    json.add(row, "errors", r.errors);
    json.add(row, "p50_caller_ms", r.p50_caller_ms);
    json.add(row, "max_caller_ms", r.max_caller_ms);
    json.add(row, "coalesced_waits",
             static_cast<double>(r.stats.coalesced_waits));
  }
  std::printf(
      "expected shape: coalesce=off pays one backend call per caller that\n"
      "races past the lookup (hundreds for a large herd — stragglers hit\n"
      "the stored entry); single-flight makes exactly ONE for the herd.\n\n");
}

void expiry_storm(bench::BenchJson& json, int threads,
                  milliseconds backend_latency) {
  std::printf(
      "Ablation J-B (TTL-expiry storm): warm hot key, TTL 50ms, wait for\n"
      "expiry, then a %d-thread storm; backend latency %lld ms\n",
      threads, static_cast<long long>(backend_latency.count()));
  std::printf("%10s %14s %12s %12s %12s %12s\n", "mode", "backend_calls",
              "p50_ms", "max_ms", "swr_served", "blocked");

  for (bool swr : {false, true}) {
    Stack stack(backend_latency, milliseconds(50), /*coalesce=*/true,
                swr ? milliseconds(60'000) : milliseconds(0), 0.0);
    stack.client->doSpellingSuggestion("the same hot phrase");  // warm
    std::this_thread::sleep_for(milliseconds(80));              // expire
    const std::uint64_t warm_calls = stack.wire->calls();
    HerdResult r = run_herd(stack, threads);
    const std::uint64_t storm_calls = r.backend_calls - warm_calls;
    // A caller "blocked" if it waited at least the backend latency — i.e.
    // it rode the wire (or a flight pinned to it) instead of the cache.
    // With SWR the whole storm must be served from the stale entry.
    const double blocked_threshold_ms =
        static_cast<double>(backend_latency.count());
    std::printf("%10s %14llu %12.2f %12.2f %12llu %12s\n",
                swr ? "swr" : "blocking",
                static_cast<unsigned long long>(storm_calls), r.p50_caller_ms,
                r.max_caller_ms,
                static_cast<unsigned long long>(
                    r.stats.stale_while_revalidate_served),
                r.max_caller_ms >= blocked_threshold_ms ? "yes" : "no");

    std::string row = std::string("storm mode=") + (swr ? "swr" : "blocking");
    json.add(row, "threads", threads);
    json.add(row, "backend_calls", static_cast<double>(storm_calls));
    json.add(row, "p50_caller_ms", r.p50_caller_ms);
    json.add(row, "max_caller_ms", r.max_caller_ms);
    json.add(row, "swr_served",
             static_cast<double>(r.stats.stale_while_revalidate_served));
    json.add(row, "errors", r.errors);
  }
  std::printf(
      "expected shape: both modes bound the refetch to ~1 backend call\n"
      "(coalescing), but 'blocking' stalls the first wave for the backend\n"
      "latency while 'swr' serves every caller from the stale entry\n"
      "immediately and refreshes once in the background.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Full mode: the ISSUE-8 acceptance herd of 1k threads.  Smoke mode
  // keeps CI fast while exercising the identical code paths.
  const int herd_threads = smoke ? 64 : 1000;
  const milliseconds backend_latency(smoke ? 10 : 25);

  bench::BenchJson json;
  cold_miss_herd(json, herd_threads, backend_latency);
  expiry_storm(json, smoke ? 32 : 200, backend_latency);
  json.write_file("BENCH_ablation_herd.json");
  return 0;
}
