// Table 6 — processing times for cache key generation (msec in the paper,
// reported here in ns/op by google-benchmark).
//
// Paper (Pentium-4 1.8 GHz, JVM):                 us/op
//                    Spelling   CachedPage  GoogleSearch
//   XML message        213        212          298
//   Java serialization  21         22           36
//   toString              5          5            8
//
// Expected shape: XML ~10x serialization; toString another ~4x faster.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

const std::vector<OperationCase>& cases() {
  static const std::vector<OperationCase> c = google_cases();
  return c;
}

void BM_KeyGen(benchmark::State& state) {
  const OperationCase& op = cases()[static_cast<std::size_t>(state.range(0))];
  auto method = static_cast<cache::KeyMethod>(state.range(1));
  std::unique_ptr<cache::KeyGenerator> gen = cache::make_key_generator(method);
  for (auto _ : state) {
    cache::CacheKey key = gen->generate(op.request);
    benchmark::DoNotOptimize(key);
  }
  state.SetLabel(std::string(cache::key_method_name(method)) + " / " + op.display);
}

void register_all() {
  for (int op = 0; op < 3; ++op) {
    for (cache::KeyMethod m : {cache::KeyMethod::XmlMessage,
                               cache::KeyMethod::Serialization,
                               cache::KeyMethod::ToString}) {
      std::string name = "Table6/KeyGen/" +
                         std::string(cache::key_method_name(m)) + "/" +
                         cases()[static_cast<std::size_t>(op)].op_name;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      benchmark::RegisterBenchmark(name.c_str(), BM_KeyGen)
          ->Args({op, static_cast<int>(m)});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
