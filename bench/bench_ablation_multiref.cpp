// Ablation — wire-format sensitivity of the XML-bound representations.
//
// Real 2004 Google responses were Axis multiRef graphs; the paper's Table 7
// numbers therefore include href-resolution work in the XML/SAX rows.  This
// bench quantifies that: retrieval cost of the XML-message and SAX-events
// representations for the same GoogleSearchResult encoded inline vs.
// multiref, plus the document-size overhead multiref adds.  Object-form
// representations are wire-format independent by construction (shown for
// reference).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hpp"
#include "core/representation.hpp"
#include "soap/serializer.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

struct Forms {
  OperationCase inline_form;
  OperationCase multiref_form;
};

const Forms& forms() {
  static const Forms f = [] {
    Forms out;
    std::vector<OperationCase> cases = google_cases();
    out.inline_form = cases[2];  // GoogleSearch
    // Rebuild the same response in multiref form.
    out.multiref_form = cases[2];
    out.multiref_form.response_xml = soap::serialize_response_multiref(
        *out.multiref_form.op, "urn:GoogleSearch",
        out.multiref_form.response_object);
    xml::EventRecorder recorder;
    xml::CompactEventRecorder compact_recorder;
    xml::TeeHandler tee(recorder, compact_recorder);
    xml::SaxParser{}.parse(out.multiref_form.response_xml, tee);
    out.multiref_form.response_events = recorder.take();
    out.multiref_form.response_compact_events = compact_recorder.take();
    return out;
  }();
  return f;
}

void BM_WireFormat(benchmark::State& state) {
  bool multiref = state.range(0) != 0;
  auto rep = static_cast<cache::Representation>(state.range(1));
  const OperationCase& c = multiref ? forms().multiref_form : forms().inline_form;
  CaptureScratch scratch;
  cache::ResponseCapture capture = c.capture_copy(scratch);
  std::unique_ptr<cache::CachedValue> value =
      cache::make_cached_value(rep, capture);
  for (auto _ : state) {
    reflect::Object out = value->retrieve();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(multiref ? "multiref" : "inline") + " / " +
                 std::string(cache::representation_name(rep)));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("document sizes: inline=%zu bytes, multiref=%zu bytes\n",
              forms().inline_form.response_xml.size(),
              forms().multiref_form.response_xml.size());

  using cache::Representation;
  for (int multiref : {0, 1}) {
    for (Representation rep :
         {Representation::XmlMessage, Representation::SaxEvents,
          Representation::SaxEventsCompact, Representation::ReflectionCopy}) {
      std::string tag(cache::representation_name(rep));
      for (char& ch : tag) {
        if (ch == ' ') ch = '_';
      }
      std::string name = std::string("Ablation/WireFormat/") +
                         (multiref ? "multiref/" : "inline/") + tag;
      benchmark::RegisterBenchmark(name.c_str(), BM_WireFormat)
          ->Args({multiref, static_cast<int>(rep)});
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
