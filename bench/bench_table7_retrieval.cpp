// Table 7 — processing times for cached data retrieval on a hit.
//
// Paper (us/hit):     Spelling   CachedPage  GoogleSearch
//   XML message          299        708         3244
//   SAX events            94        458         1986
//   Java serialization    14         46          276
//   Copy by reflection   n/a         19           46
//   Copy by clone        n/a        n/a            7
//   Pass by reference      1          1            1
//
// Expected shape: each row a multiple faster than the previous; SAX ~halves
// XML; serialization ~10x under XML; reflection >=3x under serialization;
// clone far cheaper than reflection; reference ~free.  "n/a" cells are
// representations whose limitations exclude the type (they are skipped
// here, as in the paper).
//
// Beyond the paper: the "SAX events compact" row replays the arena-backed
// interned recording — same universality as SAX events, expected strictly
// faster (zero allocations per replayed event).  Results are also written
// to BENCH_table7.json (row -> ns_per_op) for cross-PR tracking.
// With --trace the google-benchmark run is replaced by a live middleware
// pipeline (in-process transport + dummy Google service) driven through
// CachingServiceClient with the process tracer enabled; the per-stage
// breakdown (KeyGen/Lookup/Retrieve/... per representation and outcome) is
// printed and the aggregate stage sum is required to stay within 10% of
// the traced end-to-end latency.
#include <benchmark/benchmark.h>

#include <array>

#include "bench/common.hpp"
#include "bench/trace_report.hpp"
#include "core/client.hpp"
#include "core/representation.hpp"
#include "services/google/service.hpp"
#include "transport/inproc_transport.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

const std::vector<OperationCase>& cases() {
  static const std::vector<OperationCase> c = google_cases();
  return c;
}

void BM_Retrieve(benchmark::State& state) {
  const OperationCase& op = cases()[static_cast<std::size_t>(state.range(0))];
  auto rep = static_cast<cache::Representation>(state.range(1));
  CaptureScratch scratch;
  cache::ResponseCapture capture = op.capture_copy(scratch);
  // Reference requires the §4.2.4 read-only declaration for mutable types;
  // the paper measured it for all three operations.
  std::unique_ptr<cache::CachedValue> value =
      cache::make_cached_value(rep, capture);
  for (auto _ : state) {
    reflect::Object out = value->retrieve();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(cache::representation_name(rep)) + " / " + op.display);
}

void register_all() {
  using cache::Representation;
  for (int op = 0; op < 3; ++op) {
    for (Representation rep :
         {Representation::XmlMessage, Representation::SaxEvents,
          Representation::SaxEventsCompact, Representation::Serialized,
          Representation::ReflectionCopy, Representation::CloneCopy,
          Representation::Reference}) {
      const auto& c = cases()[static_cast<std::size_t>(op)];
      // Table 7 n/a cells: skip representations the type cannot support
      // (read_only declared true, matching the paper's reference row).
      if (rep != Representation::Reference &&
          !cache::applicable(rep, c.response_object.type(), false))
        continue;
      std::string name = "Table7/Retrieve/" +
                         std::string(cache::representation_name(rep)) + "/" +
                         c.op_name;
      for (char& ch : name) {
        if (ch == ' ') ch = '_';
      }
      benchmark::RegisterBenchmark(name.c_str(), BM_Retrieve)
          ->Args({op, static_cast<int>(rep)});
    }
  }
}

/// Console output as usual, plus every run captured for BENCH_table7.json.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      json_.add(run.benchmark_name(), "ns_per_op", run.GetAdjustedRealTime());
    }
  }
  const BenchJson& json() const { return json_; }

 private:
  BenchJson json_;
};

/// --trace: drive the full middleware per (representation, operation) cell
/// — one priming miss, then `iters` hits — and print the tracer's stage
/// decomposition.  Returns non-zero when the aggregate stage sum deviates
/// more than 10% from the traced end-to-end time.
int run_traced(int iters) {
  obs::Tracer& tracer = obs::tracer();
  tracer.reset();
  tracer.set_enabled(true);
  tracer.set_sample_every(64);

  auto backend = std::make_shared<services::google::GoogleBackend>();
  auto transport = std::make_shared<transport::InProcessTransport>();
  const std::string endpoint = "inproc://services/google";
  transport->bind(endpoint, services::google::make_google_service(backend));

  for (int rep_i = 0; rep_i < 7; ++rep_i) {
    using cache::Representation;
    Representation rep = std::array{
        Representation::XmlMessage,    Representation::SaxEvents,
        Representation::SaxEventsCompact, Representation::Serialized,
        Representation::ReflectionCopy, Representation::CloneCopy,
        Representation::Reference}[static_cast<std::size_t>(rep_i)];
    for (const OperationCase& c : cases()) {
      // Same n/a-cell skip rule as the benchmark registration above.
      if (rep != Representation::Reference &&
          !cache::applicable(rep, c.response_object.type(), false))
        continue;
      cache::OperationPolicy p;
      p.cacheable = true;
      p.ttl = std::chrono::hours(1);
      p.representation = rep;
      if (rep == Representation::Reference) p.read_only = true;
      cache::CachingServiceClient::Options options;
      options.key_method = cache::KeyMethod::ToString;
      options.policy.set(c.op_name, p);
      cache::CachingServiceClient client(
          transport, services::google::google_description(), endpoint,
          std::make_shared<cache::ResponseCache>(), options);
      client.invoke(c.op_name, c.request.params);  // prime: the one miss
      for (int i = 0; i < iters; ++i)
        client.invoke(c.op_name, c.request.params);  // hits
    }
  }

  double deviation = print_trace_breakdown(tracer.snapshot(), /*min_calls=*/2);
  tracer.set_enabled(false);
  if (deviation > 0.10) {
    std::fprintf(stderr,
                 "--trace FAILED: stage sum deviates %.2f%% from end-to-end "
                 "latency (budget 10%%)\n",
                 deviation * 100.0);
    return 1;
  }
  std::printf("--trace OK: aggregate deviation %.2f%% (budget 10%%)\n",
              deviation * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (trace_requested(argc, argv)) return run_traced(/*iters=*/300);
  register_all();
  benchmark::Initialize(&argc, argv);
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.json().write_file("BENCH_table7.json");
  benchmark::Shutdown();
  return 0;
}
