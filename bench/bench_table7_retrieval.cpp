// Table 7 — processing times for cached data retrieval on a hit.
//
// Paper (us/hit):     Spelling   CachedPage  GoogleSearch
//   XML message          299        708         3244
//   SAX events            94        458         1986
//   Java serialization    14         46          276
//   Copy by reflection   n/a         19           46
//   Copy by clone        n/a        n/a            7
//   Pass by reference      1          1            1
//
// Expected shape: each row a multiple faster than the previous; SAX ~halves
// XML; serialization ~10x under XML; reflection >=3x under serialization;
// clone far cheaper than reflection; reference ~free.  "n/a" cells are
// representations whose limitations exclude the type (they are skipped
// here, as in the paper).
//
// Beyond the paper: the "SAX events compact" row replays the arena-backed
// interned recording — same universality as SAX events, expected strictly
// faster (zero allocations per replayed event).  Results are also written
// to BENCH_table7.json (row -> ns_per_op) for cross-PR tracking.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/representation.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

const std::vector<OperationCase>& cases() {
  static const std::vector<OperationCase> c = google_cases();
  return c;
}

void BM_Retrieve(benchmark::State& state) {
  const OperationCase& op = cases()[static_cast<std::size_t>(state.range(0))];
  auto rep = static_cast<cache::Representation>(state.range(1));
  CaptureScratch scratch;
  cache::ResponseCapture capture = op.capture_copy(scratch);
  // Reference requires the §4.2.4 read-only declaration for mutable types;
  // the paper measured it for all three operations.
  std::unique_ptr<cache::CachedValue> value =
      cache::make_cached_value(rep, capture);
  for (auto _ : state) {
    reflect::Object out = value->retrieve();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(cache::representation_name(rep)) + " / " + op.display);
}

void register_all() {
  using cache::Representation;
  for (int op = 0; op < 3; ++op) {
    for (Representation rep :
         {Representation::XmlMessage, Representation::SaxEvents,
          Representation::SaxEventsCompact, Representation::Serialized,
          Representation::ReflectionCopy, Representation::CloneCopy,
          Representation::Reference}) {
      const auto& c = cases()[static_cast<std::size_t>(op)];
      // Table 7 n/a cells: skip representations the type cannot support
      // (read_only declared true, matching the paper's reference row).
      if (rep != Representation::Reference &&
          !cache::applicable(rep, c.response_object.type(), false))
        continue;
      std::string name = "Table7/Retrieve/" +
                         std::string(cache::representation_name(rep)) + "/" +
                         c.op_name;
      for (char& ch : name) {
        if (ch == ' ') ch = '_';
      }
      benchmark::RegisterBenchmark(name.c_str(), BM_Retrieve)
          ->Args({op, static_cast<int>(rep)});
    }
  }
}

/// Console output as usual, plus every run captured for BENCH_table7.json.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      json_.add(run.benchmark_name(), "ns_per_op", run.GetAdjustedRealTime());
    }
  }
  const BenchJson& json() const { return json_; }

 private:
  BenchJson json_;
};

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.json().write_file("BENCH_table7.json");
  benchmark::Shutdown();
  return 0;
}
