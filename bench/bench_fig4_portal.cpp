// Figure 4 — the same sweep with 25 concurrent clients (paper: portal CPU
// >95%).  Under saturation the processing savings dominate: the paper
// reports ~5x throughput and ~8x shorter response times for application-
// object caching at 100% hits.
#include "bench/portal_figure.hpp"

int main(int argc, char** argv) {
  int requests = wsc::bench::figure_requests(argc, argv, 1500);
  wsc::bench::run_portal_figure(/*concurrency=*/25, requests, "Figure 4",
                                wsc::bench::trace_requested(argc, argv));
  return 0;
}
