// Shared setup for the reproduction benchmarks: the three Google
// operations of §5.1 with the paper's request/response shapes, helpers to
// capture responses in every representation, and the machine-readable
// BENCH_*.json reporter that tracks the perf trajectory across PRs.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_key.hpp"
#include "core/cached_value.hpp"
#include "services/google/service.hpp"
#include "soap/serializer.hpp"
#include "xml/compact_event_sequence.hpp"
#include "xml/event_sequence.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::bench {

using reflect::Object;

/// Per-iteration scratch for representations that consume their capture
/// (both SAX forms move the recording into the CachedValue).
struct CaptureScratch {
  xml::EventSequence events;
  xml::CompactEventSequence compact_events;
};

/// One §5.1 operation: its request (for Tables 6/8) and its captured
/// response (for Tables 7/9).
struct OperationCase {
  std::string display;  // "Spelling Suggestion" etc., as in the tables
  std::string op_name;
  soap::RpcRequest request;
  std::shared_ptr<const wsdl::OperationInfo> op;
  std::string response_xml;
  xml::EventSequence response_events;
  xml::CompactEventSequence response_compact_events;
  Object response_object;

  cache::ResponseCapture capture_copy(CaptureScratch& scratch) const {
    scratch.events = response_events;  // fresh copies; the value consumes
    scratch.compact_events = response_compact_events;
    cache::ResponseCapture c;
    c.response_xml = &response_xml;
    c.events = &scratch.events;
    c.compact_events = &scratch.compact_events;
    c.object = response_object;
    c.op = op;
    return c;
  }
};

inline std::shared_ptr<const wsdl::OperationInfo> share_op(const char* name) {
  auto desc = services::google::google_description();
  return {desc, &desc->require_operation(name)};
}

inline OperationCase make_case(const char* display, const char* op_name,
                               soap::RpcRequest request, Object response) {
  OperationCase c;
  c.display = display;
  c.op_name = op_name;
  c.op = share_op(op_name);
  c.request = std::move(request);
  c.response_object = std::move(response);
  c.response_xml =
      soap::serialize_response(*c.op, "urn:GoogleSearch", c.response_object);
  xml::EventRecorder recorder;
  xml::CompactEventRecorder compact_recorder;
  xml::TeeHandler tee(recorder, compact_recorder);
  xml::SaxParser{}.parse(c.response_xml, tee);
  c.response_events = recorder.take();
  c.response_compact_events = compact_recorder.take();
  return c;
}

/// The three operations with the paper's parameter/response shapes
/// (Table 5): small+simple String, large+simple byte[], large+complex tree.
inline std::vector<OperationCase> google_cases() {
  services::google::GoogleBackend backend;
  const std::string kEndpoint = "http://api.google.com/search/beta2";
  const std::string kKey(32, '0');

  auto str = [](const char* s) { return Object::make(std::string(s)); };

  soap::RpcRequest spell;
  spell.endpoint = kEndpoint;
  spell.ns = "urn:GoogleSearch";
  spell.operation = "doSpellingSuggestion";
  spell.params = {{"key", Object::make(kKey)}, {"phrase", str("web servies caching")}};

  soap::RpcRequest page;
  page.endpoint = kEndpoint;
  page.ns = "urn:GoogleSearch";
  page.operation = "doGetCachedPage";
  page.params = {{"key", Object::make(kKey)},
                 {"url", str("http://www.example.com/index.html")}};

  soap::RpcRequest search;
  search.endpoint = kEndpoint;
  search.ns = "urn:GoogleSearch";
  search.operation = "doGoogleSearch";
  search.params = {{"key", Object::make(kKey)},
                   {"q", str("web services response caching")},
                   {"start", Object::make(std::int32_t{0})},
                   {"maxResults", Object::make(std::int32_t{10})},
                   {"filter", Object::make(false)},
                   {"restrict", str("")},
                   {"safeSearch", Object::make(false)},
                   {"lr", str("")},
                   {"ie", str("latin1")},
                   {"oe", str("latin1")}};

  std::vector<OperationCase> cases;
  cases.push_back(make_case(
      "Spelling Suggestion", "doSpellingSuggestion", std::move(spell),
      Object::make(backend.spelling_suggestion("web servies caching"))));
  cases.push_back(make_case(
      "Cached Page", "doGetCachedPage", std::move(page),
      Object::make(backend.cached_page("http://www.example.com/index.html"))));
  cases.push_back(make_case(
      "Google Search", "doGoogleSearch", std::move(search),
      Object::make(backend.search("web services response caching", 0, 10))));
  return cases;
}

/// Machine-readable bench output: row -> metric -> value, written as
/// BENCH_<table>.json next to the binary's working directory so the perf
/// trajectory is tracked across PRs (compared by CI/scripts, not eyes).
class BenchJson {
 public:
  void add(const std::string& row, const std::string& metric, double value) {
    rows_[row][metric] = value;
  }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n");
    std::size_t i = 0;
    for (const auto& [row, metrics] : rows_) {
      std::fprintf(f, "  \"%s\": {", escape(row).c_str());
      std::size_t j = 0;
      for (const auto& [metric, value] : metrics) {
        std::fprintf(f, "%s\"%s\": %.6g", j++ ? ", " : "",
                     escape(metric).c_str(), value);
      }
      std::fprintf(f, "}%s\n", ++i < rows_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::map<std::string, std::map<std::string, double>> rows_;
};

}  // namespace wsc::bench
