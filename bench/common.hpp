// Shared setup for the reproduction benchmarks: the three Google
// operations of §5.1 with the paper's request/response shapes, plus helpers
// to capture responses in every representation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cache_key.hpp"
#include "core/cached_value.hpp"
#include "services/google/service.hpp"
#include "soap/serializer.hpp"
#include "xml/event_sequence.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::bench {

using reflect::Object;

/// One §5.1 operation: its request (for Tables 6/8) and its captured
/// response (for Tables 7/9).
struct OperationCase {
  std::string display;  // "Spelling Suggestion" etc., as in the tables
  std::string op_name;
  soap::RpcRequest request;
  std::shared_ptr<const wsdl::OperationInfo> op;
  std::string response_xml;
  xml::EventSequence response_events;
  Object response_object;

  cache::ResponseCapture capture_copy(xml::EventSequence& scratch) const {
    scratch = response_events;  // fresh copy, SaxEventsValue consumes it
    cache::ResponseCapture c;
    c.response_xml = &response_xml;
    c.events = &scratch;
    c.object = response_object;
    c.op = op;
    return c;
  }
};

inline std::shared_ptr<const wsdl::OperationInfo> share_op(const char* name) {
  auto desc = services::google::google_description();
  return {desc, &desc->require_operation(name)};
}

inline OperationCase make_case(const char* display, const char* op_name,
                               soap::RpcRequest request, Object response) {
  OperationCase c;
  c.display = display;
  c.op_name = op_name;
  c.op = share_op(op_name);
  c.request = std::move(request);
  c.response_object = std::move(response);
  c.response_xml =
      soap::serialize_response(*c.op, "urn:GoogleSearch", c.response_object);
  xml::EventRecorder recorder;
  xml::SaxParser{}.parse(c.response_xml, recorder);
  c.response_events = recorder.take();
  return c;
}

/// The three operations with the paper's parameter/response shapes
/// (Table 5): small+simple String, large+simple byte[], large+complex tree.
inline std::vector<OperationCase> google_cases() {
  services::google::GoogleBackend backend;
  const std::string kEndpoint = "http://api.google.com/search/beta2";
  const std::string kKey(32, '0');

  auto str = [](const char* s) { return Object::make(std::string(s)); };

  soap::RpcRequest spell;
  spell.endpoint = kEndpoint;
  spell.ns = "urn:GoogleSearch";
  spell.operation = "doSpellingSuggestion";
  spell.params = {{"key", Object::make(kKey)}, {"phrase", str("web servies caching")}};

  soap::RpcRequest page;
  page.endpoint = kEndpoint;
  page.ns = "urn:GoogleSearch";
  page.operation = "doGetCachedPage";
  page.params = {{"key", Object::make(kKey)},
                 {"url", str("http://www.example.com/index.html")}};

  soap::RpcRequest search;
  search.endpoint = kEndpoint;
  search.ns = "urn:GoogleSearch";
  search.operation = "doGoogleSearch";
  search.params = {{"key", Object::make(kKey)},
                   {"q", str("web services response caching")},
                   {"start", Object::make(std::int32_t{0})},
                   {"maxResults", Object::make(std::int32_t{10})},
                   {"filter", Object::make(false)},
                   {"restrict", str("")},
                   {"safeSearch", Object::make(false)},
                   {"lr", str("")},
                   {"ie", str("latin1")},
                   {"oe", str("latin1")}};

  std::vector<OperationCase> cases;
  cases.push_back(make_case(
      "Spelling Suggestion", "doSpellingSuggestion", std::move(spell),
      Object::make(backend.spelling_suggestion("web servies caching"))));
  cases.push_back(make_case(
      "Cached Page", "doGetCachedPage", std::move(page),
      Object::make(backend.cached_page("http://www.example.com/index.html"))));
  cases.push_back(make_case(
      "Google Search", "doGoogleSearch", std::move(search),
      Object::make(backend.search("web services response caching", 0, 10))));
  return cases;
}

}  // namespace wsc::bench
