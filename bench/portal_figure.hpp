// Shared driver for Figures 3 and 4: the §5.2 portal-site scenario.
//
//   load simulator --HTTP--> portal --caching middleware/SOAP-HTTP--> dummy
//   Google service (returns deterministic responses, "not too demanding")
//
// For each cache-value representation and each target hit ratio in
// {0,20,...,100}%, a closed-loop load run measures portal throughput and
// mean response time.  The paper's claims:
//   Fig 3 (1 client):  at 100% hits, XML ~1.5x, SAX ~2x, objects ~3x the
//                      0% throughput; object methods indistinguishable.
//   Fig 4 (25 clients, CPU saturated): objects reach ~5x throughput and
//                      ~8x shorter response times.
#pragma once

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/trace_report.hpp"
#include "http/server.hpp"
#include "obs/trace.hpp"
#include "portal/load_sim.hpp"
#include "portal/portal.hpp"
#include "services/google/service.hpp"
#include "transport/http_transport.hpp"
#include "transport/soap_http.hpp"

namespace wsc::bench {

inline cache::CachePolicy figure_policy(cache::Representation rep) {
  cache::OperationPolicy p;
  p.cacheable = true;
  p.ttl = std::chrono::hours(1);
  if (rep == cache::Representation::Reference) {
    // §4.2.4: the administrator declares search results read-only; the
    // portal renders and discards them, so sharing is safe.
    p.representation = cache::Representation::Reference;
    p.read_only = true;
  } else {
    p.representation = rep;
  }
  cache::CachePolicy policy;
  policy.set("doGoogleSearch", p);
  return policy;
}

inline const std::vector<cache::Representation>& figure_representations() {
  static const std::vector<cache::Representation> reps = {
      cache::Representation::XmlMessage,
      cache::Representation::SaxEvents,
      cache::Representation::SaxEventsCompact,
      cache::Representation::Serialized,
      cache::Representation::ReflectionCopy,
      cache::Representation::CloneCopy,
      cache::Representation::Reference,
  };
  return reps;
}

struct FigurePoint {
  cache::Representation rep;
  int hit_percent;
  double throughput_rps;
  double mean_ms;
  double p95_ms;
};

/// Run the whole figure.  `requests_per_point` is the measured request
/// count per (representation, ratio) cell, split across `concurrency`
/// virtual clients.  With `trace` the process tracer covers every
/// middleware call the portal makes and the per-stage breakdown is printed
/// after the sweep.
inline std::vector<FigurePoint> run_portal_figure(int concurrency,
                                                  int requests_per_point,
                                                  const char* figure_name,
                                                  bool trace = false) {
  if (trace) {
    obs::tracer().reset();
    obs::tracer().set_enabled(true);
    obs::tracer().set_sample_every(256);
  }
  std::printf(
      "%s: portal throughput & mean response time vs cache-hit ratio "
      "(%d concurrent client%s, %d requests/point)\n",
      figure_name, concurrency, concurrency == 1 ? "" : "s",
      requests_per_point);
  std::printf("%-22s %6s %14s %10s %10s\n", "representation", "hit%",
              "throughput", "mean_ms", "p95_ms");

  // Backend: dummy Google service over real HTTP (one instance for all
  // points — it is stateless and deterministic).
  auto backend = std::make_shared<services::google::GoogleBackend>();
  auto soap_server = transport::serve_soap(
      0, "/soap/google", services::google::make_google_service(backend));
  std::string backend_endpoint = soap_server->base_url() + "/soap/google";

  std::vector<FigurePoint> points;
  for (cache::Representation rep : figure_representations()) {
    for (int hit = 0; hit <= 100; hit += 20) {
      portal::PortalConfig config;
      config.backend_endpoint = backend_endpoint;
      config.transport = std::make_shared<transport::HttpTransport>();
      config.options.key_method = cache::KeyMethod::ToString;  // §5.2 choice
      config.options.policy = figure_policy(rep);
      portal::PortalSite site(std::move(config));
      http::HttpServer portal_server(0, site.handler());
      portal_server.start();

      portal::LoadConfig load;
      load.concurrency = concurrency;
      load.requests_per_client = requests_per_point / concurrency;
      load.hit_ratio = hit / 100.0;
      load.hot_set_size = 16;
      load.seed = 1234 + static_cast<std::uint64_t>(hit);
      portal::LoadReport report =
          portal::run_load_http(portal_server.base_url(), load);
      portal_server.stop();

      FigurePoint p;
      p.rep = rep;
      p.hit_percent = hit;
      p.throughput_rps = report.throughput_rps;
      p.mean_ms = report.mean_response_ms();
      p.p95_ms = static_cast<double>(report.latency.percentile(0.95)) / 1e6;
      points.push_back(p);
      std::printf("%-22s %5d%% %12.0f/s %10.3f %10.3f\n",
                  std::string(cache::representation_name(rep)).c_str(), hit,
                  p.throughput_rps, p.mean_ms, p.p95_ms);
    }
  }
  soap_server->stop();

  // Endpoint summary: speedups at 100% hits relative to 0%.
  std::printf("\n%s summary: 100%%-hit vs 0%%-hit\n", figure_name);
  std::printf("%-22s %12s %14s\n", "representation", "throughput_x",
              "resp_time_1/x");
  for (cache::Representation rep : figure_representations()) {
    double t0 = 0, t100 = 0, m0 = 0, m100 = 0;
    for (const FigurePoint& p : points) {
      if (p.rep != rep) continue;
      if (p.hit_percent == 0) {
        t0 = p.throughput_rps;
        m0 = p.mean_ms;
      }
      if (p.hit_percent == 100) {
        t100 = p.throughput_rps;
        m100 = p.mean_ms;
      }
    }
    std::printf("%-22s %11.2fx %13.2fx\n",
                std::string(cache::representation_name(rep)).c_str(),
                t0 > 0 ? t100 / t0 : 0.0, m100 > 0 ? m0 / m100 : 0.0);
  }

  if (trace) {
    print_trace_breakdown(obs::tracer().snapshot(), /*min_calls=*/8);
    obs::tracer().set_enabled(false);
  }
  return points;
}

inline int figure_requests(int argc, char** argv, int dflt) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return dflt / 10;
  }
  return dflt;
}

}  // namespace wsc::bench
