// Table 8 — memory size of cache keys (bytes).
//
// Paper:                Spelling   CachedPage  GoogleSearch
//   XML message            586        579          974
//   Java serialized form   234        238          462
//   Concatenated string    120        123          164
//
// Expected shape: XML ~2.5x serialized; serialized ~2x concatenated.
#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace wsc;
  using namespace wsc::bench;

  std::vector<OperationCase> cases = google_cases();

  struct Row {
    const char* label;
    cache::KeyMethod method;
    int paper[3];
  };
  const Row rows[] = {
      {"XML message", cache::KeyMethod::XmlMessage, {586, 579, 974}},
      {"Java serialized form", cache::KeyMethod::Serialization, {234, 238, 462}},
      {"Concatenated string", cache::KeyMethod::ToString, {120, 123, 164}},
  };

  std::printf("Table 8: Memory size of cache keys (bytes)\n");
  std::printf("%-22s  %18s  %18s  %18s\n", "", "SpellingSuggestion",
              "CachedPage", "GoogleSearch");
  std::printf("%-22s  %10s  %6s  %10s  %6s  %10s  %6s\n", "representation",
              "measured", "paper", "measured", "paper", "measured", "paper");
  for (const Row& row : rows) {
    std::unique_ptr<cache::KeyGenerator> gen = cache::make_key_generator(row.method);
    std::printf("%-22s", row.label);
    for (int i = 0; i < 3; ++i) {
      std::size_t size =
          gen->generate(cases[static_cast<std::size_t>(i)].request).material().size();
      std::printf("  %10zu  %6d", size, row.paper[i]);
    }
    std::printf("\n");
  }

  // Shape assertions (reported, not enforced): ordering must match paper.
  bool ok = true;
  for (const auto& c : cases) {
    std::size_t xml =
        cache::XmlMessageKeyGenerator{}.generate(c.request).material().size();
    std::size_t ser =
        cache::SerializationKeyGenerator{}.generate(c.request).material().size();
    std::size_t str =
        cache::ToStringKeyGenerator{}.generate(c.request).material().size();
    ok = ok && xml > ser && ser > str;
  }
  std::printf("\nshape check (XML > serialized > string for every op): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
