// Ablation — how each representation's hit cost scales with response size.
//
// Table 7 shows one point per operation; this sweep varies the GoogleSearch
// result count (1..50 elements per page) and measures retrieval for every
// applicable representation.  Expected scaling: the XML and SAX forms grow
// with *document* size, serialization/reflection/clone with *object* size,
// and pass-by-reference stays flat — so the gap between rows of Table 7
// widens with payload, and the paper's representation ranking is stable
// across sizes (no crossovers).
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/representation.hpp"
#include "services/google/service.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

OperationCase case_with_results(std::int32_t results) {
  services::google::GoogleBackend::Config config;
  config.results_per_page = results;
  services::google::GoogleBackend backend(config);

  soap::RpcRequest request;
  request.endpoint = "http://api.google.com/search/beta2";
  request.ns = "urn:GoogleSearch";
  request.operation = "doGoogleSearch";
  // Parameters are irrelevant to retrieval cost; reuse the shared shape.
  request.params = google_cases()[2].request.params;

  return make_case("Google Search", "doGoogleSearch", std::move(request),
                   reflect::Object::make(
                       backend.search("scaling sweep", 0, results)));
}

const OperationCase& case_for(std::int64_t results) {
  static std::map<std::int64_t, OperationCase> cases;
  auto it = cases.find(results);
  if (it == cases.end())
    it = cases.emplace(results, case_with_results(
                                    static_cast<std::int32_t>(results))).first;
  return it->second;
}

void BM_Scaling(benchmark::State& state) {
  const OperationCase& c = case_for(state.range(0));
  auto rep = static_cast<cache::Representation>(state.range(1));
  CaptureScratch scratch;
  cache::ResponseCapture capture = c.capture_copy(scratch);
  std::unique_ptr<cache::CachedValue> value =
      cache::make_cached_value(rep, capture);
  for (auto _ : state) {
    reflect::Object out = value->retrieve();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(std::string(cache::representation_name(rep)) + " / " +
                 std::to_string(state.range(0)) + " results (" +
                 std::to_string(c.response_xml.size()) + " B xml)");
}

}  // namespace

int main(int argc, char** argv) {
  using cache::Representation;
  for (std::int64_t results : {1, 5, 10, 20, 50}) {
    for (Representation rep :
         {Representation::XmlMessage, Representation::SaxEvents,
          Representation::SaxEventsCompact, Representation::Serialized,
          Representation::ReflectionCopy, Representation::CloneCopy,
          Representation::Reference}) {
      std::string tag(cache::representation_name(rep));
      for (char& ch : tag) {
        if (ch == ' ') ch = '_';
      }
      std::string name = "Ablation/Scaling/" + tag + "/results:" +
                         std::to_string(results);
      benchmark::RegisterBenchmark(name.c_str(), BM_Scaling)
          ->Args({results, static_cast<int>(rep)});
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
