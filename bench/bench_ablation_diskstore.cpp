// Ablation — memory vs disk for the byte-form representations.
//
// §5.1: "We could store the XML messages and Java serialized forms on the
// hard disk, but disk access is slower than memory access.  For fair
// comparison, we held all of the cached objects in memory."  This bench
// measures what the paper chose not to: a cache hit where the stored form
// must first be read back from a file, for both byte-serializable
// representations, against their in-memory equivalents.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/common.hpp"
#include "reflect/serialize.hpp"
#include "soap/deserializer.hpp"
#include "util/file_store.hpp"
#include "xml/sax_parser.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

const OperationCase& search_case() {
  static const OperationCase c = google_cases()[2];  // GoogleSearch
  return c;
}

util::FileStore& store() {
  static util::FileStore s((std::filesystem::temp_directory_path() /
                            "wsc_bench_diskstore")
                               .string());
  return s;
}

void BM_XmlMemory(benchmark::State& state) {
  const OperationCase& c = search_case();
  for (auto _ : state) {
    reflect::Object out =
        soap::read_response(xml::XmlTextSource(c.response_xml), *c.op);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("XML message, in memory");
}

void BM_XmlDisk(benchmark::State& state) {
  const OperationCase& c = search_case();
  store().put(1, c.response_xml);
  for (auto _ : state) {
    auto bytes = store().get(1);
    std::string text(bytes->begin(), bytes->end());
    reflect::Object out = soap::read_response(xml::XmlTextSource(text), *c.op);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("XML message, via disk");
}

void BM_SerializedMemory(benchmark::State& state) {
  std::vector<std::uint8_t> bytes = reflect::serialize(search_case().response_object);
  for (auto _ : state) {
    reflect::Object out = reflect::deserialize(bytes);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("Java serialization, in memory");
}

void BM_SerializedDisk(benchmark::State& state) {
  store().put(2, reflect::serialize(search_case().response_object));
  for (auto _ : state) {
    auto bytes = store().get(2);
    reflect::Object out = reflect::deserialize(*bytes);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("Java serialization, via disk");
}

BENCHMARK(BM_XmlMemory)->Name("Ablation/DiskStore/XML/memory");
BENCHMARK(BM_XmlDisk)->Name("Ablation/DiskStore/XML/disk");
BENCHMARK(BM_SerializedMemory)->Name("Ablation/DiskStore/Serialized/memory");
BENCHMARK(BM_SerializedDisk)->Name("Ablation/DiskStore/Serialized/disk");

}  // namespace

BENCHMARK_MAIN();
