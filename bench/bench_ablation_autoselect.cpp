// Ablation (§6) — does the runtime auto-configuration actually pick the
// per-type optimum?  For each Google operation, measures hit-retrieval
// cost under Auto vs. every fixed representation.  Auto should track the
// fastest applicable method: Reference for the String result, reflection
// (or clone with prefer_clone) for byte[] and GoogleSearchResult.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/representation.hpp"

namespace {

using namespace wsc;
using namespace wsc::bench;

const std::vector<OperationCase>& cases() {
  static const std::vector<OperationCase> c = google_cases();
  return c;
}

enum Mode : int { kAuto = -1, kAutoPreferClone = -2 };

void BM_AutoVsFixed(benchmark::State& state) {
  const OperationCase& op = cases()[static_cast<std::size_t>(state.range(0))];
  int mode = static_cast<int>(state.range(1));
  cache::Representation rep;
  std::string label;
  if (mode == kAuto || mode == kAutoPreferClone) {
    // §6: classification from the static type, read_only=false.
    rep = cache::auto_select(op.response_object.type(), false,
                             mode == kAutoPreferClone);
    label = std::string(mode == kAuto ? "Auto" : "Auto+clone") + " -> " +
            std::string(cache::representation_name(rep));
  } else {
    rep = static_cast<cache::Representation>(mode);
    label = std::string(cache::representation_name(rep));
  }
  CaptureScratch scratch;
  cache::ResponseCapture capture = op.capture_copy(scratch);
  std::unique_ptr<cache::CachedValue> value =
      cache::make_cached_value(rep, capture);
  for (auto _ : state) {
    reflect::Object out = value->retrieve();
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(label + " / " + op.display);
}

void register_all() {
  using cache::Representation;
  for (int op = 0; op < 3; ++op) {
    const auto& c = cases()[static_cast<std::size_t>(op)];
    auto add = [&](const std::string& tag, int mode) {
      std::string name = "Ablation/AutoSelect/" + tag + "/" + c.op_name;
      benchmark::RegisterBenchmark(name.c_str(), BM_AutoVsFixed)
          ->Args({op, mode});
    };
    add("Auto", kAuto);
    add("AutoPreferClone", kAutoPreferClone);
    for (Representation rep :
         {Representation::XmlMessage, Representation::SaxEvents,
          Representation::SaxEventsCompact, Representation::Serialized,
          Representation::ReflectionCopy, Representation::CloneCopy}) {
      if (!cache::applicable(rep, c.response_object.type(), false)) continue;
      std::string tag(cache::representation_name(rep));
      for (char& ch : tag) {
        if (ch == ' ') ch = '_';
      }
      add(tag, static_cast<int>(rep));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
