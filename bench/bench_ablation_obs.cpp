// Ablation I — telemetry overhead on the contention-free hit path.
//
// The PR 5 hit path was made contention-free so that per-hit cost stays
// the Table 7 retrieval cost; the live cost-model telemetry (cost
// profiles, hot-key tracking, slow-call watchdog) rides on that path and
// must stay within a 2% overhead budget when FULLY enabled, compared to
// the same binary with telemetry compiled in but disabled.
//
// Two measurements, single-threaded closed loop (overhead is a per-op
// cost; contention was ablated separately in BENCH_ablation_hitpath):
//
//   1. client_hit — the end-to-end middleware hit (request build, keygen,
//      lookup, retrieve) through GoogleClient::doSpellingSuggestion with
//      a warmed cache, across telemetry variants:
//        telemetry_off : profiles null, hot keys off, no slow-call check
//        profiles_on   : cost profiles attached, 1/64 hit sampling
//        hotkeys_on    : per-shard top-K sketch, 1/64 lookup sampling
//        all_on        : both of the above + slow-call watchdog armed
//   2. raw_lookup — KeyScratch keygen + ResponseCache::lookup(ref) alone,
//      hot-key flag off vs on, isolating the cache-side cost (one relaxed
//      load when off, a sampled sketch offer when on).
//
// Writes BENCH_ablation_obs_overhead.json with ns_per_op per variant and
// overhead_pct relative to the disabled baseline.  `--smoke` shrinks the
// loop for CI; timings then measure bitrot, not truth.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/client.hpp"
#include "core/response_cache.hpp"
#include "obs/profiles.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/inproc_transport.hpp"

using namespace wsc;
using services::google::GoogleBackend;

namespace {

struct Variant {
  const char* name;
  bool profiles = false;
  bool hot_keys = false;
  bool slow_call = false;
};

constexpr Variant kVariants[] = {
    {"telemetry_off", false, false, false},
    {"profiles_on", true, false, false},
    {"hotkeys_on", false, true, false},
    {"all_on", true, true, true},
};

struct Fixture {
  explicit Fixture(const Variant& v) {
    auto backend = std::make_shared<GoogleBackend>();
    auto transport = std::make_shared<transport::InProcessTransport>();
    transport->bind("inproc://google/api",
                    services::google::make_google_service(backend));
    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy(
        cache::Representation::Reference, std::chrono::hours(1));
    if (v.profiles) {
      options.profiles = std::make_shared<obs::CostProfiles>();
      options.profile_sample_every = 64;
    }
    if (v.slow_call)  // armed but never tripped: measures the check alone
      options.slow_call_threshold_ns = std::chrono::hours(1).count() * 1'000'000'000ull;
    response_cache = std::make_shared<cache::ResponseCache>();
    if (v.hot_keys) response_cache->enable_hot_key_tracking({64, 64});
    client = std::make_unique<services::google::GoogleClient>(
        transport, "inproc://google/api", response_cache, options);
  }

  std::shared_ptr<cache::ResponseCache> response_cache;
  std::unique_ptr<services::google::GoogleClient> client;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

double ns_per_op(std::chrono::steady_clock::time_point t0, int ops) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         ops;
}

/// End-to-end middleware hit cost under one telemetry variant.
double run_client_hit(const Variant& v, int ops) {
  Fixture f(v);
  f.client->doSpellingSuggestion("stock quote");  // warm: one miss + store
  for (int i = 0; i < 1000; ++i)                  // warm allocators/caches
    f.client->doSpellingSuggestion("stock quote");
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i)
    f.client->doSpellingSuggestion("stock quote");
  return ns_per_op(t0, ops);
}

/// Cache-side cost alone: keygen into a scratch + lookup by borrowed ref.
double run_raw_lookup(bool hot_keys, int ops) {
  cache::ResponseCache cache;
  if (hot_keys) cache.enable_hot_key_tracking({64, 64});
  auto cases = bench::google_cases();
  cache::ToStringKeyGenerator gen;
  cache::CacheKey key = gen.generate(cases[0].request);
  bench::CaptureScratch scratch_cap;
  cache::ResponseCapture capture = cases[0].capture_copy(scratch_cap);
  cache.store(key,
              cache::make_cached_value(cache::Representation::Reference,
                                       capture),
              std::chrono::hours(1));
  cache::KeyScratch scratch;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ops; ++i) {
    gen.generate_into(cases[0].request, scratch);
    if (cache.lookup(scratch.ref()) == nullptr) std::abort();
  }
  return ns_per_op(t0, ops);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int kOps = smoke ? 20'000 : 150'000;
  const int kReps = smoke ? 2 : 7;
  constexpr int kVariantCount = std::size(kVariants);

  bench::BenchJson json;

  // Paired interleaved reps: the shared bench host drifts by more than
  // the effect size over tens of seconds, so comparing a variant's
  // best-of against a baseline measured much earlier reports drift, not
  // overhead.  Each rep measures every variant back-to-back and the
  // overhead is the MEDIAN across reps of the within-rep ratio to that
  // same rep's telemetry_off cell — drift slower than one rep cancels,
  // and the median discards the reps where a noise spike landed inside
  // one cell of the pair.
  std::printf(
      "Ablation I (telemetry overhead), %d hits per cell, "
      "median paired ratio over %d reps\n",
      kOps, kReps);
  double best_ns[kVariantCount];
  std::vector<double> ratios[kVariantCount];
  std::fill(best_ns, best_ns + kVariantCount, 1e300);
  for (int rep = 0; rep < kReps; ++rep) {
    double cell[kVariantCount];
    for (int i = 0; i < kVariantCount; ++i) {
      cell[i] = run_client_hit(kVariants[i], kOps);
      best_ns[i] = std::min(best_ns[i], cell[i]);
    }
    for (int i = 0; i < kVariantCount; ++i)
      ratios[i].push_back(cell[i] / cell[0]);
  }
  std::printf("%16s %12s %12s\n", "variant", "ns_per_hit", "overhead");
  for (int i = 0; i < kVariantCount; ++i) {
    const double overhead = (median(ratios[i]) - 1.0) * 100.0;
    std::printf("%16s %12.1f %11.2f%%\n", kVariants[i].name, best_ns[i],
                overhead);
    json.add(kVariants[i].name, "ns_per_op", best_ns[i]);
    json.add(kVariants[i].name, "overhead_pct", overhead);
  }

  std::printf("\nraw keygen+lookup (cache side only):\n");
  double raw_off = 1e300, raw_on = 1e300;
  std::vector<double> raw_ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = run_raw_lookup(false, kOps);
    const double on = run_raw_lookup(true, kOps);
    raw_off = std::min(raw_off, off);
    raw_on = std::min(raw_on, on);
    raw_ratios.push_back(on / off);
  }
  const double raw_overhead = (median(raw_ratios) - 1.0) * 100.0;
  std::printf("%16s %12.1f\n%16s %12.1f (%.2f%%)\n", "hotkeys_off", raw_off,
              "hotkeys_on", raw_on, raw_overhead);
  json.add("raw_lookup_off", "ns_per_op", raw_off);
  json.add("raw_lookup_on", "ns_per_op", raw_on);
  json.add("raw_lookup_on", "overhead_pct", raw_overhead);

  json.add("meta", "ops_per_cell", kOps);
  json.add("meta", "smoke", smoke ? 1 : 0);
  json.write_file("BENCH_ablation_obs_overhead.json");
  return 0;
}
