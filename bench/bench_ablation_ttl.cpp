// Ablation (§3.2) — TTL vs consistency, and the DoS observation.
//
// The paper delegates consistency to an administrator-chosen TTL: "The TTL
// should be short enough to avoid consistency problems" yet "even a
// relatively short TTL can be enough to achieve a large cache-hit ratio"
// under repeated identical requests (explicitly including DoS traffic).
//
// Experiment 1: the backend's source data changes every 500 simulated ms;
// a client re-issues the same request every 10 ms.  Sweeping the TTL
// trades hit ratio against staleness.
//
// Experiment 2: a DoS burst of identical requests with a 1 s TTL: the
// backend sees ~duration/TTL requests instead of the full flood.
#include <cstdio>

#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/inproc_transport.hpp"

using namespace wsc;
using services::google::GoogleBackend;

namespace {

struct Fixture {
  explicit Fixture(std::chrono::milliseconds ttl) {
    backend = std::make_shared<GoogleBackend>();
    transport = std::make_shared<transport::InProcessTransport>();
    transport->bind("inproc://google/api",
                    services::google::make_google_service(backend));
    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy(
        cache::Representation::Auto, ttl);
    response_cache =
        std::make_shared<cache::ResponseCache>(cache::ResponseCache::Config{}, clock);
    client = std::make_unique<services::google::GoogleClient>(
        transport, "inproc://google/api", response_cache, options);
  }

  util::ManualClock clock;
  std::shared_ptr<GoogleBackend> backend;
  std::shared_ptr<transport::InProcessTransport> transport;
  std::shared_ptr<cache::ResponseCache> response_cache;
  std::unique_ptr<services::google::GoogleClient> client;
};

void ttl_consistency_sweep() {
  std::printf(
      "Ablation A (TTL vs consistency): source updates every 500ms, one\n"
      "request per 10ms of simulated time, 10s horizon\n");
  std::printf("%10s %10s %12s %14s\n", "ttl_ms", "hit_ratio", "stale_ratio",
              "backend_rps");

  for (int ttl_ms : {0, 100, 250, 500, 1000, 3600'000}) {
    Fixture f{std::chrono::milliseconds(ttl_ms)};
    const int kStepMs = 10, kHorizonMs = 10'000, kUpdateMs = 500;
    std::uint64_t version = 0;
    int stale = 0, total = 0;
    for (int now = 0; now < kHorizonMs; now += kStepMs) {
      if (now % kUpdateMs == 0) f.backend->set_version(++version);
      std::string suggestion = f.client->doSpellingSuggestion("stock quote");
      std::string expected = " (rev " + std::to_string(version) + ")";
      if (suggestion.find(expected) == std::string::npos) ++stale;
      ++total;
      f.clock.advance(std::chrono::milliseconds(kStepMs));
    }
    cache::StatsSnapshot s = f.response_cache->stats();
    std::printf("%10d %9.1f%% %11.1f%% %14.1f\n", ttl_ms,
                s.hit_ratio() * 100.0, 100.0 * stale / total,
                1000.0 * static_cast<double>(s.misses) / kHorizonMs);
  }
  std::printf(
      "expected shape: hit ratio rises and staleness rises with TTL;\n"
      "TTL <= update period keeps staleness near zero.\n\n");
}

void dos_burst() {
  std::printf(
      "Ablation B (DoS absorption): 100000 identical requests arriving over\n"
      "10s of simulated time, TTL = 1s\n");
  Fixture f{std::chrono::seconds(1)};
  const int kRequests = 100'000;
  const auto kStep = std::chrono::microseconds(100);  // 10k req/s flood
  for (int i = 0; i < kRequests; ++i) {
    f.client->doSpellingSuggestion("attack payload");
    f.clock.advance(kStep);
  }
  cache::StatsSnapshot s = f.response_cache->stats();
  std::printf("requests=%d backend_calls=%llu hit_ratio=%.3f%%\n", kRequests,
              static_cast<unsigned long long>(s.misses),
              s.hit_ratio() * 100.0);
  std::printf(
      "expected shape: ~10 backend calls (one per TTL window), hit ratio\n"
      "~99.99%% — \"response caching ... is effective against DoS attacks\".\n");
}

}  // namespace

int main() {
  ttl_consistency_sweep();
  dos_burst();
  return 0;
}
