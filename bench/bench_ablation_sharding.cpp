// Ablation — lock granularity under Figure-4-style concurrency.
//
// 25 closed-loop clients hammer one shared ResponseCache (hot set of 16
// keys, ~95% hits) with the cheap Reference representation, so the cache's
// own locking — not retrieval work — dominates.  Sweeps the shard count.
// On a single-core host the lock is rarely contended (threads timeslice),
// so gains are modest here; on multicore hardware the single mutex becomes
// the bottleneck this ablation exposes.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/response_cache.hpp"
#include "reflect/object.hpp"

using namespace wsc;
using namespace wsc::cache;

namespace {

class TinyValue final : public CachedValue {
 public:
  reflect::Object retrieve() const override {
    return reflect::Object::make(std::int32_t{1});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 32; }
};

double run_once(std::size_t shards, int clients, int ops_per_client) {
  ResponseCache::Config config;
  config.shards = shards;
  ResponseCache cache(config);
  for (int k = 0; k < 16; ++k) {
    cache.store(CacheKey("hot" + std::to_string(k)),
                std::make_shared<TinyValue>(), std::chrono::hours(1));
  }
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < ops_per_client; ++i) {
        CacheKey k("hot" + std::to_string((c + i) % 16));
        if (auto v = cache.lookup(k)) {
          reflect::Object o = v->retrieve();
          (void)o;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return clients * static_cast<double>(ops_per_client) / seconds;
}

}  // namespace

int main() {
  const int kClients = 25, kOps = 40'000;
  std::printf(
      "Ablation (lock sharding): %d concurrent clients, %d lookups each,\n"
      "16-key hot set, Reference representation\n",
      kClients, kOps);
  std::printf("%8s %16s\n", "shards", "lookups/sec");
  for (std::size_t shards : {1u, 2u, 4u, 8u, 16u, 32u}) {
    // Warm + measure twice, report the better run (less scheduler noise).
    double a = run_once(shards, kClients, kOps);
    double b = run_once(shards, kClients, kOps);
    std::printf("%8zu %16.0f\n", shards, std::max(a, b));
  }
  return 0;
}
