// Ablation — the contention-free hit path under Figure-4-style concurrency.
//
// Two sweeps, both over one shared cache with a 16-key hot set and the
// cheap Reference representation (so the cache's own locking — not
// retrieval work — dominates):
//
//   1. Shard sweep (the original ablation): closed-loop clients vs the
//      shard count of the CLOCK cache.
//   2. Thread-scaling sweep (BENCH_ablation_hitpath.json): 1/4/16/32
//      threads, old-mutex-LRU baseline vs the new CLOCK + shared-lock
//      hit path, measured two ways per thread count:
//        lookup : the hit alone, prebuilt keys (lock-scaling signal)
//        e2e    : keygen + hit (owned allocating key vs KeyScratch ref)
//      The baseline reproduces the pre-CLOCK lookup faithfully: one
//      exclusive mutex, clock read + expiry check + LRU splice (with the
//      skip-if-already-front optimization) + relaxed stat bump under it.
//
// Note on interpreting the scaling rows: exclusive-vs-shared locking can
// only diverge when critical sections actually overlap, i.e. with >= 2
// hardware threads.  On a single-core host every thread timeslices and
// both lock kinds run uncontended, so expect ~1x there — the JSON's
// "meta.hardware_concurrency" records the context.
//
// `--smoke` shrinks iteration counts to a CI-sized bitrot check: same
// code paths, tiny constants, still writes the JSON.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "core/cache_key.hpp"
#include "core/response_cache.hpp"
#include "reflect/object.hpp"

using namespace wsc;
using namespace wsc::cache;

namespace {

class TinyValue final : public CachedValue {
 public:
  reflect::Object retrieve() const override {
    return reflect::Object::make(std::int32_t{1});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 32; }
};

/// The pre-CLOCK hit path, kept verbatim as the ablation baseline: one
/// exclusive mutex guarding an unordered_map plus an std::list in exact
/// LRU order, with the old lookup's full critical section (wall-clock
/// read, expiry compare, conditional splice-to-front, relaxed hit count).
class MutexLruCache {
 public:
  MutexLruCache() { shards_.push_back(std::make_unique<Shard>()); }

  void store(CacheKey key, std::shared_ptr<const CachedValue> value,
             std::chrono::milliseconds ttl) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    auto [it, inserted] = s.map.try_emplace(std::move(key));
    if (inserted) {
      s.order.push_front(&it->first);
      it->second.order = s.order.begin();
    }
    it->second.value = std::move(value);
    it->second.expiry = std::chrono::steady_clock::now() + ttl;
  }

  std::shared_ptr<const CachedValue> lookup(const CacheKey& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return nullptr;
    if (std::chrono::steady_clock::now() >= it->second.expiry)
      return nullptr;  // (eviction elided: the bench never expires)
    // Exact LRU: every hit mutates the recency list under the lock.
    if (it->second.order != s.order.begin())
      s.order.splice(s.order.begin(), s.order, it->second.order);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.value;
  }

 private:
  struct Entry {
    std::shared_ptr<const CachedValue> value;
    std::chrono::steady_clock::time_point expiry;
    std::list<const CacheKey*>::iterator order;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<CacheKey, Entry, CacheKey::Hasher, CacheKey::Eq> map;
    std::list<const CacheKey*> order;
  };
  Shard& shard_for(const CacheKey& key) {
    // The old per-call shard selection, runtime modulo included.
    return *shards_[(key.hash() >> 48) % shards_.size()];
  }
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
};

/// 16 hot requests with realistic ToString key material (endpoint,
/// operation, five parameters) so keygen cost is representative.
std::vector<soap::RpcRequest> hot_requests() {
  std::vector<soap::RpcRequest> reqs;
  for (int i = 0; i < 16; ++i) {
    soap::RpcRequest r;
    r.endpoint = "http://api.example.com/search/beta2";
    r.ns = "urn:Search";
    r.operation = "doSearch";
    r.params = {{"key", reflect::Object::make(std::string(32, '0'))},
                {"q", reflect::Object::make(std::string("hot query ") +
                                            std::to_string(i))},
                {"start", reflect::Object::make(std::int32_t{i * 10})},
                {"maxResults", reflect::Object::make(std::int32_t{10})},
                {"safeSearch", reflect::Object::make(false)}};
    reqs.push_back(std::move(r));
  }
  return reqs;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run `threads` closed-loop workers, each performing ops_per_thread calls
/// of per_op(thread_index, iteration); returns aggregate ops/sec.
template <typename PerOp>
double timed(int threads, int ops_per_thread, const PerOp& per_op) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < ops_per_thread; ++i) per_op(t, i);
    });
  }
  for (auto& th : pool) th.join();
  return threads * static_cast<double>(ops_per_thread) / seconds_since(t0);
}

struct ScalePair {
  double mutex_lru = 0;
  double clock = 0;
};

/// Pure hit throughput: prebuilt keys, the lock + table + recency update
/// is the whole op.
ScalePair run_lookup_scaling(int threads, int ops_per_thread,
                             const std::vector<soap::RpcRequest>& reqs) {
  ToStringKeyGenerator gen;
  std::vector<CacheKey> keys;
  for (const auto& r : reqs) keys.push_back(gen.generate(r));

  MutexLruCache lru;
  for (const auto& k : keys)
    lru.store(k, std::make_shared<TinyValue>(), std::chrono::hours(1));
  ResponseCache::Config config;
  config.shards = 1;
  ResponseCache clk(config);
  for (const auto& k : keys)
    clk.store(k, std::make_shared<TinyValue>(), std::chrono::hours(1));

  ScalePair out;
  out.mutex_lru = timed(threads, ops_per_thread, [&](int t, int i) {
    if (lru.lookup(keys[(t + i) % keys.size()]) == nullptr) std::abort();
  });
  out.clock = timed(threads, ops_per_thread, [&](int t, int i) {
    if (clk.lookup(keys[(t + i) % keys.size()].ref()) == nullptr)
      std::abort();
  });
  return out;
}

/// End-to-end hit: key generation + lookup per op.  Baseline pays the old
/// owned (allocating) CacheKey per call; the new path reuses a per-thread
/// KeyScratch and probes with the borrowed ref.
ScalePair run_e2e_scaling(int threads, int ops_per_thread,
                          const std::vector<soap::RpcRequest>& reqs) {
  ToStringKeyGenerator gen;
  MutexLruCache lru;
  ResponseCache::Config config;
  config.shards = 1;
  ResponseCache clk(config);
  for (const auto& r : reqs) {
    lru.store(gen.generate(r), std::make_shared<TinyValue>(),
              std::chrono::hours(1));
    clk.store(gen.generate(r), std::make_shared<TinyValue>(),
              std::chrono::hours(1));
  }

  ScalePair out;
  out.mutex_lru = timed(threads, ops_per_thread, [&](int t, int i) {
    CacheKey key = gen.generate(reqs[(t + i) % reqs.size()]);
    if (lru.lookup(key) == nullptr) std::abort();
  });
  std::vector<KeyScratch> scratches(threads);
  out.clock = timed(threads, ops_per_thread, [&](int t, int i) {
    KeyScratch& scratch = scratches[t];
    gen.generate_into(reqs[(t + i) % reqs.size()], scratch);
    if (clk.lookup(scratch.ref()) == nullptr) std::abort();
  });
  return out;
}

double run_shard_sweep(std::size_t shards, int clients, int ops_per_client) {
  ResponseCache::Config config;
  config.shards = shards;
  ResponseCache cache(config);
  for (int k = 0; k < 16; ++k) {
    cache.store(CacheKey("hot" + std::to_string(k)),
                std::make_shared<TinyValue>(), std::chrono::hours(1));
  }
  return timed(clients, ops_per_client, [&](int c, int i) {
    CacheKey k("hot" + std::to_string((c + i) % 16));
    if (auto v = cache.lookup(k)) {
      reflect::Object o = v->retrieve();
      (void)o;
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int kShardClients = 25;
  const int kShardOps = smoke ? 400 : 40'000;
  const int kScaleOps = smoke ? 20'000 : 800'000;  // total ops per cell

  std::printf(
      "Ablation 1 (lock sharding): %d concurrent clients, %d lookups each,\n"
      "16-key hot set, Reference representation\n",
      kShardClients, kShardOps);
  std::printf("%8s %16s\n", "shards", "lookups/sec");
  wsc::bench::BenchJson json;
  for (std::size_t shards : {1u, 2u, 4u, 8u, 16u, 32u}) {
    // Warm + measure twice, report the better run (less scheduler noise).
    double a = run_shard_sweep(shards, kShardClients, kShardOps);
    double b = run_shard_sweep(shards, kShardClients, kShardOps);
    double best = std::max(a, b);
    std::printf("%8zu %16.0f\n", shards, best);
    json.add("shards=" + std::to_string(shards), "lookups_per_sec", best);
  }

  std::printf(
      "\nAblation 2 (hit-path scaling), 16-key hot set, 1 shard each:\n"
      "  mutex_lru : exclusive mutex, LRU splice per hit (pre-CLOCK)\n"
      "  clock     : shared lock, relaxed CLOCK mark per hit\n"
      "  lookup = prebuilt keys; e2e = keygen (owned vs KeyScratch) + hit\n");
  std::printf("%8s %14s %14s %8s %14s %14s %8s\n", "threads", "lru lookup/s",
              "clk lookup/s", "speedup", "lru e2e/s", "clk e2e/s", "speedup");
  auto reqs = hot_requests();
  for (int threads : {1, 4, 16, 32}) {
    int per_thread = std::max(1, kScaleOps / threads);
    ScalePair look, e2e;
    for (int rep = 0; rep < 2; ++rep) {  // best-of-2, as above
      ScalePair a = run_lookup_scaling(threads, per_thread, reqs);
      look.mutex_lru = std::max(look.mutex_lru, a.mutex_lru);
      look.clock = std::max(look.clock, a.clock);
      ScalePair b = run_e2e_scaling(threads, per_thread, reqs);
      e2e.mutex_lru = std::max(e2e.mutex_lru, b.mutex_lru);
      e2e.clock = std::max(e2e.clock, b.clock);
    }
    std::string row = "threads=" + std::to_string(threads);
    json.add(row, "mutex_lru_hits_per_sec", look.mutex_lru);
    json.add(row, "clock_hits_per_sec", look.clock);
    json.add(row, "speedup", look.clock / look.mutex_lru);
    json.add(row, "mutex_lru_e2e_per_sec", e2e.mutex_lru);
    json.add(row, "clock_e2e_per_sec", e2e.clock);
    json.add(row, "e2e_speedup", e2e.clock / e2e.mutex_lru);
    std::printf("%8d %14.0f %14.0f %7.2fx %14.0f %14.0f %7.2fx\n", threads,
                look.mutex_lru, look.clock, look.clock / look.mutex_lru,
                e2e.mutex_lru, e2e.clock, e2e.clock / e2e.mutex_lru);
  }
  // Single-thread latency guard (the ±5% criterion): ns per pure hit.
  {
    ScalePair lat;
    for (int rep = 0; rep < 2; ++rep) {
      ScalePair a = run_lookup_scaling(1, kScaleOps, reqs);
      lat.mutex_lru = std::max(lat.mutex_lru, a.mutex_lru);
      lat.clock = std::max(lat.clock, a.clock);
    }
    json.add("single_thread_latency", "mutex_lru_ns_per_hit",
             1e9 / lat.mutex_lru);
    json.add("single_thread_latency", "clock_ns_per_hit", 1e9 / lat.clock);
    json.add("single_thread_latency", "ratio", lat.mutex_lru / lat.clock);
    std::printf("\nsingle-thread latency: mutex_lru %.1f ns/hit, "
                "clock %.1f ns/hit\n", 1e9 / lat.mutex_lru, 1e9 / lat.clock);
  }
  json.add("meta", "hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));
  json.add("meta", "default_shards",
           static_cast<double>(default_shard_count()));
  json.add("meta", "smoke", smoke ? 1 : 0);
  json.write_file("BENCH_ablation_hitpath.json");
  return 0;
}
