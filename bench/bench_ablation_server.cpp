// Ablation K (ISSUE 9) — thread-per-connection vs epoll reactor under
// concurrent keep-alive load.
//
// For each server mode and connection count (1 / 100 / 1k / 10k), a load
// client drives closed-loop keep-alive traffic and reports req/s and
// p50/p99/p999 latency.  The client runs in a SEPARATE PROCESS (this
// binary re-exec'd with --client): at 10k connections the two endpoints
// together need ~20k descriptors, which would exhaust one process's fd
// table, and a separate client also keeps its epoll loop honest (no
// loopback shortcuts through shared memory).
//
// After every scenario the server must return to zero active connections,
// and across the whole run the orchestrator's fd and thread counts must
// come back to their baselines — the leak checks that would have caught
// the worker-handle leak this PR fixes.
//
// Run with --smoke for the CI-sized version (capped connections/duration).
#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "http/load_client.hpp"
#include "http/server.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

using namespace wsc;

namespace {

// ---------------------------------------------------------------- client

int run_client(int argc, char** argv) {
  http::LoadOptions options;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      options.connections = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      options.duration = std::chrono::milliseconds(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--warmup-ms") == 0 && i + 1 < argc) {
      options.warmup = std::chrono::milliseconds(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--rps") == 0 && i + 1 < argc) {
      options.open_rps = std::atof(argv[++i]);
    }
  }
  try {
    http::LoadReport report = http::run_load(options);
    std::printf("%s\n", report.json().c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "client: %s\n", e.what());
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------- orchestrator

std::size_t open_fd_count() {
  std::size_t n = 0;
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
    n -= 3;  // ".", "..", and the dirfd itself
  }
  return n;
}

std::uint64_t proc_status_value(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t value = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      value = std::strtoull(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

/// Our own binary path (popen goes through sh, where /proc/self/exe would
/// name the shell, not us).
std::string self_exe() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) throw TransportError("readlink /proc/self/exe failed");
  buf[n] = '\0';
  return std::string(buf);
}

/// Re-exec ourselves as the load client and parse its JSON report.
util::json::Value spawn_client(std::uint16_t port, std::size_t connections,
                               long duration_ms, long warmup_ms) {
  std::string cmd = "'" + self_exe() + "'" +
                    " --client --port " + std::to_string(port) +
                    " --connections " + std::to_string(connections) +
                    " --duration-ms " + std::to_string(duration_ms) +
                    " --warmup-ms " + std::to_string(warmup_ms);
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (!pipe) throw TransportError("popen failed for load client");
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  int status = ::pclose(pipe);
  if (status != 0 || out.empty())
    throw TransportError("load client failed (status " +
                         std::to_string(status) + ")");
  return util::json::parse(out);
}

http::Handler make_handler() {
  // ~1 KB page, the ballpark of the portal's rendered results — enough
  // body that serialization and write paths do real work, small enough
  // that the bench measures connection handling, not memcpy.
  auto page = std::make_shared<std::string>();
  page->reserve(1024);
  while (page->size() < 1024) *page += "the quick brown fox jumps over ";
  return [page](const http::Request&) {
    http::Response response;
    response.headers.set("Content-Type", "text/plain");
    response.body = *page;
    return response;
  };
}

struct Scenario {
  const char* mode_name;
  http::ServerOptions::Mode mode;
  std::size_t connections;
};

void run_scenario(bench::BenchJson& json, const Scenario& scenario,
                  long duration_ms, long warmup_ms) {
  http::ServerOptions options;
  options.mode = scenario.mode;
  options.idle_timeout = std::chrono::milliseconds(120'000);
  options.max_connections = 16 * 1024;
  http::HttpServer server(0, make_handler(), options);
  server.start();

  const std::string row = std::string(scenario.mode_name) + "/" +
                          std::to_string(scenario.connections) + "conn";
  std::printf("%-18s ...", row.c_str());
  std::fflush(stdout);
  util::json::Value report = spawn_client(server.port(), scenario.connections,
                                          duration_ms, warmup_ms);
  json.add(row, "connections", static_cast<double>(scenario.connections));
  json.add(row, "rps", report.number_or("rps"));
  json.add(row, "p50_us", report.number_or("p50_us"));
  json.add(row, "p99_us", report.number_or("p99_us"));
  json.add(row, "p999_us", report.number_or("p999_us"));
  json.add(row, "errors", report.number_or("errors"));
  std::printf(" %9.0f req/s  p50 %7.0fus  p99 %7.0fus  p999 %7.0fus\n",
              report.number_or("rps"), report.number_or("p50_us"),
              report.number_or("p99_us"), report.number_or("p999_us"));

  server.stop();
  // Leak check: a stopped server holds no connections.
  const std::uint64_t active =
      server.stats().connections_active.load(std::memory_order_relaxed);
  json.add(row, "active_after_stop", static_cast<double>(active));
  if (active != 0)
    std::printf("  WARNING: %llu connections still active after stop\n",
                static_cast<unsigned long long>(active));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--client") == 0)
    return run_client(argc, argv);

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  util::set_log_level(util::LogLevel::Off);
  http::raise_fd_soft_limit();

  const long duration_ms = smoke ? 1'000 : 5'000;
  const long warmup_ms = smoke ? 200 : 1'000;
  std::vector<std::size_t> counts =
      smoke ? std::vector<std::size_t>{1, 64}
            : std::vector<std::size_t>{1, 100, 1'000, 10'000};

  const std::size_t fds_before = open_fd_count();
  const std::uint64_t threads_before = proc_status_value("Threads");

  bench::BenchJson json;
  for (std::size_t conns : counts) {
    Scenario reactor{"reactor", http::ServerOptions::Mode::Reactor, conns};
    run_scenario(json, reactor, duration_ms, warmup_ms);
    Scenario threaded{"threaded", http::ServerOptions::Mode::Threaded, conns};
    run_scenario(json, threaded, duration_ms, warmup_ms);
  }

  // Process-level leak check: every scenario's server (and its worker
  // threads and sockets) must be fully torn down by now.
  const std::size_t fds_after = open_fd_count();
  const std::uint64_t threads_after = proc_status_value("Threads");
  json.add("leakcheck", "fds_before", static_cast<double>(fds_before));
  json.add("leakcheck", "fds_after", static_cast<double>(fds_after));
  json.add("leakcheck", "threads_before", static_cast<double>(threads_before));
  json.add("leakcheck", "threads_after", static_cast<double>(threads_after));
  json.add("leakcheck", "rss_kb", static_cast<double>(proc_status_value("VmRSS")));
  std::printf("leakcheck: fds %zu -> %zu, threads %llu -> %llu\n", fds_before,
              fds_after, static_cast<unsigned long long>(threads_before),
              static_cast<unsigned long long>(threads_after));

  json.write_file("BENCH_ablation_server.json");
  if (fds_after > fds_before || threads_after > threads_before) {
    std::fprintf(stderr, "LEAK: fd or thread count grew across scenarios\n");
    return 1;
  }
  return 0;
}
