// Ablation L — does closing the loop (adaptive representation selection
// from live cost models) beat the paper's static trait-based auto_select?
//
// Four sections, all on doGoogleSearch (the large/complex result where
// representations differ most), over the in-process transport:
//
//   1. Shifting-mix sweep: every fixed representation, static Auto, and
//      the adaptive policy under each objective drive the same workload
//      of alternating hot (hit-heavy) and churn (store-heavy) rounds
//      with a decision tick per round.  Per variant: median measured
//      hit latency (second-half hot rounds, so adaptive is converged),
//      bytes/entry of the final churn round's stores, and the weighted
//      objective J = alpha*hit_ns + beta*bytes.
//   2. Memory pressure: a small cache byte budget; churn drives the
//      footprint over the high watermark and the policy must force the
//      Bytes objective and shrink new entries to the serialized
//      envelope (~2.5 KB vs ~13 KB reflection copies).
//   3. Converged-overhead (paired medians): alternating same-length hit
//      batches on a static-auto client and a converged adaptive client;
//      overhead_pct compares the medians of the per-batch means, so
//      scheduler noise hits both sides symmetrically.
//   4. Seed reproducibility: two runs with the same seed must make the
//      identical probe stream and decisions.
//
// Writes BENCH_ablation_adaptive.json.  `--smoke` shrinks the workload
// to a CI-sized bitrot check: same code paths, noisier numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/adaptive_policy.hpp"
#include "core/client.hpp"
#include "core/response_cache.hpp"
#include "obs/profiles.hpp"
#include "services/google/stub.hpp"
#include "transport/inproc_transport.hpp"

namespace {

using namespace wsc;
using reflect::Object;
using soap::Parameter;

constexpr const char* kEndpoint = "inproc://bench/google";
constexpr const char* kOp = "doGoogleSearch";
// ns-per-byte weight of the weighted objective: makes the ~10.5 KB gap
// between a reflection copy and the serialized envelope dominate the
// few-microsecond retrieval gap, as a byte-constrained deployment would.
constexpr double kAlpha = 1.0;
constexpr double kBeta = 10.0;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<Parameter> search_params(const std::string& q) {
  return {Parameter{"key", Object::make(std::string(32, '0'))},
          Parameter{"q", Object::make(q)},
          Parameter{"start", Object::make(std::int32_t{0})},
          Parameter{"maxResults", Object::make(std::int32_t{10})},
          Parameter{"filter", Object::make(false)},
          Parameter{"restrict", Object::make(std::string())},
          Parameter{"safeSearch", Object::make(false)},
          Parameter{"lr", Object::make(std::string())},
          Parameter{"ie", Object::make(std::string("latin1"))},
          Parameter{"oe", Object::make(std::string("latin1"))}};
}

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

struct RunConfig {
  int rounds = 8;      // even: hot phase, odd: churn phase
  int hot_keys = 8;    // fresh per hot round, so hits see the current rep
  int hot_iters = 60;  // passes over the hot set per hot round
  int churn_keys = 400;
  std::uint64_t seed = 1;
};

struct Variant {
  std::string name;
  cache::Representation fixed = cache::Representation::Auto;  // Auto = policy
  bool adaptive = false;
  cache::AdaptiveObjective objective = cache::AdaptiveObjective::Weighted;
};

struct RunResult {
  double hit_ns = 0;          // median measured hit, converged half
  double bytes_per_entry = 0; // mean over the final churn round's entries
  double weighted = 0;        // kAlpha*hit_ns + kBeta*bytes_per_entry
  std::uint64_t switches = 0;
  std::uint64_t decisions = 0;
  std::uint64_t explore_stores = 0;
  cache::Representation final_rep = cache::Representation::Auto;
};

std::shared_ptr<cache::AdaptivePolicy> make_policy(
    cache::AdaptiveObjective objective, std::uint64_t seed,
    double sample_fraction = 1.0) {
  cache::AdaptivePolicy::Config config;
  config.objective = objective;
  config.alpha = kAlpha;
  config.beta = kBeta;
  config.sample_fraction = sample_fraction;
  config.seed = seed;
  config.decision_interval = std::chrono::hours(24);  // bench ticks by hand
  return std::make_shared<cache::AdaptivePolicy>(
      std::make_shared<obs::CostProfiles>(), config);
}

RunResult run_variant(const std::shared_ptr<transport::Transport>& transport,
                      const Variant& variant, const RunConfig& rc) {
  auto response_cache = std::make_shared<cache::ResponseCache>();
  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy(variant.fixed);
  std::shared_ptr<cache::AdaptivePolicy> policy;
  if (variant.adaptive) {
    policy = make_policy(variant.objective, rc.seed);
    options.adaptive = policy;
  }
  cache::CachingServiceClient client(transport,
                                     services::google::google_description(),
                                     kEndpoint, response_cache,
                                     std::move(options));

  std::vector<double> hit_samples;
  for (int round = 0; round < rc.rounds; ++round) {
    if (round % 2 == 0) {
      // Hot phase on a fresh hot set: pass 0 stores (with whatever the
      // variant currently selects), later passes are pure hits.
      for (int pass = 0; pass < rc.hot_iters; ++pass) {
        for (int k = 0; k < rc.hot_keys; ++k) {
          const std::string q = "hot-r" + std::to_string(round) + "-k" +
                                std::to_string(k);
          if (pass == 0 || round < rc.rounds / 2) {
            client.invoke(kOp, search_params(q));
          } else {
            const std::uint64_t t0 = now_ns();
            client.invoke(kOp, search_params(q));
            hit_samples.push_back(static_cast<double>(now_ns() - t0));
          }
        }
      }
    } else {
      for (int k = 0; k < rc.churn_keys; ++k)
        client.invoke(kOp, search_params("p" + std::to_string(round) + "-k" +
                                         std::to_string(k)));
    }
    if (policy) policy->decide_now();
  }

  RunResult result;
  result.hit_ns = median(std::move(hit_samples));
  // Bytes per entry of the FINAL churn round's stores (the converged
  // representation), not the whole cache (which mixes warmup entries).
  const int last_churn = rc.rounds - 1;
  double bytes = 0;
  int counted = 0;
  for (int k = 0; k < std::min(rc.churn_keys, 64); ++k) {
    const cache::CacheKey key = client.key_for(
        kOp, search_params("p" + std::to_string(last_churn) + "-k" +
                           std::to_string(k)));
    if (std::shared_ptr<const cache::CachedValue> value =
            response_cache->lookup(key)) {
      bytes += static_cast<double>(value->memory_size());
      ++counted;
      result.final_rep = value->representation();
    }
  }
  if (counted) result.bytes_per_entry = bytes / counted;
  result.weighted = kAlpha * result.hit_ns + kBeta * result.bytes_per_entry;
  if (policy) {
    result.switches = policy->switches();
    result.decisions = policy->decisions();
    result.explore_stores = policy->explore_stores();
    if (result.final_rep == cache::Representation::Auto)
      result.final_rep = policy->current(kOp);
  }
  return result;
}

/// Section 2: small byte budget, churn until pressure, report what new
/// entries cost afterwards.
void memory_pressure(wsc::bench::BenchJson& json,
                     const std::shared_ptr<transport::Transport>& transport,
                     bool smoke) {
  auto response_cache = std::make_shared<cache::ResponseCache>(
      cache::ResponseCache::Config{.max_bytes = 256 * 1024});
  cache::CachingServiceClient::Options options;
  options.policy = services::google::default_google_policy();
  auto policy = make_policy(cache::AdaptiveObjective::Latency, 1);
  options.adaptive = policy;  // budget rides in via bind_cache()
  cache::CachingServiceClient client(transport,
                                     services::google::google_description(),
                                     kEndpoint, response_cache,
                                     std::move(options));

  // Fill: reflection copies (~13 KB each) blow through the 0.9 * 256 KiB
  // watermark within ~20 entries.
  const int fill = smoke ? 40 : 80;
  double pre_bytes = 0;
  int pre_counted = 0;
  for (int k = 0; k < fill; ++k) {
    client.invoke(kOp, search_params("fill-" + std::to_string(k)));
    if (k < 8) {
      const cache::CacheKey key =
          client.key_for(kOp, search_params("fill-" + std::to_string(k)));
      if (auto value = response_cache->lookup(key)) {
        pre_bytes += static_cast<double>(value->memory_size());
        ++pre_counted;
      }
    }
    if (k % 10 == 9) policy->decide_now();
  }
  // Under pressure now: new stores must use the byte-minimal form.
  const int post = smoke ? 20 : 40;
  double post_bytes = 0;
  int post_counted = 0;
  for (int k = 0; k < post; ++k) {
    client.invoke(kOp, search_params("post-" + std::to_string(k)));
    const cache::CacheKey key =
        client.key_for(kOp, search_params("post-" + std::to_string(k)));
    if (auto value = response_cache->lookup(key)) {
      post_bytes += static_cast<double>(value->memory_size());
      ++post_counted;
    }
  }
  const double pre = pre_counted ? pre_bytes / pre_counted : 0;
  const double post_avg = post_counted ? post_bytes / post_counted : 0;
  std::printf(
      "pressure: budget 256KiB, bytes/entry %.0f -> %.0f, transitions %llu, "
      "pressure %s\n",
      pre, post_avg,
      static_cast<unsigned long long>(policy->pressure_transitions()),
      policy->memory_pressure() ? "ON" : "off");
  json.add("pressure", "budget_bytes", 256 * 1024);
  json.add("pressure", "pre_bytes_per_entry", pre);
  json.add("pressure", "post_bytes_per_entry", post_avg);
  json.add("pressure", "transitions",
           static_cast<double>(policy->pressure_transitions()));
  json.add("pressure", "engaged", policy->memory_pressure() ? 1 : 0);
}

/// Section 3: paired-median hit-path overhead of a converged policy.
void converged_overhead(wsc::bench::BenchJson& json,
                        const std::shared_ptr<transport::Transport>& transport,
                        bool smoke) {
  auto make_client = [&](std::shared_ptr<cache::AdaptivePolicy> policy) {
    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy();
    options.adaptive = std::move(policy);
    // Both sides carry live cost profiles (the production portal always
    // does): the delta measured here is the adaptive machinery alone,
    // not the already-budgeted telemetry sampling.
    if (!options.adaptive)
      options.profiles = std::make_shared<obs::CostProfiles>();
    return cache::CachingServiceClient(
        transport, services::google::google_description(), kEndpoint,
        std::make_shared<cache::ResponseCache>(), std::move(options));
  };
  // Default sample fraction: the production setting, not the bench's
  // probe-everything exploration mode.
  auto policy = make_policy(cache::AdaptiveObjective::Latency, 1,
                            cache::AdaptivePolicy::Config{}.sample_fraction);
  cache::CachingServiceClient stat = make_client(nullptr);
  cache::CachingServiceClient adap = make_client(policy);

  const int kHot = 8;
  for (int k = 0; k < kHot; ++k) {
    stat.invoke(kOp, search_params("ovh-" + std::to_string(k)));
    adap.invoke(kOp, search_params("ovh-" + std::to_string(k)));
  }
  policy->decide_now();  // converged: hot set stays, no switches follow

  const int batches = smoke ? 8 : 24;
  const int per_batch = smoke ? 100 : 400;
  std::vector<double> stat_ns, adap_ns;
  auto run_batch = [&](cache::CachingServiceClient& client) {
    const std::uint64_t t0 = now_ns();
    for (int i = 0; i < per_batch; ++i)
      client.invoke(kOp, search_params("ovh-" + std::to_string(i % kHot)));
    return static_cast<double>(now_ns() - t0) / per_batch;
  };
  for (int b = 0; b < batches; ++b) {
    stat_ns.push_back(run_batch(stat));  // paired: same scheduler epoch
    adap_ns.push_back(run_batch(adap));
    policy->decide_now();
  }
  const double stat_med = median(std::move(stat_ns));
  const double adap_med = median(std::move(adap_ns));
  const double overhead_pct =
      stat_med > 0 ? 100.0 * (adap_med - stat_med) / stat_med : 0;
  std::printf("overhead: static %.0fns adaptive %.0fns -> %+.2f%%\n", stat_med,
              adap_med, overhead_pct);
  json.add("overhead", "static_hit_ns", stat_med);
  json.add("overhead", "adaptive_hit_ns", adap_med);
  json.add("overhead", "overhead_pct", overhead_pct);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  auto backend = std::make_shared<services::google::GoogleBackend>();
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind(kEndpoint, services::google::make_google_service(backend));

  RunConfig rc;
  if (smoke) {
    rc.rounds = 4;
    rc.hot_iters = 20;
    rc.churn_keys = 64;
  }

  std::vector<Variant> variants = {
      {"fixed/XML_message", cache::Representation::XmlMessage},
      {"fixed/SAX_compact", cache::Representation::SaxEventsCompact},
      {"fixed/Serialized", cache::Representation::Serialized},
      {"fixed/Reflection", cache::Representation::ReflectionCopy},
      {"static_auto", cache::Representation::Auto},
      {"adaptive/latency", cache::Representation::Auto, true,
       cache::AdaptiveObjective::Latency},
      {"adaptive/bytes", cache::Representation::Auto, true,
       cache::AdaptiveObjective::Bytes},
      {"adaptive/weighted", cache::Representation::Auto, true,
       cache::AdaptiveObjective::Weighted},
  };

  wsc::bench::BenchJson json;
  double static_weighted = 0, adaptive_weighted = 0;
  double best_fixed_hit = 0, best_fixed_bytes = 0;
  double adaptive_latency_hit = 0, adaptive_bytes_bytes = 0;
  for (const Variant& variant : variants) {
    const RunResult r = run_variant(transport, variant, rc);
    std::printf("%-20s hit %8.0fns  bytes/entry %7.0f  J %9.0f  "
                "switches %llu  -> %s\n",
                variant.name.c_str(), r.hit_ns, r.bytes_per_entry, r.weighted,
                static_cast<unsigned long long>(r.switches),
                cache::representation_name(r.final_rep).data());
    json.add("mix/" + variant.name, "hit_ns", r.hit_ns);
    json.add("mix/" + variant.name, "bytes_per_entry", r.bytes_per_entry);
    json.add("mix/" + variant.name, "weighted_J", r.weighted);
    json.add("mix/" + variant.name, "switches",
             static_cast<double>(r.switches));
    json.add("mix/" + variant.name, "final_rep",
             static_cast<double>(r.final_rep));
    if (variant.name == "static_auto") static_weighted = r.weighted;
    if (variant.name == "adaptive/weighted") adaptive_weighted = r.weighted;
    if (variant.name == "adaptive/latency") adaptive_latency_hit = r.hit_ns;
    if (variant.name == "adaptive/bytes") adaptive_bytes_bytes =
        r.bytes_per_entry;
    if (variant.name.rfind("fixed/", 0) == 0) {
      if (best_fixed_hit == 0 || r.hit_ns < best_fixed_hit)
        best_fixed_hit = r.hit_ns;
      if (best_fixed_bytes == 0 || r.bytes_per_entry < best_fixed_bytes)
        best_fixed_bytes = r.bytes_per_entry;
    }
  }
  // Acceptance ratios (>= 1.2 gain over static auto on the weighted
  // objective; pure objectives within 10% of the best fixed form).
  const double gain =
      adaptive_weighted > 0 ? static_weighted / adaptive_weighted : 0;
  json.add("criteria", "weighted_gain_vs_static", gain);
  json.add("criteria", "latency_vs_best_fixed",
           best_fixed_hit > 0 ? adaptive_latency_hit / best_fixed_hit : 0);
  json.add("criteria", "bytes_vs_best_fixed",
           best_fixed_bytes > 0 ? adaptive_bytes_bytes / best_fixed_bytes : 0);
  std::printf("weighted gain vs static auto: %.2fx\n", gain);

  memory_pressure(json, transport, smoke);
  converged_overhead(json, transport, smoke);

  // Section 4: given identical cost feeds, the probe stream AND the
  // decisions are a pure function of the seed — two policies driven by
  // the same synthetic sequence must trace identically (real-run scores
  // differ only because measured timings differ).
  auto trace = [](std::uint64_t seed) {
    cache::AdaptivePolicy::Config config;
    config.objective = cache::AdaptiveObjective::Weighted;
    config.alpha = kAlpha;
    config.beta = kBeta;
    config.sample_fraction = 0.25;
    config.seed = seed;
    config.decision_interval = std::chrono::hours(24);
    auto profiles = std::make_shared<obs::CostProfiles>();
    cache::AdaptivePolicy policy(profiles, config);
    const std::vector<cache::Representation> applicable = {
        cache::Representation::Serialized,
        cache::Representation::ReflectionCopy,
        cache::Representation::SaxEventsCompact};
    std::string t;
    for (int i = 0; i < 200; ++i) {
      const cache::AdaptivePolicy::Choice choice = policy.choose(
          "Svc", kOp, cache::Representation::ReflectionCopy, applicable);
      t.push_back('0' + static_cast<char>(choice.representation));
      t.push_back('0' + static_cast<char>(choice.probe));
      if (choice.probe != cache::Representation::Auto)
        profiles->record_probe("Svc", kOp,
                               cache::representation_name(choice.probe),
                               1000 + 500 * static_cast<int>(choice.probe), 0,
                               2000 + 1000 * static_cast<int>(choice.probe));
      if (i % 40 == 39) {
        policy.decide_now();
        t.push_back('D');
        t.push_back('0' + static_cast<char>(policy.current(kOp)));
      }
    }
    return t;
  };
  const std::string run_a = trace(42), run_b = trace(42);
  const bool match = run_a == run_b;
  std::printf("seed reproducibility: %s (trace %zu events, differs from "
              "seed 43: %s)\n",
              match ? "ok" : "MISMATCH", run_a.size(),
              trace(43) != run_a ? "yes" : "no");
  json.add("criteria", "seed_reproducible", match ? 1 : 0);
  json.add("meta", "smoke", smoke ? 1 : 0);
  json.write_file("BENCH_ablation_adaptive.json");
  return 0;
}
