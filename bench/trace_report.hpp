// --trace support for the reproduction benchmarks: print the tracer's
// per-(operation, representation, outcome) stage breakdown, the paper's
// Tables 6/7 decomposition measured live inside the middleware instead of
// reconstructed from separate micro-benchmarks.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace.hpp"

namespace wsc::bench {

inline bool trace_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--trace") == 0) return true;
  return false;
}

/// Print per-group mean stage costs (ns/call) next to the traced
/// end-to-end mean, with the per-group gap between the two.  Returns the
/// AGGREGATE deviation |sum(stage_ns) - sum(total_ns)| / sum(total_ns)
/// across all printed groups (0 when nothing was traced): the untraced
/// residue is per-call glue of roughly constant cost, so the aggregate —
/// dominated by the expensive cells — is the honest figure of merit.
inline double print_trace_breakdown(const obs::TraceSummary& summary,
                                    std::uint64_t min_calls = 1) {
  std::printf("\n--trace: mean per-stage breakdown (ns/call)\n");
  std::printf("%-22s %-18s %-12s %8s", "operation", "representation",
              "outcome", "calls");
  for (std::size_t i = 0; i < obs::kStageCount; ++i)
    std::printf(" %11s",
                std::string(obs::stage_name(static_cast<obs::Stage>(i))).c_str());
  std::printf(" %12s %12s %7s\n", "stage_sum", "total", "delta%");

  double grand_total = 0, grand_stages = 0;
  for (const obs::GroupSummary& g : summary.groups) {
    if (g.calls < min_calls) continue;
    const double total = g.mean_total_ns();
    const double stage_sum = g.mean_stage_sum_ns();
    std::printf("%-22s %-18s %-12s %8llu", g.labels.operation.c_str(),
                g.labels.representation.empty()
                    ? "-"
                    : g.labels.representation.c_str(),
                std::string(obs::outcome_name(g.labels.outcome)).c_str(),
                static_cast<unsigned long long>(g.calls));
    for (std::size_t i = 0; i < obs::kStageCount; ++i)
      std::printf(" %11.0f", g.stages[i].mean_ns());
    std::printf(" %12.0f %12.0f %6.1f%%\n", stage_sum, total,
                total > 0 ? (stage_sum - total) / total * 100.0 : 0.0);
    grand_total += static_cast<double>(g.total_sum_ns);
    for (const obs::StageAgg& s : g.stages)
      grand_stages += static_cast<double>(s.sum_ns);
  }
  if (summary.dropped_exemplars > 0)
    std::printf("(%llu exemplars dropped from the ring)\n",
                static_cast<unsigned long long>(summary.dropped_exemplars));
  if (grand_total <= 0) return 0.0;
  const double deviation = std::fabs(grand_stages - grand_total) / grand_total;
  std::printf(
      "aggregate: traced stages cover %.2f%% of end-to-end time "
      "(deviation %.2f%%)\n",
      grand_stages / grand_total * 100.0, deviation * 100.0);
  return deviation;
}

}  // namespace wsc::bench
