// Figure 3 — portal throughput and average response time vs cache-hit
// ratio, WITHOUT concurrent access (one closed-loop client; the paper's
// portal CPU sat at 50-70%).
//
// Paper endpoints at 100% hits vs 0%: XML ~1.5x, SAX events ~2x, object
// representations ~3x throughput (and the inverse for response time); the
// four object methods are near-indistinguishable because per-hit costs
// vanish against the rest of the request path.
#include "bench/portal_figure.hpp"

int main(int argc, char** argv) {
  int requests = wsc::bench::figure_requests(argc, argv, 600);
  wsc::bench::run_portal_figure(/*concurrency=*/1, requests, "Figure 3",
                                wsc::bench::trace_requested(argc, argv));
  return 0;
}
