// Ablation (ISSUE 3) — availability under an unreliable origin.
//
// The paper's portal scenario assumes the back-end Web services answer;
// this ablation measures what the fault-tolerant pipeline (retries with
// backoff + per-endpoint breaker + stale-if-error serving) buys when they
// do not.
//
// Experiment A: sweep the per-call injected fault probability (refusals,
// stalled reads, truncated bodies, corrupt XML) and measure the error
// ratio the application sees, with and without a stale-if-error grace.
//
// Experiment B: a scripted hard outage (origin down for 10 simulated
// seconds) against a warm cache: availability with a grace vs fail-fast.
//
// Everything runs in virtual time (backoff sleeps advance a ManualClock),
// so the bench is deterministic and instant; the fault seed is printed so
// a run can be reproduced exactly.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.hpp"
#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/stub.hpp"
#include "transport/fault_injection.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/retry.hpp"
#include "util/error.hpp"

using namespace wsc;
using services::google::GoogleBackend;
using std::chrono::milliseconds;

namespace {

constexpr const char* kEndpoint = "inproc://google/api";
constexpr std::uint64_t kSeed = 20260805;

struct Stack {
  Stack(transport::FaultSpec spec, milliseconds ttl, milliseconds grace) {
    backend = std::make_shared<GoogleBackend>();
    auto origin = std::make_shared<transport::InProcessTransport>();
    origin->bind(kEndpoint, services::google::make_google_service(backend));
    faults = std::make_shared<transport::FaultInjectingTransport>(origin, spec);

    transport::RetryPolicy retry_policy;
    retry_policy.max_attempts = 4;
    retry_policy.base_backoff = milliseconds(10);
    retry_policy.max_backoff = milliseconds(200);
    retry_policy.budget_initial = 1e9;  // isolate the retry/stale effects
    retry_policy.budget_cap = 1e9;
    transport::RetryingTransport::Deps deps;
    deps.clock = &clock;
    deps.jitter_seed = spec.seed;
    deps.sleeper = [this](milliseconds d) { clock.advance(d); };
    retrying = std::make_shared<transport::RetryingTransport>(
        faults, retry_policy, deps);

    response_cache = std::make_shared<cache::ResponseCache>(
        cache::ResponseCache::Config{}, clock);
    cache::bind_transport_stats(*retrying, response_cache);

    cache::CachingServiceClient::Options options;
    options.policy = services::google::default_google_policy(
        cache::Representation::Auto, ttl);
    if (grace.count() > 0)
      options.policy.stale_if_error("doSpellingSuggestion", grace);
    client = std::make_unique<services::google::GoogleClient>(
        retrying, kEndpoint, response_cache, options);
  }

  util::ManualClock clock;
  std::shared_ptr<GoogleBackend> backend;
  std::shared_ptr<transport::FaultInjectingTransport> faults;
  std::shared_ptr<transport::RetryingTransport> retrying;
  std::shared_ptr<cache::ResponseCache> response_cache;
  std::unique_ptr<services::google::GoogleClient> client;
};

struct RunResult {
  int requests = 0;
  int app_errors = 0;
  cache::StatsSnapshot stats;
  std::uint64_t backend_calls = 0;
};

/// One request per 10 simulated ms, 5 rotating phrases, 1 s TTL: steady
/// cache traffic with periodic refetches the faults can hit.
RunResult run_workload(Stack& stack, int requests) {
  RunResult r;
  for (int i = 0; i < requests; ++i) {
    std::string phrase = "phrase-" + std::to_string(i % 5);
    try {
      stack.client->doSpellingSuggestion(phrase);
    } catch (const Error&) {
      ++r.app_errors;
    }
    ++r.requests;
    stack.clock.advance(milliseconds(10));
  }
  r.stats = stack.response_cache->stats();
  r.backend_calls = stack.faults->counters().delivered;
  return r;
}

transport::FaultSpec mixed_faults(double p_fault) {
  transport::FaultSpec spec;
  spec.seed = kSeed;
  spec.p_connect_refused = 0.4 * p_fault;
  spec.p_read_stall = 0.2 * p_fault;
  spec.p_truncate_body = 0.2 * p_fault;
  spec.p_corrupt_xml = 0.2 * p_fault;
  return spec;
}

void fault_probability_sweep(bench::BenchJson& json) {
  std::printf(
      "Ablation A (fault sweep): 2000 requests over 20s of simulated time,\n"
      "5 rotating phrases, TTL 1s, retry max_attempts=4, seed %llu\n",
      static_cast<unsigned long long>(kSeed));
  std::printf("%8s %7s %12s %12s %10s %10s %9s\n", "p_fault", "grace",
              "app_errors", "stale_srvs", "retries", "brk_opens", "backend");

  for (double p : {0.0, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    for (bool with_grace : {false, true}) {
      Stack stack(mixed_faults(p), milliseconds(1000),
                  with_grace ? milliseconds(60'000) : milliseconds(0));
      RunResult r = run_workload(stack, 2000);
      std::printf("%7.0f%% %7s %12d %12llu %10llu %10llu %9llu\n", p * 100,
                  with_grace ? "60s" : "none", r.app_errors,
                  static_cast<unsigned long long>(r.stats.stale_serves),
                  static_cast<unsigned long long>(r.stats.transport_retries),
                  static_cast<unsigned long long>(r.stats.breaker_opens),
                  static_cast<unsigned long long>(r.backend_calls));

      char row[64];
      std::snprintf(row, sizeof(row), "sweep p=%.2f grace=%s", p,
                    with_grace ? "60s" : "none");
      json.add(row, "error_ratio",
               static_cast<double>(r.app_errors) / r.requests);
      json.add(row, "stale_serves", static_cast<double>(r.stats.stale_serves));
      json.add(row, "retries_per_request",
               static_cast<double>(r.stats.transport_retries) / r.requests);
      json.add(row, "backend_calls", static_cast<double>(r.backend_calls));
    }
  }
  std::printf(
      "expected shape: without a grace the error ratio grows with p (only\n"
      "retries absorb faults); with a grace the warm entries absorb nearly\n"
      "all residual failures as stale serves.\n\n");
}

void hard_outage(bench::BenchJson& json) {
  std::printf(
      "Ablation B (hard outage): warm cache, origin down for 10s of\n"
      "simulated time (one request per 10ms), TTL 1s\n");
  for (bool with_grace : {false, true}) {
    Stack stack(transport::FaultSpec{.seed = kSeed}, milliseconds(1000),
                with_grace ? milliseconds(60'000) : milliseconds(0));
    run_workload(stack, 100);  // warm phase: all five phrases cached
    stack.faults->set_down(true);
    RunResult outage = run_workload(stack, 1000);
    stack.faults->set_down(false);
    double availability =
        1.0 - static_cast<double>(outage.app_errors) / outage.requests;
    std::printf("  grace=%-4s served %.1f%% of %d requests during the outage "
                "(stale_serves=%llu breaker_opens=%llu)\n",
                with_grace ? "60s" : "none", availability * 100.0,
                outage.requests,
                static_cast<unsigned long long>(outage.stats.stale_serves),
                static_cast<unsigned long long>(outage.stats.breaker_opens));
    std::string row = std::string("outage grace=") + (with_grace ? "60s" : "none");
    json.add(row, "availability", availability);
    json.add(row, "stale_serves", static_cast<double>(outage.stats.stale_serves));
    json.add(row, "breaker_opens",
             static_cast<double>(outage.stats.breaker_opens));
  }
  std::printf(
      "expected shape: fail-fast availability collapses once entries "
      "expire;\nwith the grace the cache keeps answering at ~100%%.\n");
}

}  // namespace

int main() {
  bench::BenchJson json;
  fault_probability_sweep(json);
  hard_outage(json);
  json.write_file("BENCH_ablation_faults.json");
  return 0;
}
