#include "reflect/object.hpp"

// Object is header-only; this TU anchors the module's debug info.
namespace wsc::reflect {}
