// Fluent registration of struct types — the stand-in for the Axis WSDL
// compiler emitting bean classes (paper 4.2.3: generated classes are
// "serializable and bean-type", and a compiler could also "add a proper
// deep clone method").
//
//   struct DirectoryCategory { std::string fullViewableName, specialEncoding; };
//
//   const TypeInfo& dc = StructBuilder<DirectoryCategory>("DirectoryCategory")
//       .field("fullViewableName", &DirectoryCategory::fullViewableName)
//       .field("specialEncoding", &DirectoryCategory::specialEncoding)
//       .serializable()
//       .cloneable()
//       .register_type();
//
// Omitting .serializable() / .cloneable() / fields produces types with the
// "n/a" limitations of Tables 2-3.
#pragma once

#include <concepts>
#include <memory>
#include <string>
#include <utility>

#include "reflect/registry.hpp"
#include "reflect/type_info.hpp"

namespace wsc::reflect {

template <typename T>
  requires std::default_initializable<T> && std::copy_constructible<T>
class StructBuilder {
 public:
  explicit StructBuilder(std::string name) {
    info_ = std::make_unique<TypeInfo>();
    info_->name = std::move(name);
    info_->kind = Kind::Struct;
    info_->shallow_size = sizeof(T);
    info_->traits.bean = true;  // cleared by not_bean()
    info_->construct = [] {
      return std::static_pointer_cast<void>(std::make_shared<T>());
    };
  }

  /// Register a field.  Declaration order is the SOAP serialization order.
  template <typename M>
  StructBuilder& field(std::string field_name, M T::* member) {
    FieldInfo f;
    f.name = std::move(field_name);
    f.type = &type_of<M>();
    f.ptr = [member](void* obj) -> void* {
      return &(static_cast<T*>(obj)->*member);
    };
    info_->fields.push_back(std::move(f));
    return *this;
  }

  /// Declare serializable (java.io.Serializable analogue).  Effective
  /// serializability still requires all field types to be serializable.
  StructBuilder& serializable() {
    info_->traits.serializable = true;
    return *this;
  }

  /// Generate a deep clone from T's copy constructor (which is deep for
  /// value-semantic members — the compiler-generated clone of 4.2.3C).
  StructBuilder& cloneable() {
    info_->traits.cloneable = true;
    info_->clone_fn = [](const void* p) {
      return std::static_pointer_cast<void>(
          std::make_shared<T>(*static_cast<const T*>(p)));
    };
    return *this;
  }

  /// Instances are never mutated after construction; the cache may share
  /// them with the client application (pass-by-reference, 4.2.4).
  StructBuilder& immutable() {
    info_->traits.immutable = true;
    return *this;
  }

  /// Opt out of bean-ness: models an application-specific class without
  /// usable getters/setters, which copy-by-reflection cannot handle.
  StructBuilder& not_bean() {
    info_->traits.bean = false;
    return *this;
  }

  /// Custom toString (paper 4.1.2B).  Without it, bean types fall back to a
  /// reflective rendering and non-beans have no usable toString at all.
  StructBuilder& to_string(std::string (*fn)(const T&)) {
    info_->to_string_fn = [fn](const void* p) {
      return fn(*static_cast<const T*>(p));
    };
    return *this;
  }

  /// Publish to the registry and bind type_of<T>().  Call exactly once per
  /// process per type.
  const TypeInfo& register_type() {
    const TypeInfo& registered =
        TypeRegistry::instance().add(std::move(info_));
    detail::slot<T>() = &registered;
    return registered;
  }

 private:
  std::unique_ptr<TypeInfo> info_;
};

}  // namespace wsc::reflect
