#include "reflect/type_info.hpp"

#include <algorithm>

namespace wsc::reflect {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Bool: return "bool";
    case Kind::Int32: return "int32";
    case Kind::Int64: return "int64";
    case Kind::Double: return "double";
    case Kind::String: return "string";
    case Kind::Bytes: return "bytes";
    case Kind::Struct: return "struct";
    case Kind::Array: return "array";
  }
  return "?";
}

const FieldInfo* TypeInfo::field(std::string_view name) const {
  for (const FieldInfo& f : fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool TypeInfo::is_deeply_serializable() const {
  std::vector<const TypeInfo*> visiting;
  return deeply_serializable_impl(visiting);
}

bool TypeInfo::deeply_serializable_impl(
    std::vector<const TypeInfo*>& visiting) const {
  if (is_primitive()) return true;
  if (std::find(visiting.begin(), visiting.end(), this) != visiting.end())
    return true;  // recursive type: judged by the fields already on the path
  visiting.push_back(this);
  bool ok;
  if (is_array()) {
    ok = element->deeply_serializable_impl(visiting);
  } else {
    ok = traits.serializable;
    for (const FieldInfo& f : fields)
      ok = ok && f.type->deeply_serializable_impl(visiting);
  }
  visiting.pop_back();
  return ok;
}

bool TypeInfo::is_reflectable() const {
  std::vector<const TypeInfo*> visiting;
  return reflectable_impl(visiting);
}

bool TypeInfo::reflectable_impl(std::vector<const TypeInfo*>& visiting) const {
  if (is_primitive()) return true;
  if (std::find(visiting.begin(), visiting.end(), this) != visiting.end())
    return true;
  visiting.push_back(this);
  bool ok;
  if (is_array()) {
    ok = element->reflectable_impl(visiting);
  } else {
    ok = traits.bean && static_cast<bool>(construct);
    for (const FieldInfo& f : fields)
      ok = ok && f.type->reflectable_impl(visiting);
  }
  visiting.pop_back();
  return ok;
}

}  // namespace wsc::reflect
