#include "reflect/algorithms.hpp"

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace wsc::reflect {

namespace {

/// Copy `src` (of type `t`) into `dst`, recursing through fields/elements.
/// Primitives are assigned; they are value types in C++, so assignment is
/// already a full copy (the analogue of sharing immutables in Java).
void copy_into(const TypeInfo& t, const void* src, void* dst) {
  switch (t.kind) {
    case Kind::Bool:
      *static_cast<bool*>(dst) = *static_cast<const bool*>(src);
      return;
    case Kind::Int32:
      *static_cast<std::int32_t*>(dst) = *static_cast<const std::int32_t*>(src);
      return;
    case Kind::Int64:
      *static_cast<std::int64_t*>(dst) = *static_cast<const std::int64_t*>(src);
      return;
    case Kind::Double:
      *static_cast<double*>(dst) = *static_cast<const double*>(src);
      return;
    case Kind::String:
      *static_cast<std::string*>(dst) = *static_cast<const std::string*>(src);
      return;
    case Kind::Bytes:
      *static_cast<std::vector<std::uint8_t>*>(dst) =
          *static_cast<const std::vector<std::uint8_t>*>(src);
      return;
    case Kind::Array: {
      std::size_t n = t.array_size(src);
      t.array_resize(dst, n);
      for (std::size_t i = 0; i < n; ++i) {
        copy_into(*t.element, t.array_at(const_cast<void*>(src), i),
                  t.array_at(dst, i));
      }
      return;
    }
    case Kind::Struct: {
      for (const FieldInfo& f : t.fields)
        copy_into(*f.type, f.cptr(src), f.ptr(dst));
      return;
    }
  }
  throw ReflectionError("copy_into: corrupt kind");
}

}  // namespace

void deep_assign(const TypeInfo& t, const void* src, void* dst) {
  copy_into(t, src, dst);
}

Object deep_copy(const Object& obj) {
  if (obj.is_null()) return {};
  const TypeInfo& t = obj.type();
  // Bean gatekeeping happens up front and recursively (is_reflectable):
  // the paper's reflective copier only handles bean/array shapes.
  if ((t.is_struct() || t.is_array()) && !t.is_reflectable())
    throw SerializationError("copy by reflection: type '" + t.name +
                             "' is not bean-type");
  if (!t.construct)
    throw SerializationError("copy by reflection: type '" + t.name +
                             "' has no default constructor");
  std::shared_ptr<void> fresh = t.construct();
  copy_into(t, obj.data(), fresh.get());
  return Object(std::move(fresh), &t);
}

bool supports_reflection_copy(const TypeInfo& type) {
  if (type.kind == Kind::Bytes) return true;  // "array-type" byte[]
  if (type.is_array()) return type.element->is_reflectable();
  if (type.is_struct()) return type.is_reflectable();
  return false;
}

Object clone(const Object& obj) {
  if (obj.is_null()) return {};
  const TypeInfo& t = obj.type();
  if (!t.clone_fn)
    throw SerializationError("clone: type '" + t.name + "' is not cloneable");
  return Object(t.clone_fn(obj.data()), &t);
}

bool deep_equals(const Object& a, const Object& b) {
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (&a.type() != &b.type()) return false;

  struct Cmp {
    static bool eq(const TypeInfo& t, const void* x, const void* y) {
      switch (t.kind) {
        case Kind::Bool:
          return *static_cast<const bool*>(x) == *static_cast<const bool*>(y);
        case Kind::Int32:
          return *static_cast<const std::int32_t*>(x) ==
                 *static_cast<const std::int32_t*>(y);
        case Kind::Int64:
          return *static_cast<const std::int64_t*>(x) ==
                 *static_cast<const std::int64_t*>(y);
        case Kind::Double:
          return *static_cast<const double*>(x) == *static_cast<const double*>(y);
        case Kind::String:
          return *static_cast<const std::string*>(x) ==
                 *static_cast<const std::string*>(y);
        case Kind::Bytes:
          return *static_cast<const std::vector<std::uint8_t>*>(x) ==
                 *static_cast<const std::vector<std::uint8_t>*>(y);
        case Kind::Array: {
          std::size_t n = t.array_size(x);
          if (n != t.array_size(y)) return false;
          for (std::size_t i = 0; i < n; ++i) {
            if (!eq(*t.element, t.array_at(const_cast<void*>(x), i),
                    t.array_at(const_cast<void*>(y), i)))
              return false;
          }
          return true;
        }
        case Kind::Struct: {
          for (const FieldInfo& f : t.fields) {
            if (!eq(*f.type, f.cptr(x), f.cptr(y))) return false;
          }
          return true;
        }
      }
      throw ReflectionError("deep_equals: corrupt kind");
    }
  };
  return Cmp::eq(a.type(), a.data(), b.data());
}

void to_string_append(const TypeInfo& t, const void* value, std::string& out) {
  // The builtin primitives carry an allocation-free appender; a custom
  // to_string_fn without one appends its temporary (correct, just not the
  // zero-alloc fast path).
  if (t.to_string_append_fn) {
    t.to_string_append_fn(value, out);
    return;
  }
  if (t.to_string_fn) {
    out += t.to_string_fn(value);
    return;
  }
  switch (t.kind) {
    case Kind::Array: {
      out += '[';
      std::size_t n = t.array_size(value);
      for (std::size_t i = 0; i < n; ++i) {
        if (i > 0) out += ',';
        to_string_append(*t.element, t.array_at(const_cast<void*>(value), i),
                         out);
      }
      out += ']';
      return;
    }
    case Kind::Struct: {
      if (!t.traits.bean)
        throw SerializationError("toString: type '" + t.name +
                                 "' has no usable toString method");
      out += t.name;
      out += '{';
      bool first = true;
      for (const FieldInfo& f : t.fields) {
        if (!first) out += ',';
        first = false;
        out += f.name;
        out += '=';
        to_string_append(*f.type, f.cptr(value), out);
      }
      out += '}';
      return;
    }
    default:
      // Primitive without a to_string_fn: only Bytes lands here — its Java
      // analogue's toString is the address-based Object.toString.
      throw SerializationError("toString: type '" + t.name +
                               "' has no usable toString method");
  }
}

void to_string_append(const Object& obj, std::string& out) {
  if (obj.is_null()) {
    out += "null";
    return;
  }
  to_string_append(obj.type(), obj.data(), out);
}

std::string to_string(const TypeInfo& t, const void* value) {
  std::string out;
  to_string_append(t, value, out);
  return out;
}

std::string to_string(const Object& obj) {
  if (obj.is_null()) return "null";
  return to_string(obj.type(), obj.data());
}

std::size_t memory_size(const TypeInfo& t, const void* value) {
  std::size_t total = 0;
  switch (t.kind) {
    case Kind::Array: {
      total += t.shallow_size;
      std::size_t n = t.array_size(value);
      for (std::size_t i = 0; i < n; ++i) {
        total +=
            memory_size(*t.element, t.array_at(const_cast<void*>(value), i));
      }
      return total;
    }
    case Kind::Struct: {
      total += t.shallow_size;
      for (const FieldInfo& f : t.fields) {
        // Field storage is inside shallow_size; add only owned heap.
        total += memory_size(*f.type, f.cptr(value)) - f.type->shallow_size;
      }
      return total;
    }
    default:
      total += t.shallow_size;
      if (t.owned_heap_fn) total += t.owned_heap_fn(value);
      return total;
  }
}

std::size_t memory_size(const Object& obj) {
  if (obj.is_null()) return 0;
  return memory_size(obj.type(), obj.data());
}

}  // namespace wsc::reflect
