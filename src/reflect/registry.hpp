// Global type registry + compile-time type binding (type_of<T>()).
//
// Plays the role of the JVM's loaded-class table: registration happens once
// per process (WSDL-generated types register in their service headers'
// ensure-functions), lookups are lock-free after a type is published, and
// `const TypeInfo*` pointers never dangle.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "reflect/type_info.hpp"
#include "util/error.hpp"

namespace wsc::reflect {

class TypeRegistry {
 public:
  static TypeRegistry& instance();

  /// Register a new type; throws ReflectionError if the name is taken.
  /// Returns the stable registered instance.
  const TypeInfo& add(std::unique_ptr<TypeInfo> info);

  /// nullptr if not registered.
  const TypeInfo* find(std::string_view name) const;

  /// Throws ReflectionError if not registered.
  const TypeInfo& get(std::string_view name) const;

  std::vector<std::string> type_names() const;

 private:
  TypeRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<TypeInfo>> types_;
};

namespace detail {

/// Per-C++-type slot pointing at its registered TypeInfo.
template <typename T>
const TypeInfo*& slot() {
  static const TypeInfo* s = nullptr;
  return s;
}

const TypeInfo& builtin_bool();
const TypeInfo& builtin_i32();
const TypeInfo& builtin_i64();
const TypeInfo& builtin_double();
const TypeInfo& builtin_string();
const TypeInfo& builtin_bytes();

/// Build (once) the TypeInfo for an array type.  `make_ops` fills the
/// vector-typed function table.
const TypeInfo& register_array_type(std::string name, const TypeInfo& element,
                                    TypeInfo&& prototype);

}  // namespace detail

/// Primary template: user-registered struct types.  The struct's
/// StructBuilder<T>::register_type() must have run first.
template <typename T>
struct TypeOf {
  static const TypeInfo& get() {
    const TypeInfo* s = detail::slot<T>();
    if (!s)
      throw ReflectionError(
          "type_of<T>: C++ type not registered with StructBuilder");
    return *s;
  }
};

template <>
struct TypeOf<bool> {
  static const TypeInfo& get() { return detail::builtin_bool(); }
};
template <>
struct TypeOf<std::int32_t> {
  static const TypeInfo& get() { return detail::builtin_i32(); }
};
template <>
struct TypeOf<std::int64_t> {
  static const TypeInfo& get() { return detail::builtin_i64(); }
};
template <>
struct TypeOf<double> {
  static const TypeInfo& get() { return detail::builtin_double(); }
};
template <>
struct TypeOf<std::string> {
  static const TypeInfo& get() { return detail::builtin_string(); }
};
/// std::vector<uint8_t> is the Bytes kind (Java byte[]), not an Array.
template <>
struct TypeOf<std::vector<std::uint8_t>> {
  static const TypeInfo& get() { return detail::builtin_bytes(); }
};

/// Arrays: std::vector<T> for any registered element T.  Created lazily and
/// registered as "ArrayOf<element name>".
template <typename T>
struct TypeOf<std::vector<T>> {
  static const TypeInfo& get() {
    static const TypeInfo& info = create();
    return info;
  }

 private:
  static const TypeInfo& create() {
    const TypeInfo& elem = TypeOf<T>::get();
    TypeInfo proto;
    proto.kind = Kind::Array;
    proto.element = &elem;
    proto.shallow_size = sizeof(std::vector<T>);
    // vector<T>'s copy constructor is a deep copy for our value-semantic
    // element types, so arrays are always cloneable.
    proto.traits.cloneable = true;
    proto.traits.serializable = true;  // effective check recurses into elem
    proto.construct = [] {
      return std::static_pointer_cast<void>(std::make_shared<std::vector<T>>());
    };
    proto.clone_fn = [](const void* p) {
      return std::static_pointer_cast<void>(
          std::make_shared<std::vector<T>>(*static_cast<const std::vector<T>*>(p)));
    };
    proto.array_size = [](const void* p) {
      return static_cast<const std::vector<T>*>(p)->size();
    };
    proto.array_at = [](void* p, std::size_t i) -> void* {
      return &(*static_cast<std::vector<T>*>(p))[i];
    };
    proto.array_resize = [](void* p, std::size_t n) {
      static_cast<std::vector<T>*>(p)->resize(n);
    };
    return detail::register_array_type("ArrayOf" + elem.name, elem,
                                       std::move(proto));
  }
};

/// The registered TypeInfo for C++ type T.
template <typename T>
const TypeInfo& type_of() {
  return TypeOf<T>::get();
}

}  // namespace wsc::reflect
