// Type-erased handle to an application object: shared_ptr<void> + TypeInfo.
//
// This is the currency of the whole system — the deserializer produces
// Objects, the cache stores (copies of) Objects, the client stub returns
// them.  Sharing vs. copying of the underlying storage is exactly the
// side-effect question of section 3.1: `Object` copies share, and it is the
// cache-value representation's job to deep-copy when required.
#pragma once

#include <memory>
#include <utility>

#include "reflect/registry.hpp"
#include "reflect/type_info.hpp"
#include "util/error.hpp"

namespace wsc::reflect {

class Object {
 public:
  /// Null object (e.g. a void operation's response).
  Object() = default;

  Object(std::shared_ptr<void> data, const TypeInfo* type)
      : data_(std::move(data)), type_(type) {
    if ((data_ == nullptr) != (type_ == nullptr))
      throw ReflectionError("Object: data and type must be both set or both null");
  }

  /// Wrap an existing shared instance of a registered type.
  template <typename T>
  static Object wrap(std::shared_ptr<T> value) {
    return Object(std::static_pointer_cast<void>(std::move(value)),
                  &type_of<T>());
  }

  /// Move/copy a value into fresh shared storage.
  template <typename T>
  static Object make(T value) {
    return wrap(std::make_shared<T>(std::move(value)));
  }

  bool is_null() const noexcept { return data_ == nullptr; }
  explicit operator bool() const noexcept { return !is_null(); }

  const TypeInfo& type() const {
    if (!type_) throw ReflectionError("Object: type() on null object");
    return *type_;
  }
  const TypeInfo* type_ptr() const noexcept { return type_; }

  void* data() const noexcept { return data_.get(); }
  const std::shared_ptr<void>& storage() const noexcept { return data_; }

  /// Checked typed access.  Throws ReflectionError on type mismatch.
  template <typename T>
  T& as() const {
    require_type(&type_of<T>());
    return *static_cast<T*>(data_.get());
  }

  /// Number of co-owners of the storage (used by tests to prove whether a
  /// representation shared or copied).
  long use_count() const noexcept { return data_.use_count(); }

 private:
  void require_type(const TypeInfo* expected) const {
    if (is_null()) throw ReflectionError("Object: as<>() on null object");
    if (type_ != expected)
      throw ReflectionError("Object: type mismatch, have '" + type_->name +
                            "', want '" + expected->name + "'");
  }

  std::shared_ptr<void> data_;
  const TypeInfo* type_ = nullptr;
};

}  // namespace wsc::reflect
