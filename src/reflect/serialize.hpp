// Binary (de)serialization of registered objects — the stand-in for Java
// serialization in Tables 2/3/6/7/8/9.
//
// Wire format: a header with the root type name (so a byte blob is
// self-describing, like a Java serialized stream), then a recursive
// kind-driven encoding.  Nested struct/array type identities come from the
// registry metadata, not the stream.
//
// Serializing a type that is not deeply serializable throws
// wsc::SerializationError — the detectable failure the middleware uses to
// fall back automatically (paper 4.2.3A: "an exception is thrown by
// run-time system. Therefore, the middleware can automatically detect
// whether or not the application object is serializable").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "reflect/object.hpp"

namespace wsc::reflect {

/// Serialize an object tree.  Null objects produce a 1-byte null marker.
std::vector<std::uint8_t> serialize(const Object& obj);

/// Reconstruct a fresh object tree (deep copy semantics by construction).
/// Throws ParseError on corrupt input, ReflectionError on unknown type.
Object deserialize(std::span<const std::uint8_t> bytes);

/// Cheap applicability probe used by policy code (avoids try/catch when
/// configuring): true iff serialize() would succeed for this type.
bool supports_serialization(const TypeInfo& type);

}  // namespace wsc::reflect
