// Runtime type metadata: the C++ stand-in for the Java facilities the paper
// leans on (reflection, java.io.Serializable, Object.clone, toString).
//
// Every "application object" that crosses the Web-services boundary has a
// registered TypeInfo describing its shape (fields / array element) and its
// *traits*, which gate the cache-value representations of Table 3:
//
//   serializable -> binary (de)serialization     ("Java serialization")
//   bean / array -> field-walking deep copy      ("copy by reflection")
//   cloneable    -> generated deep clone          ("copy by clone")
//   immutable    -> safe to share, no copy        ("pass by reference")
//
// WSDL-compiler-generated types (src/wsdl, src/services) register with all
// traits on, matching section 4.2.3 of the paper; hand-written application
// types may lack any of them, producing the "n/a" cells of Table 7.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wsc::reflect {

enum class Kind : std::uint8_t {
  Bool,
  Int32,
  Int64,
  Double,
  String,  // std::string; modeled as immutable like java.lang.String
  Bytes,   // std::vector<uint8_t>; mutable, like byte[]
  Struct,
  Array,  // std::vector<T> of any registered T
};

const char* kind_name(Kind k);

class TypeInfo;

/// One reflectable field of a struct type.  `ptr` resolves the field's
/// address inside an instance; generic algorithms then interpret it through
/// `type`.
struct FieldInfo {
  std::string name;
  const TypeInfo* type = nullptr;
  std::function<void*(void*)> ptr;

  const void* cptr(const void* obj) const {
    return ptr(const_cast<void*>(obj));
  }
};

struct Traits {
  /// Declared serializable (builder opt-in, like implementing
  /// java.io.Serializable).  Effective serializability also requires every
  /// reachable field type to be serializable; see
  /// TypeInfo::is_deeply_serializable().
  bool serializable = false;
  /// Has a generated deep clone function (the paper's hypothetical
  /// WSDL-compiler-added clone).
  bool cloneable = false;
  /// Instances are never mutated (String & primitive wrappers); safe for
  /// the cache to share with the client application.
  bool immutable = false;
  /// Default-constructible with a complete set of registered field
  /// accessors ("bean-type"); required for copy-by-reflection.
  bool bean = false;
};

/// Immutable runtime description of one type.  Instances live in the
/// TypeRegistry for the lifetime of the process (like loaded Java classes),
/// so raw `const TypeInfo*` pointers are stable.
class TypeInfo {
 public:
  std::string name;
  Kind kind = Kind::Struct;
  Traits traits;
  std::size_t shallow_size = 0;  // sizeof(T)

  /// Struct only: fields in declaration order (also the SOAP element order).
  std::vector<FieldInfo> fields;

  /// Array only: element type.
  const TypeInfo* element = nullptr;

  // --- per-type function table (populated by the builder) ---
  std::function<std::shared_ptr<void>()> construct;  // default-construct
  /// Deep clone via the native copy constructor; null unless cloneable.
  std::function<std::shared_ptr<void>(const void*)> clone_fn;
  /// Custom to_string; null means "use the reflective default if bean,
  /// otherwise the type has no usable toString" (paper 4.1.2B).
  std::function<std::string(const void*)> to_string_fn;
  /// Allocation-free companion to to_string_fn: appends the SAME bytes
  /// directly into the caller's buffer (the zero-allocation cache-key
  /// path).  Set for the builtin primitives; a custom to_string_fn without
  /// one falls back to appending to_string_fn's temporary.
  std::function<void(const void*, std::string&)> to_string_append_fn;
  /// Heap bytes owned directly by a primitive value (string/bytes
  /// capacity); null for kinds with no owned heap.
  std::function<std::size_t(const void*)> owned_heap_fn;

  // Array operations (Array kind only).
  std::function<std::size_t(const void*)> array_size;
  std::function<void*(void*, std::size_t)> array_at;
  std::function<void(void*, std::size_t)> array_resize;

  bool is_struct() const noexcept { return kind == Kind::Struct; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_primitive() const noexcept { return !is_struct() && !is_array(); }

  /// Find a field by name; nullptr if absent.
  const FieldInfo* field(std::string_view name) const;

  /// True if this type and everything reachable from it is serializable —
  /// the check Java performs lazily by throwing NotSerializableException.
  bool is_deeply_serializable() const;

  /// True if copy-by-reflection can handle this type: a bean struct or an
  /// array whose elements are reflectable; primitives qualify as leaves.
  bool is_reflectable() const;

 private:
  bool deeply_serializable_impl(std::vector<const TypeInfo*>& visiting) const;
  bool reflectable_impl(std::vector<const TypeInfo*>& visiting) const;
};

}  // namespace wsc::reflect
