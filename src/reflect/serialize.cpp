#include "reflect/serialize.hpp"

#include <string>

#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace wsc::reflect {

namespace {

constexpr std::uint8_t kNullMarker = 0;
constexpr std::uint8_t kObjectMarker = 1;

void encode(const TypeInfo& t, const void* value, util::ByteWriter& out) {
  switch (t.kind) {
    case Kind::Bool:
      out.write_bool(*static_cast<const bool*>(value));
      return;
    case Kind::Int32:
      out.write_i32(*static_cast<const std::int32_t*>(value));
      return;
    case Kind::Int64:
      out.write_i64(*static_cast<const std::int64_t*>(value));
      return;
    case Kind::Double:
      out.write_f64(*static_cast<const double*>(value));
      return;
    case Kind::String:
      out.write_string(*static_cast<const std::string*>(value));
      return;
    case Kind::Bytes:
      out.write_bytes(*static_cast<const std::vector<std::uint8_t>*>(value));
      return;
    case Kind::Array: {
      std::size_t n = t.array_size(value);
      out.write_varint(n);
      for (std::size_t i = 0; i < n; ++i)
        encode(*t.element, t.array_at(const_cast<void*>(value), i), out);
      return;
    }
    case Kind::Struct: {
      if (!t.traits.serializable)
        throw SerializationError("type '" + t.name + "' is not serializable");
      for (const FieldInfo& f : t.fields) encode(*f.type, f.cptr(value), out);
      return;
    }
  }
  throw ReflectionError("encode: corrupt kind");
}

void decode(const TypeInfo& t, void* value, util::ByteReader& in) {
  switch (t.kind) {
    case Kind::Bool:
      *static_cast<bool*>(value) = in.read_bool();
      return;
    case Kind::Int32:
      *static_cast<std::int32_t*>(value) = in.read_i32();
      return;
    case Kind::Int64:
      *static_cast<std::int64_t*>(value) = in.read_i64();
      return;
    case Kind::Double:
      *static_cast<double*>(value) = in.read_f64();
      return;
    case Kind::String:
      *static_cast<std::string*>(value) = in.read_string();
      return;
    case Kind::Bytes:
      *static_cast<std::vector<std::uint8_t>*>(value) = in.read_bytes();
      return;
    case Kind::Array: {
      std::uint64_t n = in.read_varint();
      t.array_resize(value, n);
      for (std::uint64_t i = 0; i < n; ++i)
        decode(*t.element, t.array_at(value, i), in);
      return;
    }
    case Kind::Struct: {
      if (!t.traits.serializable)
        throw SerializationError("type '" + t.name + "' is not serializable");
      for (const FieldInfo& f : t.fields) decode(*f.type, f.ptr(value), in);
      return;
    }
  }
  throw ReflectionError("decode: corrupt kind");
}

}  // namespace

std::vector<std::uint8_t> serialize(const Object& obj) {
  util::ByteWriter out;
  if (obj.is_null()) {
    out.write_u8(kNullMarker);
    return out.take();
  }
  const TypeInfo& t = obj.type();
  if (!t.is_deeply_serializable())
    throw SerializationError("type '" + t.name +
                             "' is not deeply serializable");
  out.write_u8(kObjectMarker);
  out.write_string(t.name);
  encode(t, obj.data(), out);
  return out.take();
}

Object deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader in(bytes);
  std::uint8_t marker = in.read_u8();
  if (marker == kNullMarker) {
    if (!in.at_end()) throw ParseError("trailing bytes after null marker");
    return {};
  }
  if (marker != kObjectMarker)
    throw ParseError("bad serialization stream marker");
  std::string type_name = in.read_string();
  const TypeInfo& t = TypeRegistry::instance().get(type_name);
  if (!t.construct)
    throw SerializationError("type '" + t.name + "' is not constructible");
  std::shared_ptr<void> fresh = t.construct();
  decode(t, fresh.get(), in);
  if (!in.at_end())
    throw ParseError("trailing bytes after serialized object", in.position());
  return Object(std::move(fresh), &t);
}

bool supports_serialization(const TypeInfo& type) {
  return type.is_deeply_serializable();
}

}  // namespace wsc::reflect
