#include "reflect/registry.hpp"

#include "util/strings.hpp"

namespace wsc::reflect {

TypeRegistry& TypeRegistry::instance() {
  static TypeRegistry* registry = new TypeRegistry();  // immortal
  return *registry;
}

const TypeInfo& TypeRegistry::add(std::unique_ptr<TypeInfo> info) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = types_.emplace(info->name, nullptr);
  if (!inserted)
    throw ReflectionError("type '" + info->name + "' already registered");
  it->second = std::move(info);
  return *it->second;
}

const TypeInfo* TypeRegistry::find(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = types_.find(std::string(name));
  return it == types_.end() ? nullptr : it->second.get();
}

const TypeInfo& TypeRegistry::get(std::string_view name) const {
  const TypeInfo* t = find(name);
  if (!t) throw ReflectionError("unknown type '" + std::string(name) + "'");
  return *t;
}

std::vector<std::string> TypeRegistry::type_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, info] : types_) out.push_back(name);
  return out;
}

namespace detail {

namespace {

template <typename T>
TypeInfo make_primitive(std::string name, Kind kind, bool immutable,
                        std::function<std::string(const T&)> to_string) {
  TypeInfo t;
  t.name = std::move(name);
  t.kind = kind;
  t.shallow_size = sizeof(T);
  t.traits.serializable = true;
  t.traits.immutable = immutable;
  t.construct = [] { return std::static_pointer_cast<void>(std::make_shared<T>()); };
  // Primitive copies are trivially deep, but we deliberately do NOT mark
  // them cloneable: java.lang.String and byte[] are not usefully Cloneable
  // in the paper's Table 3, and the clone representation is reserved for
  // generated struct types.
  if (to_string) {
    t.to_string_fn = [fn = std::move(to_string)](const void* p) {
      return fn(*static_cast<const T*>(p));
    };
  }
  return t;
}

const TypeInfo& register_once(TypeInfo&& proto) {
  auto owned = std::make_unique<TypeInfo>(std::move(proto));
  return TypeRegistry::instance().add(std::move(owned));
}

}  // namespace

const TypeInfo& builtin_bool() {
  TypeInfo proto = make_primitive<bool>(
      "boolean", Kind::Bool, true,
      [](const bool& v) { return std::string(v ? "true" : "false"); });
  proto.to_string_append_fn = [](const void* p, std::string& out) {
    out += *static_cast<const bool*>(p) ? "true" : "false";
  };
  static const TypeInfo& t = register_once(std::move(proto));
  return t;
}

const TypeInfo& builtin_i32() {
  TypeInfo proto = make_primitive<std::int32_t>(
      "int", Kind::Int32, true,
      [](const std::int32_t& v) { return std::to_string(v); });
  proto.to_string_append_fn = [](const void* p, std::string& out) {
    util::append_i64(out, *static_cast<const std::int32_t*>(p));
  };
  static const TypeInfo& t = register_once(std::move(proto));
  return t;
}

const TypeInfo& builtin_i64() {
  TypeInfo proto = make_primitive<std::int64_t>(
      "long", Kind::Int64, true,
      [](const std::int64_t& v) { return std::to_string(v); });
  proto.to_string_append_fn = [](const void* p, std::string& out) {
    util::append_i64(out, *static_cast<const std::int64_t*>(p));
  };
  static const TypeInfo& t = register_once(std::move(proto));
  return t;
}

const TypeInfo& builtin_double() {
  TypeInfo proto = make_primitive<double>(
      "double", Kind::Double, true,
      [](const double& v) { return util::format_double(v); });
  proto.to_string_append_fn = [](const void* p, std::string& out) {
    util::append_double(out, *static_cast<const double*>(p));
  };
  static const TypeInfo& t = register_once(std::move(proto));
  return t;
}

const TypeInfo& builtin_string() {
  TypeInfo proto = make_primitive<std::string>(
      "string", Kind::String, /*immutable=*/true,
      [](const std::string& v) { return v; });
  proto.to_string_append_fn = [](const void* p, std::string& out) {
    out += *static_cast<const std::string*>(p);
  };
  proto.owned_heap_fn = [](const void* p) {
    return static_cast<const std::string*>(p)->capacity();
  };
  static const TypeInfo& t = register_once(std::move(proto));
  return t;
}

const TypeInfo& builtin_bytes() {
  // byte[]: mutable, serializable, and (unlike String) reflection-copyable
  // as an "array-type object" (paper 4.2.3B) — but its toString is the
  // Java address-based default, so no to_string_fn.
  TypeInfo proto = make_primitive<std::vector<std::uint8_t>>(
      "base64Binary", Kind::Bytes, /*immutable=*/false, nullptr);
  proto.owned_heap_fn = [](const void* p) {
    return static_cast<const std::vector<std::uint8_t>*>(p)->capacity();
  };
  static const TypeInfo& t = register_once(std::move(proto));
  return t;
}

const TypeInfo& register_array_type(std::string name, const TypeInfo& element,
                                    TypeInfo&& prototype) {
  (void)element;  // already wired into prototype.element by the caller
  prototype.name = std::move(name);
  return register_once(std::move(prototype));
}

}  // namespace detail
}  // namespace wsc::reflect
