// Generic reflective algorithms over registered types: deep copy, deep
// equality, reflective toString, and deep memory accounting.
//
// `deep_copy` IS the paper's "copy by reflection" (4.2.3B): a field walk
// driven entirely by metadata, creating a new instance and recursively
// copying mutable parts.  `clone` dispatches to the generated clone
// function (4.2.3C).  `memory_size` produces the "Java object" rows of
// Table 9.
#pragma once

#include <cstddef>
#include <string>

#include "reflect/object.hpp"
#include "reflect/type_info.hpp"

namespace wsc::reflect {

/// Deep copy via reflection metadata.  Supports bean structs, arrays, Bytes
/// and primitive leaves; throws SerializationError for non-bean structs
/// (paper: "for the user-defined application-specific objects, it is
/// difficult to develop deep copy method by using the reflection API").
Object deep_copy(const Object& obj);

/// Field-wise deep assignment of `src` into `dst` (both of type `t`).
/// Unlike deep_copy this performs no bean-trait gatekeeping — it is the
/// raw machinery, also used by the SOAP decoder to plant resolved multiRef
/// values into their slots.
void deep_assign(const TypeInfo& t, const void* src, void* dst);

/// True if `deep_copy` can handle this type when it appears as the
/// top-level cached value: an array/Bytes ("array-type") or a bean struct.
/// Plain immutable primitives are excluded — the paper marks reflection
/// n/a for String responses (Table 7) because sharing suffices.
bool supports_reflection_copy(const TypeInfo& type);

/// Deep copy via the generated clone function.  Throws SerializationError
/// if the type has no clone (Table 3's "Cloneable object" limitation).
Object clone(const Object& obj);

/// Structural equality (deep).  Null equals null.
bool deep_equals(const Object& a, const Object& b);

/// Reflective toString used for cache keys (4.1.2B): primitives render
/// their value; bean structs render "Type{field=value,...}"; arrays render
/// "[v1,v2,...]".  Types with a registered to_string_fn use it.  Throws
/// SerializationError when a type has no usable toString (the Java
/// Object.toString address fallback, unsuitable for keys).
std::string to_string(const Object& obj);
std::string to_string(const TypeInfo& type, const void* value);

/// Append-style reflective toString: writes the SAME bytes as to_string()
/// directly into `out`, formatting primitives with to_chars — the
/// zero-allocation cache-key path (ToStringKeyGenerator::generate_into).
/// to_string() itself is implemented on top of this, so the two can never
/// disagree.  A null Object appends "null".
void to_string_append(const Object& obj, std::string& out);
void to_string_append(const TypeInfo& type, const void* value,
                      std::string& out);

/// Deep in-memory footprint in bytes: shallow sizeof plus all owned heap
/// (string/vector capacities, recursively).  Shared-ptr control blocks are
/// charged once for the top-level object.
std::size_t memory_size(const Object& obj);
std::size_t memory_size(const TypeInfo& type, const void* value);

}  // namespace wsc::reflect
