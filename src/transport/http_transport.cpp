#include "transport/http_transport.hpp"

#include <cstdio>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wsc::transport {

namespace {
std::string pool_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}
}  // namespace

HttpTransport::ConnPtr HttpTransport::acquire(const std::string& host,
                                              std::uint16_t port) {
  {
    std::lock_guard lock(mu_);
    auto it = idle_.find(pool_key(host, port));
    if (it != idle_.end() && !it->second.empty()) {
      ConnPtr conn = std::move(it->second.back());
      it->second.pop_back();
      return conn;
    }
  }
  return std::make_unique<http::HttpConnection>(host, port, options_.socket);
}

void HttpTransport::release(ConnPtr conn) {
  std::lock_guard lock(mu_);
  idle_[pool_key(conn->host(), conn->port())].push_back(std::move(conn));
}

WireResponse HttpTransport::post(const util::Uri& endpoint,
                                 const WireRequest& wire_request) {
  if (endpoint.scheme != "http")
    throw TransportError("HttpTransport: unsupported scheme '" +
                             endpoint.scheme + "'",
                         /*retryable=*/false);
  http::Request request;
  request.method = "POST";
  request.target = endpoint.path;
  request.headers.set("Host", endpoint.host);
  request.headers.set("Content-Type", "text/xml; charset=utf-8");
  request.headers.set("SOAPAction", "\"" + wire_request.soap_action + "\"");
  if (wire_request.if_modified_since) {
    request.headers.set(
        "If-Modified-Since",
        http::format_http_date(*wire_request.if_modified_since));
  }
  request.body = wire_request.body;

  ConnPtr conn = acquire(endpoint.host, endpoint.effective_port());
  http::Response response;
  const bool timed = obs::tracer().enabled();
  const std::uint64_t start = timed ? obs::now_ns() : 0;
  try {
    response = conn->round_trip(request);
  } catch (...) {
    // Do not pool a connection in an unknown state.
    throw;
  }
  if (timed) roundtrip_ns_.record(obs::now_ns() - start);
  release(std::move(conn));

  // SOAP/1.1 over HTTP: faults arrive as 500 with an envelope body, which
  // the deserializer upgrades to SoapFault; 304 answers conditional
  // requests; other statuses are transport errors.
  if (response.status != 200 && response.status != 304 &&
      response.status != 500)
    throw HttpError(response.status, "unexpected status from " + endpoint.to_string());
  WireResponse out;
  out.body = std::move(response.body);
  out.directives = http::cache_directives(response);
  out.not_modified = response.status == 304;
  if (auto lm = response.headers.get("Last-Modified"))
    out.last_modified = http::parse_http_date(*lm);
  return out;
}

void register_http_metrics(obs::MetricsRegistry& registry,
                           const HttpTransport& transport) {
  registry.family("wsc_http_roundtrip_ns",
                  "HTTP socket round-trip latency (traced runs only)",
                  obs::MetricsRegistry::Kind::Summary);
  registry.collector([&transport](std::vector<obs::Sample>& out) {
    util::Histogram hist = transport.roundtrip_summary().snapshot();
    for (double q : obs::MetricsRegistry::summary_quantiles()) {
      char qs[32];
      std::snprintf(qs, sizeof(qs), "%g", q);
      out.push_back({"wsc_http_roundtrip_ns",
                     {{"quantile", qs}},
                     hist.count() ? static_cast<double>(hist.percentile(q))
                                  : 0.0});
    }
    out.push_back(
        {"wsc_http_roundtrip_ns_sum", {}, static_cast<double>(hist.sum())});
    out.push_back(
        {"wsc_http_roundtrip_ns_count", {}, static_cast<double>(hist.count())});
  });
}

}  // namespace wsc::transport
