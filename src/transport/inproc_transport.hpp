// In-process transport: direct dispatch to bound SoapServices.
//
// Used where the paper wants the backend out of the measurement ("the
// back-end services should not be a performance bottleneck", §5.2) and by
// the micro-benchmarks, which measure pure cache-path processing.  A
// configurable artificial latency stands in for network + remote-server
// time when an experiment needs a realistic round-trip cost.
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "http/cache_headers.hpp"
#include "soap/dispatcher.hpp"
#include "transport/transport.hpp"

namespace wsc::transport {

class InProcessTransport final : public Transport {
 public:
  /// Per-operation Last-Modified source for conditional requests.
  using LastModifiedProvider =
      std::function<std::optional<std::chrono::seconds>(const std::string& op)>;

  /// Bind a service at an endpoint URI like "inproc://services/google".
  /// Optional per-service Cache-Control advertisement is attached to every
  /// response from that endpoint; an optional provider enables
  /// If-Modified-Since / 304 answers.
  void bind(const std::string& endpoint_url,
            std::shared_ptr<soap::SoapService> service,
            http::CacheDirectives advertised = {},
            LastModifiedProvider last_modified = nullptr);

  /// Artificial request latency applied to every post (default: none).
  void set_latency(std::chrono::microseconds latency) { latency_ = latency; }

  WireResponse post(const util::Uri& endpoint,
                    const WireRequest& request) override;
  using Transport::post;

 private:
  struct Binding {
    std::shared_ptr<soap::SoapService> service;
    http::CacheDirectives advertised;
    LastModifiedProvider last_modified;
  };

  mutable std::mutex mu_;
  std::map<std::string, Binding> bindings_;
  std::chrono::microseconds latency_{0};
};

}  // namespace wsc::transport
