#include "transport/transport.hpp"

// Interface-only TU.
namespace wsc::transport {}
