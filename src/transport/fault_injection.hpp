// Seeded fault-injecting Transport decorator.
//
// Wraps any Transport and turns a configurable fraction of calls into the
// failure modes an unreliable origin really produces: refused connections,
// stalled reads, mid-body truncation, corrupt XML, slow responses, and
// burst outages.  Every decision comes from one SplitMix64 stream, so a
// test or bench that logs its seed reproduces the exact fault schedule.
//
// Faults are expressed the way the real HTTP stack would surface them —
// truncation becomes the retryable TransportError HttpConnection throws on
// a short read, a stalled read becomes the TimeoutError an armed
// SO_RCVTIMEO produces — so everything above the Transport interface
// (RetryingTransport, CachingServiceClient) exercises its production
// paths, not test-only ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>

#include "transport/transport.hpp"
#include "util/random.hpp"

namespace wsc::transport {

/// Fault schedule: independent per-call probabilities (at most one fault
/// fires per call; they are sampled from one uniform draw in the order
/// listed) plus a deterministic burst outage window.
struct FaultSpec {
  std::uint64_t seed = 1;
  /// Refuse before touching the inner transport (connect refused).
  double p_connect_refused = 0;
  /// Stalled read: the deadline expires with no bytes (TimeoutError).
  double p_read_stall = 0;
  /// Peer closes mid-body: retryable TransportError after the origin did
  /// the work (the inner call still runs, matching a real short read).
  double p_truncate_body = 0;
  /// Deliver the response with bytes flipped inside the body: the fault
  /// reaches the XML parser, not the transport error path.
  double p_corrupt_xml = 0;
  /// Deliver intact but only after `slow_latency` of real wall time.
  double p_slow = 0;
  std::chrono::milliseconds slow_latency{20};
  /// Real wall time to burn before a stall fault throws (zero = instant,
  /// which keeps unit tests fast; benches may want a nonzero value).
  std::chrono::milliseconds stall_latency{0};
  /// Burst outage: calls [outage_after, outage_after + outage_length) are
  /// all refused regardless of probabilities.  outage_after < 0 disables.
  long outage_after = -1;
  long outage_length = 0;
  /// Deterministic latency spike: calls [spike_after, spike_after +
  /// spike_length) are delivered INTACT but only after `spike_latency` of
  /// real wall time — slow, short of any deadline.  Unlike p_slow this is
  /// indexed, not drawn, so a test can hold exactly the Nth call (e.g. a
  /// coalescing leader) in flight.  The per-call RNG draw still happens
  /// inside the window, keeping the probabilistic schedule aligned with
  /// the same seed outside it.  spike_after < 0 disables.
  long spike_after = -1;
  long spike_length = 0;
  std::chrono::milliseconds spike_latency{50};
};

class FaultInjectingTransport final : public Transport {
 public:
  struct Counters {
    std::uint64_t calls = 0;
    std::uint64_t refused = 0;
    std::uint64_t stalled = 0;
    std::uint64_t truncated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t slowed = 0;
    std::uint64_t spiked = 0;  // calls held by the deterministic spike window
    std::uint64_t outage_failures = 0;
    std::uint64_t down_failures = 0;
    std::uint64_t delivered = 0;  // intact responses (slowed ones included)
  };

  FaultInjectingTransport(std::shared_ptr<Transport> inner, FaultSpec spec);

  WireResponse post(const util::Uri& endpoint,
                    const WireRequest& request) override;
  using Transport::post;

  /// Hard outage switch: while down, every call is refused (overrides the
  /// probabilistic schedule).  Used to script outage/recovery phases.
  void set_down(bool down);
  bool down() const;

  /// Replace the fault schedule mid-run (warm-up phase with no faults,
  /// then a degraded phase, say).  The RNG stream and call index continue,
  /// so a logged seed still reproduces the whole scripted run.
  void set_spec(const FaultSpec& spec);

  Counters counters() const;
  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  enum class Fault { None, Refuse, Stall, Truncate, Corrupt, Slow };
  Fault draw_fault_locked();

  std::shared_ptr<Transport> inner_;
  FaultSpec spec_;
  mutable std::mutex mu_;
  util::Rng rng_;
  Counters counters_;
  long call_index_ = 0;
  bool down_ = false;
};

}  // namespace wsc::transport
