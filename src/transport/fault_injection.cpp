#include "transport/fault_injection.hpp"

#include <thread>

#include "util/error.hpp"

namespace wsc::transport {

FaultInjectingTransport::FaultInjectingTransport(
    std::shared_ptr<Transport> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {
  if (!inner_) throw Error("FaultInjectingTransport: null inner transport");
}

void FaultInjectingTransport::set_down(bool down) {
  std::lock_guard lock(mu_);
  down_ = down;
}

bool FaultInjectingTransport::down() const {
  std::lock_guard lock(mu_);
  return down_;
}

void FaultInjectingTransport::set_spec(const FaultSpec& spec) {
  std::lock_guard lock(mu_);
  spec_ = spec;  // rng_ keeps its stream: the run stays seed-reproducible
}

FaultInjectingTransport::Counters FaultInjectingTransport::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

FaultInjectingTransport::Fault FaultInjectingTransport::draw_fault_locked() {
  // One uniform draw per call keeps the schedule a pure function of the
  // seed and the call index, independent of which fault fired before.
  double u = rng_.next_double();
  double edge = spec_.p_connect_refused;
  if (u < edge) return Fault::Refuse;
  if (u < (edge += spec_.p_read_stall)) return Fault::Stall;
  if (u < (edge += spec_.p_truncate_body)) return Fault::Truncate;
  if (u < (edge += spec_.p_corrupt_xml)) return Fault::Corrupt;
  if (u < (edge += spec_.p_slow)) return Fault::Slow;
  return Fault::None;
}

WireResponse FaultInjectingTransport::post(const util::Uri& endpoint,
                                           const WireRequest& request) {
  Fault fault;
  bool spiked = false;
  {
    std::lock_guard lock(mu_);
    ++counters_.calls;
    long index = call_index_++;
    if (down_) {
      ++counters_.down_failures;
      throw TransportError("injected outage (down): connection refused by " +
                           endpoint.to_string());
    }
    if (spec_.outage_after >= 0 && index >= spec_.outage_after &&
        index < spec_.outage_after + spec_.outage_length) {
      ++counters_.outage_failures;
      throw TransportError("injected burst outage: connection refused by " +
                           endpoint.to_string());
    }
    fault = draw_fault_locked();
    if (spec_.spike_after >= 0 && index >= spec_.spike_after &&
        index < spec_.spike_after + spec_.spike_length) {
      // The draw above already happened, so the RNG stream (and therefore
      // the fault schedule outside the window) is unchanged by the spike;
      // inside it the spike wins — deliver intact, just late.
      fault = Fault::None;
      spiked = true;
      ++counters_.spiked;
    }
    switch (fault) {
      case Fault::Refuse: ++counters_.refused; break;
      case Fault::Stall: ++counters_.stalled; break;
      case Fault::Truncate: ++counters_.truncated; break;
      case Fault::Corrupt: ++counters_.corrupted; break;
      case Fault::Slow: ++counters_.slowed; break;
      case Fault::None: break;
    }
  }

  if (spiked) std::this_thread::sleep_for(spec_.spike_latency);
  switch (fault) {
    case Fault::Refuse:
      throw TransportError("injected fault: connection refused by " +
                           endpoint.to_string());
    case Fault::Stall:
      if (spec_.stall_latency.count() > 0)
        std::this_thread::sleep_for(spec_.stall_latency);
      throw TimeoutError("injected fault: read stalled past deadline at " +
                         endpoint.to_string());
    case Fault::Slow:
      std::this_thread::sleep_for(spec_.slow_latency);
      break;
    default:
      break;
  }

  WireResponse response = inner_->post(endpoint, request);

  if (fault == Fault::Truncate) {
    // The origin produced the response, but the connection died halfway
    // through the body — exactly what HttpConnection::try_round_trip
    // reports for a short read.
    throw TransportError(
        "injected fault: connection closed mid-response (truncated after " +
        std::to_string(response.body.size() / 2) + " bytes)");
  }
  if (fault == Fault::Corrupt && !response.body.empty()) {
    // Flip bytes in the middle of the document: well-formedness breaks but
    // the transport layer has no way to notice — the parser must.
    std::size_t mid = response.body.size() / 2;
    response.body[mid] = '\x01';
    if (mid + 1 < response.body.size()) response.body[mid + 1] = '<';
  } else {
    std::lock_guard lock(mu_);
    ++counters_.delivered;
  }
  return response;
}

}  // namespace wsc::transport
