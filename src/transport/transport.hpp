// Transport abstraction under the client middleware.
//
// The cache sits *above* this interface (Figure 1): on a miss the client
// stub serializes the request, posts the document here, and parses the
// reply.  Two implementations:
//   HttpTransport   - real HTTP/1.1 over loopback TCP (Tomcat scenario)
//   InProcessTransport - direct dispatch with configurable simulated
//                        latency (noise-free micro-benchmarks and tests)
//
// The interface also carries the §3.2 HTTP consistency hooks the paper
// points at: responses may advertise Cache-Control and Last-Modified, and
// a request may be conditional (If-Modified-Since), in which case the
// server can answer 304 Not Modified with an empty body.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <string_view>

#include "http/cache_headers.hpp"
#include "util/uri.hpp"

namespace wsc::transport {

/// Outgoing SOAP request plus transport-level conditional metadata.
struct WireRequest {
  std::string soap_action;
  std::string body;
  /// When set, sent as If-Modified-Since (timestamps are seconds on the
  /// simulated epoch used throughout http::cache_headers).
  std::optional<std::chrono::seconds> if_modified_since;
};

/// Response document plus the HTTP-level cache metadata.
struct WireResponse {
  std::string body;
  http::CacheDirectives directives;
  /// True when the server answered 304 Not Modified (body is empty).
  bool not_modified = false;
  /// Server-attached Last-Modified, if any.
  std::optional<std::chrono::seconds> last_modified;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// POST a SOAP envelope to `endpoint`.
  /// Throws wsc::TransportError on delivery failure and wsc::HttpError on
  /// statuses other than 200/304/500 (500 carries fault envelopes through).
  virtual WireResponse post(const util::Uri& endpoint,
                            const WireRequest& request) = 0;

  /// Convenience overload for unconditional posts.
  WireResponse post(const util::Uri& endpoint, std::string_view soap_action,
                    const std::string& body) {
    WireRequest request;
    request.soap_action = std::string(soap_action);
    request.body = body;
    return post(endpoint, request);
  }
};

}  // namespace wsc::transport
