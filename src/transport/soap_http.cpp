#include "transport/soap_http.hpp"

#include <utility>

namespace wsc::transport {

http::Handler make_soap_handler(
    std::string path, std::shared_ptr<soap::SoapService> service,
    std::map<std::string, http::CacheDirectives> advertised,
    LastModifiedProvider last_modified) {
  return [path = std::move(path), service = std::move(service),
          advertised = std::move(advertised),
          last_modified =
              std::move(last_modified)](const http::Request& request) {
    http::Response response;
    if (request.target != path) {
      response.status = 404;
      response.body = "no service at " + request.target;
      return response;
    }
    if (request.method != "POST") {
      response.status = 405;
      response.body = "SOAP endpoints accept POST only";
      return response;
    }

    // §3.2 HTTP consistency hook: a conditional request whose
    // If-Modified-Since is at or after the operation's Last-Modified is
    // answered 304 without touching the service.
    std::optional<std::chrono::seconds> lm;
    if (last_modified) {
      std::string op = soap::peek_operation(request.body);
      lm = last_modified(op);
      if (lm) {
        if (auto ims = request.headers.get("If-Modified-Since")) {
          if (auto since = http::parse_http_date(*ims); since && *lm <= *since) {
            response.status = 304;
            response.headers.set("Last-Modified", http::format_http_date(*lm));
            return response;
          }
        }
      }
    }

    soap::SoapService::HandleResult result = service->handle(request.body);
    response.status = result.fault ? 500 : 200;
    response.headers.set("Content-Type", "text/xml; charset=utf-8");
    if (!result.fault) {
      auto it = advertised.find(result.operation);
      if (it != advertised.end())
        response.headers.set("Cache-Control",
                             http::format_cache_control(it->second));
      if (lm)
        response.headers.set("Last-Modified", http::format_http_date(*lm));
    }
    response.body = std::move(result.xml);
    return response;
  };
}

std::unique_ptr<http::HttpServer> serve_soap(
    std::uint16_t port, const std::string& path,
    std::shared_ptr<soap::SoapService> service,
    std::map<std::string, http::CacheDirectives> advertised,
    LastModifiedProvider last_modified) {
  auto server = std::make_unique<http::HttpServer>(
      port, make_soap_handler(path, std::move(service), std::move(advertised),
                              std::move(last_modified)));
  server->start();
  return server;
}

}  // namespace wsc::transport
