#include "transport/retry.hpp"

#include <algorithm>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wsc::transport {

RetryingTransport::RetryingTransport(std::shared_ptr<Transport> inner,
                                     RetryPolicy policy)
    : RetryingTransport(std::move(inner), policy, Deps{}) {}

RetryingTransport::RetryingTransport(std::shared_ptr<Transport> inner,
                                     RetryPolicy policy, Deps deps)
    : inner_(std::move(inner)),
      policy_(policy),
      clock_(deps.clock ? deps.clock : &util::steady_clock()),
      sleeper_(std::move(deps.sleeper)),
      jitter_(deps.jitter_seed),
      budget_(policy.budget_initial) {
  if (!inner_) throw Error("RetryingTransport: null inner transport");
  policy_.max_attempts = std::max(1, policy_.max_attempts);
}

void RetryingTransport::set_listener(Listener listener) {
  std::lock_guard lock(mu_);
  listener_ = std::move(listener);
}

RetryCounters RetryingTransport::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

RetryingTransport::BreakerState RetryingTransport::breaker_state(
    const util::Uri& endpoint) const {
  std::lock_guard lock(mu_);
  auto it = breakers_.find(breaker_key(endpoint));
  return it == breakers_.end() ? BreakerState::Closed : it->second.state;
}

double RetryingTransport::budget_tokens() const {
  std::lock_guard lock(mu_);
  return budget_;
}

std::string RetryingTransport::breaker_key(const util::Uri& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.effective_port());
}

void RetryingTransport::sleep_for(std::chrono::milliseconds d) {
  if (d.count() <= 0) return;
  // Attribute the sleep to the in-flight call's Backoff stage (no-op when
  // no trace is active); the client subtracts it from its Wire stage so
  // the two never double-count.
  obs::StageTimer timer(obs::Stage::Backoff);
  if (sleeper_) {
    sleeper_(d);
  } else {
    std::this_thread::sleep_for(d);
  }
}

std::chrono::milliseconds RetryingTransport::next_backoff(
    std::chrono::milliseconds previous) {
  // Decorrelated jitter (AWS architecture blog): uniform in
  // [base, 3 * previous], capped.  Spreads a thundering herd of clients
  // that all saw the same outage at the same instant.
  auto lo = policy_.base_backoff.count();
  auto hi = std::max<std::chrono::milliseconds::rep>(lo, 3 * previous.count());
  auto pick = lo + static_cast<std::chrono::milliseconds::rep>(
                       jitter_.next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  return std::min(std::chrono::milliseconds(pick), policy_.max_backoff);
}

bool RetryingTransport::admit(const std::string& key,
                              const util::Uri& endpoint) {
  std::function<void()> notify;
  bool probe = false;
  {
    std::lock_guard lock(mu_);
    Breaker& breaker = breakers_[key];
    if (breaker.state == BreakerState::Open) {
      if (now() < breaker.open_until) {
        ++counters_.breaker_fast_fails;
        ++counters_.failures;
        throw BreakerOpenError("circuit breaker open for " + key +
                               " (fast fail; cooling down)");
      }
      breaker.state = BreakerState::HalfOpen;
      breaker.probe_in_flight = false;
    }
    if (breaker.state == BreakerState::HalfOpen) {
      if (breaker.probe_in_flight) {
        ++counters_.breaker_fast_fails;
        ++counters_.failures;
        throw BreakerOpenError("circuit breaker half-open for " + key +
                               " (probe already in flight)");
      }
      breaker.probe_in_flight = true;
      probe = true;
      ++counters_.breaker_probes;
      notify = listener_.on_breaker_probe;
    }
  }
  (void)endpoint;
  if (notify) notify();
  return probe;
}

void RetryingTransport::on_success(const std::string& key, bool was_probe) {
  std::lock_guard lock(mu_);
  Breaker& breaker = breakers_[key];
  breaker.consecutive_failures = 0;
  if (was_probe || breaker.state != BreakerState::Closed) {
    breaker.state = BreakerState::Closed;
    breaker.probe_in_flight = false;
    ++counters_.breaker_closes;
  }
  budget_ = std::min(policy_.budget_cap, budget_ + policy_.budget_earn);
  ++counters_.successes;
}

void RetryingTransport::on_failure(const std::string& key, bool was_probe) {
  std::function<void()> notify;
  {
    std::lock_guard lock(mu_);
    Breaker& breaker = breakers_[key];
    if (was_probe || breaker.state == BreakerState::HalfOpen) {
      // The recovery probe failed: re-open for a fresh cooldown.
      breaker.state = BreakerState::Open;
      breaker.open_until = now() + policy_.breaker_cooldown;
      breaker.probe_in_flight = false;
      ++counters_.breaker_opens;
      notify = listener_.on_breaker_open;
    } else {
      ++breaker.consecutive_failures;
      if (breaker.state == BreakerState::Closed &&
          breaker.consecutive_failures >= policy_.breaker_threshold) {
        breaker.state = BreakerState::Open;
        breaker.open_until = now() + policy_.breaker_cooldown;
        ++counters_.breaker_opens;
        notify = listener_.on_breaker_open;
      }
    }
  }
  if (notify) notify();
}

WireResponse RetryingTransport::post(const util::Uri& endpoint,
                                     const WireRequest& request) {
  const std::string key = breaker_key(endpoint);
  const bool bounded = policy_.deadline.count() > 0;
  const util::TimePoint deadline_at =
      bounded ? now() + policy_.deadline : util::TimePoint{};
  std::chrono::milliseconds previous_backoff = policy_.base_backoff;

  // Either rethrows the active exception (or a deadline TimeoutError), or
  // performs the backoff sleep and lets the loop try again.
  auto retry_or_rethrow = [&](int attempt, bool retryable) {
    std::chrono::milliseconds backoff{0};
    std::function<void()> notify;
    bool deadline_hit = false;
    {
      std::lock_guard lock(mu_);
      if (!retryable || attempt >= policy_.max_attempts) {
        ++counters_.failures;
        throw;
      }
      if (bounded && now() >= deadline_at) {
        ++counters_.failures;
        ++counters_.deadline_hits;
        notify = listener_.on_deadline_hit;
        deadline_hit = true;
      } else if (budget_ < 1.0) {
        ++counters_.budget_exhausted;
        ++counters_.failures;
        throw;  // retry budget spent: do not amplify the outage
      } else {
        budget_ -= 1.0;
        backoff = next_backoff(previous_backoff);
        if (bounded) {
          auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline_at - now());
          backoff = std::min(backoff, remaining);
        }
        ++counters_.retries;
        notify = listener_.on_retry;
      }
    }
    if (notify) notify();
    if (deadline_hit)
      throw TimeoutError("per-call deadline of " +
                             std::to_string(policy_.deadline.count()) +
                             "ms exceeded after " + std::to_string(attempt) +
                             " attempt(s) to " + key,
                         /*retryable=*/false);
    sleep_for(backoff);
    previous_backoff = std::max(backoff, policy_.base_backoff);
  };

  for (int attempt = 1;; ++attempt) {
    bool probe = admit(key, endpoint);  // throws BreakerOpenError when open
    {
      std::lock_guard lock(mu_);
      ++counters_.attempts;
    }
    try {
      WireResponse response = inner_->post(endpoint, request);
      on_success(key, probe);
      return response;
    } catch (const TransportError& error) {
      on_failure(key, probe);
      retry_or_rethrow(attempt, error.retryable());
    } catch (const HttpError& error) {
      // Gateway-style statuses are origin overload/unavailability: count
      // them against the breaker and retry.  Anything else is a definitive
      // answer from a live endpoint — not this layer's business.
      int s = error.status();
      bool transient = s == 429 || s == 502 || s == 503 || s == 504;
      if (!transient) {
        std::lock_guard lock(mu_);
        ++counters_.failures;
        throw;
      }
      on_failure(key, probe);
      retry_or_rethrow(attempt, true);
    }
  }
}

void register_retry_metrics(obs::MetricsRegistry& registry,
                            const RetryingTransport& transport) {
  using obs::MetricsRegistry;
  registry.family("wsc_retry_attempts_total", "Wire calls actually made",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_retry_retries_total", "Attempts beyond the first",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_retry_successes_total", "Delivered post() calls",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_retry_failures_total",
                  "Failed post() calls (all attempts spent)",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_retry_deadline_hits_total",
                  "Per-call deadlines exceeded", MetricsRegistry::Kind::Counter);
  registry.family("wsc_retry_budget_exhausted_total",
                  "Retries suppressed by the token-bucket budget",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_breaker_opens_total", "Circuit breaker open events",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_breaker_fast_fails_total",
                  "Calls rejected while the breaker was open",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_breaker_probes_total", "Half-open recovery trial calls",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_breaker_closes_total",
                  "Breaker recoveries (probe succeeded)",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_retry_budget_tokens", "Remaining retry budget tokens",
                  MetricsRegistry::Kind::Gauge);
  registry.collector([&transport](std::vector<obs::Sample>& out) {
    RetryCounters c = transport.counters();  // one locked snapshot
    auto emit = [&out](const char* name, std::uint64_t v) {
      out.push_back({name, {}, static_cast<double>(v)});
    };
    emit("wsc_retry_attempts_total", c.attempts);
    emit("wsc_retry_retries_total", c.retries);
    emit("wsc_retry_successes_total", c.successes);
    emit("wsc_retry_failures_total", c.failures);
    emit("wsc_retry_deadline_hits_total", c.deadline_hits);
    emit("wsc_retry_budget_exhausted_total", c.budget_exhausted);
    emit("wsc_breaker_opens_total", c.breaker_opens);
    emit("wsc_breaker_fast_fails_total", c.breaker_fast_fails);
    emit("wsc_breaker_probes_total", c.breaker_probes);
    emit("wsc_breaker_closes_total", c.breaker_closes);
    out.push_back({"wsc_retry_budget_tokens", {}, transport.budget_tokens()});
  });
}

}  // namespace wsc::transport
