// Glue: host a SoapService inside an HttpServer (the Tomcat+Axis server
// side of the portal scenario).
#pragma once

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "http/cache_headers.hpp"
#include "http/server.hpp"
#include "soap/dispatcher.hpp"

namespace wsc::transport {

/// Per-operation Last-Modified source enabling If-Modified-Since / 304.
using LastModifiedProvider =
    std::function<std::optional<std::chrono::seconds>(const std::string& op)>;

/// Build an http::Handler that routes POSTs at `path` to `service`.
/// `advertised` optionally maps operation name -> Cache-Control directives
/// attached to that operation's responses (the server-driven consistency
/// hook of §3.2); `last_modified` adds Last-Modified headers and answers
/// conditional requests with 304 without dispatching.  Non-POST methods
/// get 405; other paths 404.
http::Handler make_soap_handler(
    std::string path, std::shared_ptr<soap::SoapService> service,
    std::map<std::string, http::CacheDirectives> advertised = {},
    LastModifiedProvider last_modified = nullptr);

/// Convenience: spin up an HttpServer serving one SOAP service; returns the
/// started server (caller owns it) — endpoint is base_url() + path.
std::unique_ptr<http::HttpServer> serve_soap(
    std::uint16_t port, const std::string& path,
    std::shared_ptr<soap::SoapService> service,
    std::map<std::string, http::CacheDirectives> advertised = {},
    LastModifiedProvider last_modified = nullptr);

}  // namespace wsc::transport
