// Retrying Transport decorator: bounded retries with exponential backoff
// and decorrelated jitter, a per-call deadline, a token-bucket retry
// budget, and a per-endpoint circuit breaker.
//
// Layering (bottom-up): HttpTransport (socket deadlines) or
// InProcessTransport, optionally a FaultInjectingTransport, then this
// decorator, then the caching client.  The cache above turns "the wire
// call failed after all this" into a stale-if-error serve when the policy
// allows; this layer's job is only to make that failure *prompt* and to
// absorb transient faults invisibly.
//
// Determinism: the clock, the jitter RNG, and the sleep primitive are all
// injectable, so tests drive the whole schedule in virtual time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "transport/transport.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace wsc::obs {
class MetricsRegistry;
}

namespace wsc::transport {

struct RetryPolicy {
  /// Total tries per post() (1 = no retries).
  int max_attempts = 3;
  /// Backoff between attempts: decorrelated jitter in
  /// [base_backoff, 3 * previous], capped at max_backoff.
  std::chrono::milliseconds base_backoff{25};
  std::chrono::milliseconds max_backoff{1000};
  /// Wall-clock budget for one post() across all attempts and backoffs;
  /// zero = unbounded.  Exceeding it throws a non-retryable TimeoutError.
  std::chrono::milliseconds deadline{0};
  /// Token-bucket retry budget shared across all endpoints: each delivered
  /// response earns `budget_earn` tokens (capped at `budget_cap`), each
  /// retry spends 1.  Keeps a persistent outage from multiplying load by
  /// max_attempts (retry-storm guard).
  double budget_initial = 10.0;
  double budget_earn = 0.1;
  double budget_cap = 10.0;
  /// Circuit breaker, tracked per endpoint (host:port): this many
  /// *consecutive* failures open it; while open every call fast-fails with
  /// BreakerOpenError; after `breaker_cooldown` one half-open probe is let
  /// through — success closes the breaker, failure re-opens it.
  int breaker_threshold = 5;
  std::chrono::milliseconds breaker_cooldown{2000};
};

struct RetryCounters {
  std::uint64_t attempts = 0;        // wire calls actually made
  std::uint64_t retries = 0;         // attempts beyond the first
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;        // failed post() calls (all attempts)
  std::uint64_t deadline_hits = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_fast_fails = 0;
  std::uint64_t breaker_probes = 0;  // half-open trial calls
  std::uint64_t breaker_closes = 0;
};

class RetryingTransport final : public Transport {
 public:
  enum class BreakerState { Closed, Open, HalfOpen };

  /// Injectable dependencies; the defaults are the real clock, a seeded
  /// jitter RNG, and std::this_thread::sleep_for.
  struct Deps {
    const util::Clock* clock = nullptr;  // null = util::steady_clock()
    std::uint64_t jitter_seed = 0x5eed;
    std::function<void(std::chrono::milliseconds)> sleeper;  // null = real
  };

  /// Event hooks, fired outside the internal lock, so a caller can fold
  /// retry/breaker/deadline activity into its own stats (the caching
  /// client bridges these into CacheStats; see bind_transport_stats).
  struct Listener {
    std::function<void()> on_retry;
    std::function<void()> on_breaker_open;
    std::function<void()> on_breaker_probe;
    std::function<void()> on_deadline_hit;
  };

  RetryingTransport(std::shared_ptr<Transport> inner, RetryPolicy policy);
  RetryingTransport(std::shared_ptr<Transport> inner, RetryPolicy policy,
                    Deps deps);

  WireResponse post(const util::Uri& endpoint,
                    const WireRequest& request) override;
  using Transport::post;

  void set_listener(Listener listener);
  RetryCounters counters() const;
  BreakerState breaker_state(const util::Uri& endpoint) const;
  double budget_tokens() const;

 private:
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    int consecutive_failures = 0;
    util::TimePoint open_until{};
    bool probe_in_flight = false;
  };

  /// Gate one attempt through the breaker; throws BreakerOpenError on
  /// fast-fail.  Returns true when this attempt is a half-open probe.
  bool admit(const std::string& key, const util::Uri& endpoint);
  void on_success(const std::string& key, bool was_probe);
  void on_failure(const std::string& key, bool was_probe);
  std::chrono::milliseconds next_backoff(std::chrono::milliseconds previous);

  static std::string breaker_key(const util::Uri& endpoint);
  void sleep_for(std::chrono::milliseconds d);
  util::TimePoint now() const { return clock_->now(); }

  std::shared_ptr<Transport> inner_;
  RetryPolicy policy_;
  const util::Clock* clock_;
  std::function<void(std::chrono::milliseconds)> sleeper_;
  Listener listener_;

  mutable std::mutex mu_;
  util::Rng jitter_;
  double budget_;
  std::map<std::string, Breaker> breakers_;
  RetryCounters counters_;
};

/// Export every RetryCounters field (wsc_retry_*) plus the remaining
/// budget tokens gauge from ONE counters() snapshot per scrape.  The
/// transport must outlive the registry's exports.
void register_retry_metrics(obs::MetricsRegistry& registry,
                            const RetryingTransport& transport);

}  // namespace wsc::transport
