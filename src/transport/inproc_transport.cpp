#include "transport/inproc_transport.hpp"

#include <thread>

#include "util/error.hpp"

namespace wsc::transport {

void InProcessTransport::bind(const std::string& endpoint_url,
                              std::shared_ptr<soap::SoapService> service,
                              http::CacheDirectives advertised,
                              LastModifiedProvider last_modified) {
  util::Uri uri = util::Uri::parse(endpoint_url);
  std::lock_guard lock(mu_);
  bindings_[uri.to_string()] = {std::move(service), advertised,
                                std::move(last_modified)};
}

WireResponse InProcessTransport::post(const util::Uri& endpoint,
                                      const WireRequest& request) {
  Binding binding;
  {
    std::lock_guard lock(mu_);
    auto it = bindings_.find(endpoint.to_string());
    if (it == bindings_.end())
      throw TransportError("InProcessTransport: no service bound at " +
                               endpoint.to_string(),
                           /*retryable=*/false);
    binding = it->second;
  }
  if (latency_.count() > 0) std::this_thread::sleep_for(latency_);

  WireResponse out;
  out.directives = binding.advertised;
  if (binding.last_modified) {
    std::string op = soap::peek_operation(request.body);
    out.last_modified = binding.last_modified(op);
    if (request.if_modified_since && out.last_modified &&
        *out.last_modified <= *request.if_modified_since) {
      out.not_modified = true;  // 304: skip dispatch entirely
      return out;
    }
  }
  soap::SoapService::HandleResult result = binding.service->handle(request.body);
  out.body = std::move(result.xml);
  return out;
}

}  // namespace wsc::transport
