// SOAP-over-HTTP transport with a keep-alive connection pool.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "http/client.hpp"
#include "obs/metrics.hpp"
#include "transport/transport.hpp"

namespace wsc::transport {

class HttpTransport final : public Transport {
 public:
  struct Options {
    /// Socket deadlines applied to every pooled connection (zero = no
    /// bound).  Wrap this transport in a RetryingTransport to turn the
    /// resulting TimeoutErrors into bounded retries.
    http::SocketOptions socket;
  };

  HttpTransport() = default;
  explicit HttpTransport(Options options) : options_(options) {}

  WireResponse post(const util::Uri& endpoint,
                    const WireRequest& request) override;
  using Transport::post;

  const Options& options() const noexcept { return options_; }

  /// Socket round-trip latency distribution (request write to response
  /// parse, excluding retries/backoff above).  Only recorded while the
  /// process tracer is enabled, so the untraced hot path stays clock-free.
  const obs::Summary& roundtrip_summary() const noexcept {
    return roundtrip_ns_;
  }

 private:
  using ConnPtr = std::unique_ptr<http::HttpConnection>;

  /// Borrow an idle pooled connection to host:port (or open a new one).
  ConnPtr acquire(const std::string& host, std::uint16_t port);
  void release(ConnPtr conn);

  Options options_;
  std::mutex mu_;
  std::unordered_map<std::string, std::vector<ConnPtr>> idle_;
  obs::Summary roundtrip_ns_;
};

/// Export wsc_http_roundtrip_ns (summary) from the transport's recorder.
/// The transport must outlive the registry's exports.
void register_http_metrics(obs::MetricsRegistry& registry,
                           const HttpTransport& transport);

}  // namespace wsc::transport
