#include "services/google/service.hpp"

#include "reflect/object.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"
#include "util/strings.hpp"

namespace wsc::services::google {

using reflect::Object;
using reflect::type_of;

std::shared_ptr<const wsdl::ServiceDescription> google_description() {
  static const std::shared_ptr<const wsdl::ServiceDescription> desc = [] {
    ensure_google_types();
    auto d = std::make_shared<wsdl::ServiceDescription>("GoogleSearchService",
                                                        "urn:GoogleSearch");
    const auto& str = type_of<std::string>();
    const auto& i32 = type_of<std::int32_t>();
    const auto& boolean = type_of<bool>();

    wsdl::OperationInfo spell;
    spell.name = "doSpellingSuggestion";
    spell.params = {{"key", &str}, {"phrase", &str}};
    spell.result_type = &str;
    d->add_operation(std::move(spell));

    wsdl::OperationInfo page;
    page.name = "doGetCachedPage";
    page.params = {{"key", &str}, {"url", &str}};
    page.result_type = &type_of<std::vector<std::uint8_t>>();
    d->add_operation(std::move(page));

    wsdl::OperationInfo search;
    search.name = "doGoogleSearch";
    // String x6, int x2, boolean x2 — Table 5's request shape.
    search.params = {{"key", &str},        {"q", &str},
                     {"start", &i32},      {"maxResults", &i32},
                     {"filter", &boolean}, {"restrict", &str},
                     {"safeSearch", &boolean}, {"lr", &str},
                     {"ie", &str},         {"oe", &str}};
    search.result_type = &type_of<GoogleSearchResult>();
    d->add_operation(std::move(search));
    return d;
  }();
  return desc;
}

std::string GoogleBackend::spelling_suggestion(const std::string& phrase) const {
  // Deterministic "correction": title-case words and normalize whitespace;
  // version changes flip the suggestion so staleness is observable.
  std::string out;
  out.reserve(phrase.size());
  bool word_start = true;
  for (char c : phrase) {
    if (c == ' ' || c == '\t') {
      if (!out.empty() && out.back() != ' ') out.push_back(' ');
      word_start = true;
    } else {
      out.push_back(word_start && c >= 'a' && c <= 'z'
                        ? static_cast<char>(c - 'a' + 'A')
                        : c);
      word_start = false;
    }
  }
  std::uint64_t v = version();
  if (v != 0) out += " (rev " + std::to_string(v) + ")";
  return out;
}

std::vector<std::uint8_t> GoogleBackend::cached_page(const std::string& url) const {
  util::Rng rng(util::fnv1a(url) ^ version());
  std::string html = "<html><head><title>" + url + "</title></head><body>";
  while (html.size() < config_.cached_page_bytes) {
    html += "<p>" + rng.next_sentence(12) + "</p>";
  }
  html.resize(config_.cached_page_bytes);
  return std::vector<std::uint8_t>(html.begin(), html.end());
}

GoogleSearchResult GoogleBackend::search(const std::string& q,
                                         std::int32_t start,
                                         std::int32_t max_results) const {
  util::Rng rng(util::fnv1a(q) ^ version());
  GoogleSearchResult r;
  r.documentFiltering = rng.next_bool();
  r.searchComments = "";
  r.estimatedTotalResultsCount =
      static_cast<std::int32_t>(1000 + rng.next_below(2'000'000));
  r.estimateIsExact = false;
  r.searchQuery = q;
  r.startIndex = start + 1;
  r.searchTips = "";
  r.searchTime = 0.01 + rng.next_double() * 0.4;

  std::int32_t n = std::min(max_results, config_.results_per_page);
  if (n < 0) n = 0;
  r.resultElements.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    ResultElement e;
    std::string host = "www." + rng.next_word(4, 10) + ".com";
    e.title = rng.next_sentence(3);
    e.summary = rng.next_sentence(4);
    e.snippet = rng.next_sentence(7) + " <b>" + q + "</b> " + rng.next_sentence(4);
    e.URL = "http://" + host + "/" + rng.next_word(3, 8) + "/" +
            rng.next_word(3, 8) + ".html";
    e.cachedSize = std::to_string(1 + rng.next_below(90)) + "k";
    e.relatedInformationPresent = rng.next_bool(0.8);
    e.hostName = host;
    e.directoryCategory.fullViewableName =
        "Top/" + rng.next_word(4, 9) + "/" + rng.next_word(4, 9);
    e.directoryCategory.specialEncoding = "";
    e.directoryTitle = rng.next_bool(0.3) ? rng.next_sentence(3) : "";
    e.indexInSeries = start + i + 1;
    r.resultElements.push_back(std::move(e));
  }
  r.endIndex = start + n;

  for (int i = 0; i < 2; ++i) {
    DirectoryCategory dc;
    dc.fullViewableName = "Top/" + rng.next_word(4, 9) + "/" + rng.next_word(4, 9);
    dc.specialEncoding = "";
    r.directoryCategories.push_back(std::move(dc));
  }
  return r;
}

namespace {

const std::string& param_str(const std::vector<soap::Parameter>& params,
                             std::size_t i) {
  return params.at(i).value.as<std::string>();
}

std::int32_t param_i32(const std::vector<soap::Parameter>& params,
                       std::size_t i) {
  return params.at(i).value.as<std::int32_t>();
}

}  // namespace

std::shared_ptr<soap::SoapService> make_google_service(
    std::shared_ptr<GoogleBackend> backend) {
  auto service = std::make_shared<soap::SoapService>(*google_description());
  service->bind("doSpellingSuggestion",
                [backend](const std::vector<soap::Parameter>& p) {
                  return Object::make(backend->spelling_suggestion(param_str(p, 1)));
                });
  service->bind("doGetCachedPage",
                [backend](const std::vector<soap::Parameter>& p) {
                  return Object::make(backend->cached_page(param_str(p, 1)));
                });
  service->bind("doGoogleSearch",
                [backend](const std::vector<soap::Parameter>& p) {
                  return Object::make(backend->search(
                      param_str(p, 1), param_i32(p, 2), param_i32(p, 3)));
                });
  return service;
}

}  // namespace wsc::services::google
