// The dummy Google Web service (paper §5.2: "We developed dummy Google Web
// services for the test") and its WSDL contract.
//
// Three operations with the Table-5 signatures:
//   doSpellingSuggestion(key, phrase)            -> string   (small, simple)
//   doGetCachedPage(key, url)                    -> byte[]   (large, simple)
//   doGoogleSearch(key, q, start, maxResults,
//                  filter, restrict, safeSearch,
//                  lr, ie, oe)                   -> GoogleSearchResult
//                                                             (large, complex)
//
// Responses are deterministic functions of the request (the cache tests
// depend on that) but sized to match the paper's Table 9 messages: a
// GoogleSearch response of ~5.0 KB and a CachedPage response of ~5.3 KB.
// A bumpable `version` makes responses observably change for the
// TTL-consistency ablation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "services/google/types.hpp"
#include "soap/dispatcher.hpp"
#include "wsdl/description.hpp"

namespace wsc::services::google {

/// The service contract (shared because cache entries reference it).
std::shared_ptr<const wsdl::ServiceDescription> google_description();

class GoogleBackend {
 public:
  struct Config {
    /// Result elements per search page (Google returned 10).
    std::int32_t results_per_page = 10;
    /// Approximate decoded size of a cached page in bytes; the Base64 form
    /// in the response XML is 4/3 of this.
    std::size_t cached_page_bytes = 3600;
  };

  GoogleBackend() : GoogleBackend(Config{}) {}
  explicit GoogleBackend(Config config) : config_(config) {}

  std::string spelling_suggestion(const std::string& phrase) const;
  std::vector<std::uint8_t> cached_page(const std::string& url) const;
  GoogleSearchResult search(const std::string& q, std::int32_t start,
                            std::int32_t max_results) const;

  /// Simulated source-data update: responses for every query change when
  /// the version changes (cache consistency ablation, §3.2).
  void set_version(std::uint64_t v) { version_.store(v); }
  std::uint64_t version() const { return version_.load(); }

 private:
  Config config_;
  std::atomic<std::uint64_t> version_{0};
};

/// Build the SOAP service bound to a backend instance.
std::shared_ptr<soap::SoapService> make_google_service(
    std::shared_ptr<GoogleBackend> backend);

}  // namespace wsc::services::google
