#include "services/google/types.hpp"

#include <mutex>

#include "reflect/builder.hpp"

namespace wsc::services::google {

namespace {

const reflect::TypeInfo& register_all() {
  using reflect::StructBuilder;

  StructBuilder<DirectoryCategory>("DirectoryCategory")
      .field("fullViewableName", &DirectoryCategory::fullViewableName)
      .field("specialEncoding", &DirectoryCategory::specialEncoding)
      .serializable()
      .cloneable()
      .register_type();

  StructBuilder<ResultElement>("ResultElement")
      .field("summary", &ResultElement::summary)
      .field("URL", &ResultElement::URL)
      .field("snippet", &ResultElement::snippet)
      .field("title", &ResultElement::title)
      .field("cachedSize", &ResultElement::cachedSize)
      .field("relatedInformationPresent", &ResultElement::relatedInformationPresent)
      .field("hostName", &ResultElement::hostName)
      .field("directoryCategory", &ResultElement::directoryCategory)
      .field("directoryTitle", &ResultElement::directoryTitle)
      .field("indexInSeries", &ResultElement::indexInSeries)
      .serializable()
      .cloneable()
      .register_type();

  return StructBuilder<GoogleSearchResult>("GoogleSearchResult")
      .field("documentFiltering", &GoogleSearchResult::documentFiltering)
      .field("searchComments", &GoogleSearchResult::searchComments)
      .field("estimatedTotalResultsCount",
             &GoogleSearchResult::estimatedTotalResultsCount)
      .field("estimateIsExact", &GoogleSearchResult::estimateIsExact)
      .field("resultElements", &GoogleSearchResult::resultElements)
      .field("searchQuery", &GoogleSearchResult::searchQuery)
      .field("startIndex", &GoogleSearchResult::startIndex)
      .field("endIndex", &GoogleSearchResult::endIndex)
      .field("searchTips", &GoogleSearchResult::searchTips)
      .field("directoryCategories", &GoogleSearchResult::directoryCategories)
      .field("searchTime", &GoogleSearchResult::searchTime)
      .serializable()
      .cloneable()
      .register_type();
}

}  // namespace

const reflect::TypeInfo& ensure_google_types() {
  static const reflect::TypeInfo& info = register_all();
  return info;
}

}  // namespace wsc::services::google
