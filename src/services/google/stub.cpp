#include "services/google/stub.hpp"

namespace wsc::services::google {

using reflect::Object;
using soap::Parameter;

cache::CachePolicy default_google_policy(cache::Representation representation,
                                         std::chrono::milliseconds ttl) {
  cache::CachePolicy policy;
  for (const char* op :
       {"doSpellingSuggestion", "doGetCachedPage", "doGoogleSearch"}) {
    policy.cacheable(op, ttl, representation);
  }
  return policy;
}

GoogleClient::GoogleClient(std::shared_ptr<transport::Transport> transport,
                           std::string endpoint_url,
                           std::shared_ptr<cache::ResponseCache> response_cache,
                           cache::CachingServiceClient::Options options)
    : client_(std::move(transport), google_description(),
              std::move(endpoint_url), std::move(response_cache),
              std::move(options)) {}

std::string GoogleClient::doSpellingSuggestion(const std::string& phrase) {
  Object result = client_.invoke(
      "doSpellingSuggestion",
      {Parameter{"key", Object::make(key_)}, Parameter{"phrase", Object::make(phrase)}});
  return result.as<std::string>();
}

std::vector<std::uint8_t> GoogleClient::doGetCachedPage(const std::string& url) {
  Object result = client_.invoke(
      "doGetCachedPage",
      {Parameter{"key", Object::make(key_)}, Parameter{"url", Object::make(url)}});
  return result.as<std::vector<std::uint8_t>>();
}

GoogleSearchResult GoogleClient::doGoogleSearch(
    const std::string& q, std::int32_t start, std::int32_t max_results,
    bool filter, const std::string& restrict, bool safe_search,
    const std::string& lr, const std::string& ie, const std::string& oe) {
  Object result = client_.invoke(
      "doGoogleSearch",
      {Parameter{"key", Object::make(key_)},
       Parameter{"q", Object::make(q)},
       Parameter{"start", Object::make(start)},
       Parameter{"maxResults", Object::make(max_results)},
       Parameter{"filter", Object::make(filter)},
       Parameter{"restrict", Object::make(restrict)},
       Parameter{"safeSearch", Object::make(safe_search)},
       Parameter{"lr", Object::make(lr)},
       Parameter{"ie", Object::make(ie)},
       Parameter{"oe", Object::make(oe)}});
  // The stub returns by value: for Reference-cached entries this copy is
  // the application's own; mutating it cannot corrupt the cache.  Callers
  // needing zero-copy semantics use middleware().invoke() directly.
  return result.as<GoogleSearchResult>();
}

}  // namespace wsc::services::google
