// The Google Web APIs (beta, 2004) data types, as the Axis WSDL compiler
// would have generated them (paper §5.1 and Table 5).
//
// Shapes follow the paper exactly:
//   GoogleSearchResult - 11 fields: 9 simple (String/int/double/boolean),
//     one array of ResultElement, one array of DirectoryCategory
//   ResultElement      - 10 fields: 9 simple + one DirectoryCategory
//   DirectoryCategory  - 2 String fields
//
// All three register as serializable, cloneable bean types ("the generated
// classes are serializable and bean-type... it should be easy for the WSDL
// compiler to add a proper deep clone method").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reflect/type_info.hpp"

namespace wsc::services::google {

struct DirectoryCategory {
  std::string fullViewableName;
  std::string specialEncoding;

  bool operator==(const DirectoryCategory&) const = default;
};

struct ResultElement {
  std::string summary;
  std::string URL;
  std::string snippet;
  std::string title;
  std::string cachedSize;
  bool relatedInformationPresent = false;
  std::string hostName;
  DirectoryCategory directoryCategory;
  std::string directoryTitle;
  std::int32_t indexInSeries = 0;

  bool operator==(const ResultElement&) const = default;
};

struct GoogleSearchResult {
  bool documentFiltering = false;
  std::string searchComments;
  std::int32_t estimatedTotalResultsCount = 0;
  bool estimateIsExact = false;
  std::vector<ResultElement> resultElements;
  std::string searchQuery;
  std::int32_t startIndex = 0;
  std::int32_t endIndex = 0;
  std::string searchTips;
  std::vector<DirectoryCategory> directoryCategories;
  double searchTime = 0.0;

  bool operator==(const GoogleSearchResult&) const = default;
};

/// Register the three types (idempotent, thread-safe).  Returns the
/// GoogleSearchResult TypeInfo for convenience.
const reflect::TypeInfo& ensure_google_types();

}  // namespace wsc::services::google
