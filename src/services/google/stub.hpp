// Typed client stub for the Google service — what the Axis WSDL compiler
// would generate for the application programmer, layered on the caching
// middleware.  The application sees plain typed calls; every caching
// decision lives in the middleware underneath (paper §3.2: "meta-functions
// like caching should be separated from the application logic").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "services/google/service.hpp"
#include "services/google/types.hpp"

namespace wsc::services::google {

/// All-Google-operations-cacheable policy with the paper's example TTL
/// ("it is reasonable that one hour is short enough").
cache::CachePolicy default_google_policy(
    cache::Representation representation = cache::Representation::Auto,
    std::chrono::milliseconds ttl = std::chrono::hours(1));

class GoogleClient {
 public:
  GoogleClient(std::shared_ptr<transport::Transport> transport,
               std::string endpoint_url,
               std::shared_ptr<cache::ResponseCache> response_cache,
               cache::CachingServiceClient::Options options);

  /// License key is the first parameter of every 2004 Google operation.
  void set_key(std::string key) { key_ = std::move(key); }

  std::string doSpellingSuggestion(const std::string& phrase);
  std::vector<std::uint8_t> doGetCachedPage(const std::string& url);
  GoogleSearchResult doGoogleSearch(const std::string& q,
                                    std::int32_t start = 0,
                                    std::int32_t max_results = 10,
                                    bool filter = false,
                                    const std::string& restrict = "",
                                    bool safe_search = false,
                                    const std::string& lr = "",
                                    const std::string& ie = "latin1",
                                    const std::string& oe = "latin1");

  cache::CachingServiceClient& middleware() noexcept { return client_; }

 private:
  std::string key_ = "demo-license-key-0000000000";
  cache::CachingServiceClient client_;
};

}  // namespace wsc::services::google
