#include "services/quotes/service.hpp"

#include <cmath>

#include "reflect/builder.hpp"
#include "reflect/object.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace wsc::services::quotes {

using reflect::Object;
using reflect::type_of;

void ensure_quote_types() {
  static const bool done = [] {
    reflect::StructBuilder<Quote>("Quote")
        .field("symbol", &Quote::symbol)
        .field("last", &Quote::last)
        .field("change", &Quote::change)
        .field("volume", &Quote::volume)
        .field("quoteAgeSeconds", &Quote::quoteAgeSeconds)
        .serializable()
        .cloneable()
        .register_type();
    reflect::StructBuilder<QuoteBatch>("QuoteBatch")
        .field("quotes", &QuoteBatch::quotes)
        .serializable()
        .cloneable()
        .register_type();
    return true;
  }();
  (void)done;
}

std::shared_ptr<const wsdl::ServiceDescription> quotes_description() {
  static const std::shared_ptr<const wsdl::ServiceDescription> desc = [] {
    ensure_quote_types();
    auto d = std::make_shared<wsdl::ServiceDescription>("StockQuoteService",
                                                        "urn:StockQuote");
    const auto& str = type_of<std::string>();

    wsdl::OperationInfo one;
    one.name = "GetQuote";
    one.params = {{"symbol", &str}};
    one.result_type = &type_of<Quote>();
    d->add_operation(std::move(one));

    wsdl::OperationInfo many;
    many.name = "GetQuotes";
    many.params = {{"symbols", &str}};
    many.result_type = &type_of<QuoteBatch>();
    d->add_operation(std::move(many));
    return d;
  }();
  return desc;
}

cache::CachePolicy default_quotes_policy(std::chrono::milliseconds ttl) {
  cache::CachePolicy policy;
  policy.cacheable("GetQuote", ttl);
  policy.cacheable("GetQuotes", ttl);
  return policy;
}

Quote QuoteBackend::quote(const std::string& symbol) const {
  // A deterministic random walk: base price from the symbol, drift from
  // the tick counter.
  std::uint64_t base = util::fnv1a(symbol);
  std::uint64_t t = ticks();
  double price = 10.0 + static_cast<double>(base % 49000) / 100.0;
  double drift = std::sin(static_cast<double>((base >> 8) + t) * 0.7) *
                 price * 0.01;
  Quote q;
  q.symbol = symbol;
  q.last = price + drift;
  q.change = drift;
  q.volume = static_cast<std::int64_t>(1000 + (base ^ t * 0x9E37) % 5'000'000);
  q.quoteAgeSeconds = static_cast<std::int32_t>(t % 60);
  return q;
}

QuoteBatch QuoteBackend::quotes(const std::string& symbols_csv) const {
  QuoteBatch batch;
  for (const std::string& raw : util::split(symbols_csv, ',')) {
    std::string symbol(util::trim(raw));
    if (!symbol.empty()) batch.quotes.push_back(quote(symbol));
  }
  return batch;
}

std::shared_ptr<soap::SoapService> make_quotes_service(
    std::shared_ptr<QuoteBackend> backend) {
  auto service = std::make_shared<soap::SoapService>(*quotes_description());
  service->bind("GetQuote", [backend](const std::vector<soap::Parameter>& p) {
    return Object::make(backend->quote(p.at(0).value.as<std::string>()));
  });
  service->bind("GetQuotes", [backend](const std::vector<soap::Parameter>& p) {
    return Object::make(backend->quotes(p.at(0).value.as<std::string>()));
  });
  return service;
}

}  // namespace wsc::services::quotes
