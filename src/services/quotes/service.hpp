// Dummy stock-quote Web service — the first backend the paper's intro
// names for the portal scenario ("several backend services, such as stock
// quote services, search services, and news services").
//
// Quotes are the textbook case for SHORT TTLs (§3.2: "the TTL should be
// short enough to avoid consistency problems, which is dependent on the
// service's semantics"): prices move, so default_quotes_policy() uses
// seconds where Google search used an hour.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/policy.hpp"
#include "reflect/type_info.hpp"
#include "soap/dispatcher.hpp"
#include "wsdl/description.hpp"

namespace wsc::services::quotes {

struct Quote {
  std::string symbol;
  double last = 0.0;
  double change = 0.0;
  std::int64_t volume = 0;
  std::int32_t quoteAgeSeconds = 0;

  bool operator==(const Quote&) const = default;
};

struct QuoteBatch {
  std::vector<Quote> quotes;

  bool operator==(const QuoteBatch&) const = default;
};

/// Register the quote types (idempotent).
void ensure_quote_types();

/// Contract: GetQuote(symbol) -> Quote; GetQuotes(symbols csv) -> QuoteBatch.
std::shared_ptr<const wsdl::ServiceDescription> quotes_description();

/// Both operations cacheable with a short TTL (default 5 s).
cache::CachePolicy default_quotes_policy(
    std::chrono::milliseconds ttl = std::chrono::seconds(5));

class QuoteBackend {
 public:
  Quote quote(const std::string& symbol) const;
  QuoteBatch quotes(const std::string& symbols_csv) const;

  /// Advance simulated market time: prices drift deterministically.
  void tick() { tick_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t ticks() const { return tick_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> tick_{0};
};

std::shared_ptr<soap::SoapService> make_quotes_service(
    std::shared_ptr<QuoteBackend> backend);

}  // namespace wsc::services::quotes
