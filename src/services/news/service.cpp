#include "services/news/service.hpp"

#include "reflect/builder.hpp"
#include "reflect/object.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace wsc::services::news {

using reflect::Object;
using reflect::type_of;

void ensure_news_types() {
  static const bool done = [] {
    reflect::StructBuilder<Headline>("Headline")
        .field("title", &Headline::title)
        .field("source", &Headline::source)
        .field("url", &Headline::url)
        .field("ageMinutes", &Headline::ageMinutes)
        .serializable()
        .cloneable()
        .register_type();
    reflect::StructBuilder<NewsFeed>("NewsFeed")
        .field("topic", &NewsFeed::topic)
        .field("headlines", &NewsFeed::headlines)
        .serializable()
        .cloneable()
        .register_type();
    return true;
  }();
  (void)done;
}

std::shared_ptr<const wsdl::ServiceDescription> news_description() {
  static const std::shared_ptr<const wsdl::ServiceDescription> desc = [] {
    ensure_news_types();
    auto d =
        std::make_shared<wsdl::ServiceDescription>("NewsService", "urn:News");
    wsdl::OperationInfo op;
    op.name = "TopHeadlines";
    op.params = {{"topic", &type_of<std::string>()},
                 {"count", &type_of<std::int32_t>()}};
    op.result_type = &type_of<NewsFeed>();
    d->add_operation(std::move(op));
    return d;
  }();
  return desc;
}

cache::CachePolicy default_news_policy(std::chrono::milliseconds ttl) {
  cache::CachePolicy policy;
  policy.cacheable("TopHeadlines", ttl);
  return policy;
}

NewsFeed NewsBackend::top_headlines(const std::string& topic,
                                    std::int32_t count) const {
  util::Rng rng(util::fnv1a(topic) ^ edition());
  NewsFeed feed;
  feed.topic = topic;
  if (count < 0) count = 0;
  if (count > 50) count = 50;
  feed.headlines.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    Headline h;
    h.title = rng.next_sentence(6) + " — " + topic;
    h.source = rng.next_word(4, 10) + " wire";
    h.url = "http://news." + rng.next_word(4, 8) + ".com/" +
            rng.next_word(6, 12);
    h.ageMinutes = static_cast<std::int32_t>(rng.next_below(600));
    feed.headlines.push_back(std::move(h));
  }
  return feed;
}

std::shared_ptr<soap::SoapService> make_news_service(
    std::shared_ptr<NewsBackend> backend) {
  auto service = std::make_shared<soap::SoapService>(*news_description());
  service->bind("TopHeadlines", [backend](const std::vector<soap::Parameter>& p) {
    return Object::make(backend->top_headlines(
        p.at(0).value.as<std::string>(), p.at(1).value.as<std::int32_t>()));
  });
  return service;
}

}  // namespace wsc::services::news
