// Dummy news Web service — the third backend of the paper's intro portal
// ("stock quote services, search services, and news services").
//
// Headlines change slowly; default_news_policy() uses a minutes-scale TTL
// between the quote service's seconds and Google's hour, illustrating
// per-service TTL configuration by the client administrator (§3.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/policy.hpp"
#include "soap/dispatcher.hpp"
#include "wsdl/description.hpp"

namespace wsc::services::news {

struct Headline {
  std::string title;
  std::string source;
  std::string url;
  std::int32_t ageMinutes = 0;

  bool operator==(const Headline&) const = default;
};

struct NewsFeed {
  std::string topic;
  std::vector<Headline> headlines;

  bool operator==(const NewsFeed&) const = default;
};

/// Register the news types (idempotent).
void ensure_news_types();

/// Contract: TopHeadlines(topic, count) -> NewsFeed.
std::shared_ptr<const wsdl::ServiceDescription> news_description();

/// Cacheable with a minutes-scale TTL (default 5 min).
cache::CachePolicy default_news_policy(
    std::chrono::milliseconds ttl = std::chrono::minutes(5));

class NewsBackend {
 public:
  NewsFeed top_headlines(const std::string& topic, std::int32_t count) const;

  /// Publish a new edition: feeds change.
  void publish() { edition_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t edition() const { return edition_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> edition_{0};
};

std::shared_ptr<soap::SoapService> make_news_service(
    std::shared_ptr<NewsBackend> backend);

}  // namespace wsc::services::news
