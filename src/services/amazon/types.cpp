#include "services/amazon/types.hpp"

#include "reflect/builder.hpp"

namespace wsc::services::amazon {

namespace {

bool register_all() {
  using reflect::StructBuilder;

  StructBuilder<ProductSummary>("ProductSummary")
      .field("asin", &ProductSummary::asin)
      .field("title", &ProductSummary::title)
      .field("manufacturer", &ProductSummary::manufacturer)
      .field("listPrice", &ProductSummary::listPrice)
      .field("salesRank", &ProductSummary::salesRank)
      .serializable()
      .cloneable()
      .register_type();

  StructBuilder<AmazonSearchResult>("AmazonSearchResult")
      .field("totalResults", &AmazonSearchResult::totalResults)
      .field("products", &AmazonSearchResult::products)
      .serializable()
      .cloneable()
      .register_type();

  StructBuilder<CartItem>("CartItem")
      .field("asin", &CartItem::asin)
      .field("quantity", &CartItem::quantity)
      .field("unitPrice", &CartItem::unitPrice)
      .serializable()
      .cloneable()
      .register_type();

  StructBuilder<ShoppingCart>("ShoppingCart")
      .field("cartId", &ShoppingCart::cartId)
      .field("items", &ShoppingCart::items)
      .field("subtotal", &ShoppingCart::subtotal)
      .serializable()
      .cloneable()
      .register_type();

  StructBuilder<TransactionDetails>("TransactionDetails")
      .field("transactionId", &TransactionDetails::transactionId)
      .field("status", &TransactionDetails::status)
      .field("total", &TransactionDetails::total)
      .serializable()
      .cloneable()
      .register_type();

  return true;
}

}  // namespace

void ensure_amazon_types() {
  static const bool done = register_all();
  (void)done;
}

}  // namespace wsc::services::amazon
