#include "services/amazon/service.hpp"

#include "reflect/object.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"

namespace wsc::services::amazon {

using reflect::Object;
using reflect::type_of;

const std::vector<std::string>& search_operations() {
  static const std::vector<std::string> ops = {
      "KeywordSearch",     "TextStreamSearch",    "PowerSearch",
      "BrowseNodeSearch",  "AsinSearch",          "BlendedSearch",
      "UpcSearch",         "SkuSearch",           "AuthorSearch",
      "ArtistSearch",      "ActorSearch",         "ManufacturerSearch",
      "DirectorSearch",    "ListManiaSearch",     "WishlistSearch",
      "ExchangeSearch",    "MarketplaceSearch",   "SellerProfileSearch",
      "SellerSearch",      "SimilaritySearch"};
  return ops;
}

const std::vector<std::string>& cart_operations() {
  static const std::vector<std::string> ops = {
      "GetShoppingCart",        "ClearShoppingCart",
      "AddShoppingCartItems",   "RemoveShoppingCartItems",
      "ModifyShoppingCartItems", "GetTransactionDetails"};
  return ops;
}

std::shared_ptr<const wsdl::ServiceDescription> amazon_description() {
  static const std::shared_ptr<const wsdl::ServiceDescription> desc = [] {
    ensure_amazon_types();
    auto d = std::make_shared<wsdl::ServiceDescription>(
        "AmazonSearchService", "urn:PI/DevCentral/SoapAPI");
    const auto& str = type_of<std::string>();
    const auto& i32 = type_of<std::int32_t>();

    for (const std::string& name : search_operations()) {
      wsdl::OperationInfo op;
      op.name = name;
      op.params = {{"key", &str}, {"query", &str}, {"page", &i32}};
      op.result_type = &type_of<AmazonSearchResult>();
      d->add_operation(std::move(op));
    }

    auto cart_op = [&](const std::string& name,
                       std::vector<wsdl::ParamSpec> params,
                       const reflect::TypeInfo& result) {
      wsdl::OperationInfo op;
      op.name = name;
      op.params = std::move(params);
      op.result_type = &result;
      d->add_operation(std::move(op));
    };
    const auto& cart = type_of<ShoppingCart>();
    cart_op("GetShoppingCart", {{"cartId", &str}}, cart);
    cart_op("ClearShoppingCart", {{"cartId", &str}}, cart);
    cart_op("AddShoppingCartItems",
            {{"cartId", &str}, {"asin", &str}, {"quantity", &i32}}, cart);
    cart_op("RemoveShoppingCartItems", {{"cartId", &str}, {"asin", &str}}, cart);
    cart_op("ModifyShoppingCartItems",
            {{"cartId", &str}, {"asin", &str}, {"quantity", &i32}}, cart);
    cart_op("GetTransactionDetails", {{"transactionId", &str}},
            type_of<TransactionDetails>());
    return d;
  }();
  return desc;
}

cache::CachePolicy default_amazon_policy(std::chrono::milliseconds ttl) {
  cache::CachePolicy policy;
  for (const std::string& op : search_operations()) policy.cacheable(op, ttl);
  for (const std::string& op : cart_operations()) policy.uncacheable(op);
  return policy;
}

AmazonSearchResult AmazonBackend::search(const std::string& operation,
                                         const std::string& query,
                                         std::int32_t page) const {
  util::Rng rng(util::fnv1a(operation) ^ util::fnv1a(query) ^
                static_cast<std::uint64_t>(page));
  AmazonSearchResult result;
  result.totalResults = static_cast<std::int32_t>(10 + rng.next_below(100'000));
  int n = static_cast<int>(3 + rng.next_below(8));
  result.products.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ProductSummary p;
    p.asin = "B" + std::to_string(100000000 + rng.next_below(900000000));
    p.title = rng.next_sentence(5);
    p.manufacturer = rng.next_word(4, 12);
    p.listPrice = 5.0 + rng.next_double() * 200.0;
    p.salesRank = static_cast<std::int32_t>(1 + rng.next_below(1'000'000));
    result.products.push_back(std::move(p));
  }
  return result;
}

double AmazonBackend::price_of(const std::string& asin) {
  return 5.0 + static_cast<double>(util::fnv1a(asin) % 20000) / 100.0;
}

void AmazonBackend::recompute_subtotal(ShoppingCart& cart) {
  cart.subtotal = 0.0;
  for (const CartItem& item : cart.items)
    cart.subtotal += item.unitPrice * item.quantity;
}

ShoppingCart AmazonBackend::get_cart(const std::string& cart_id) const {
  std::lock_guard lock(mu_);
  auto it = carts_.find(cart_id);
  if (it != carts_.end()) return it->second;
  ShoppingCart empty;
  empty.cartId = cart_id;
  return empty;
}

ShoppingCart AmazonBackend::clear_cart(const std::string& cart_id) {
  std::lock_guard lock(mu_);
  ShoppingCart& cart = carts_[cart_id];
  cart.cartId = cart_id;
  cart.items.clear();
  cart.subtotal = 0.0;
  return cart;
}

ShoppingCart AmazonBackend::add_items(const std::string& cart_id,
                                      const std::string& asin,
                                      std::int32_t quantity) {
  std::lock_guard lock(mu_);
  ShoppingCart& cart = carts_[cart_id];
  cart.cartId = cart_id;
  for (CartItem& item : cart.items) {
    if (item.asin == asin) {
      item.quantity += quantity;
      recompute_subtotal(cart);
      return cart;
    }
  }
  cart.items.push_back({asin, quantity, price_of(asin)});
  recompute_subtotal(cart);
  return cart;
}

ShoppingCart AmazonBackend::remove_items(const std::string& cart_id,
                                         const std::string& asin) {
  std::lock_guard lock(mu_);
  ShoppingCart& cart = carts_[cart_id];
  cart.cartId = cart_id;
  std::erase_if(cart.items, [&](const CartItem& i) { return i.asin == asin; });
  recompute_subtotal(cart);
  return cart;
}

ShoppingCart AmazonBackend::modify_items(const std::string& cart_id,
                                         const std::string& asin,
                                         std::int32_t quantity) {
  std::lock_guard lock(mu_);
  ShoppingCart& cart = carts_[cart_id];
  cart.cartId = cart_id;
  for (CartItem& item : cart.items) {
    if (item.asin == asin) item.quantity = quantity;
  }
  std::erase_if(cart.items, [](const CartItem& i) { return i.quantity <= 0; });
  recompute_subtotal(cart);
  return cart;
}

TransactionDetails AmazonBackend::transaction_details(
    const std::string& transaction_id) const {
  TransactionDetails d;
  d.transactionId = transaction_id;
  d.status = (util::fnv1a(transaction_id) % 4 == 0) ? "pending" : "shipped";
  d.total = 10.0 + static_cast<double>(util::fnv1a(transaction_id) % 50000) / 100.0;
  return d;
}

namespace {

const std::string& pstr(const std::vector<soap::Parameter>& p, std::size_t i) {
  return p.at(i).value.as<std::string>();
}
std::int32_t pi32(const std::vector<soap::Parameter>& p, std::size_t i) {
  return p.at(i).value.as<std::int32_t>();
}

}  // namespace

std::shared_ptr<soap::SoapService> make_amazon_service(
    std::shared_ptr<AmazonBackend> backend) {
  auto service = std::make_shared<soap::SoapService>(*amazon_description());
  for (const std::string& name : search_operations()) {
    service->bind(name, [backend, name](const std::vector<soap::Parameter>& p) {
      return Object::make(backend->search(name, pstr(p, 1), pi32(p, 2)));
    });
  }
  service->bind("GetShoppingCart", [backend](const auto& p) {
    return Object::make(backend->get_cart(pstr(p, 0)));
  });
  service->bind("ClearShoppingCart", [backend](const auto& p) {
    return Object::make(backend->clear_cart(pstr(p, 0)));
  });
  service->bind("AddShoppingCartItems", [backend](const auto& p) {
    return Object::make(backend->add_items(pstr(p, 0), pstr(p, 1), pi32(p, 2)));
  });
  service->bind("RemoveShoppingCartItems", [backend](const auto& p) {
    return Object::make(backend->remove_items(pstr(p, 0), pstr(p, 1)));
  });
  service->bind("ModifyShoppingCartItems", [backend](const auto& p) {
    return Object::make(backend->modify_items(pstr(p, 0), pstr(p, 1), pi32(p, 2)));
  });
  service->bind("GetTransactionDetails", [backend](const auto& p) {
    return Object::make(backend->transaction_details(pstr(p, 0)));
  });
  return service;
}

}  // namespace wsc::services::amazon
