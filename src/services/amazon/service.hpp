// Dummy Amazon Web service: the full Table-1 operation list.
//
// The 20 search operations are pure functions of their query (cacheable);
// the 6 shopping-cart operations read/mutate real server-side state —
// caching them is observably wrong, which the policy tests exploit.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "services/amazon/types.hpp"
#include "soap/dispatcher.hpp"
#include "wsdl/description.hpp"

namespace wsc::services::amazon {

/// All 20 search operation names of Table 1.
const std::vector<std::string>& search_operations();

/// All 6 shopping-cart operation names of Table 1.
const std::vector<std::string>& cart_operations();

/// The service contract: every search op is (key, query, page) ->
/// AmazonSearchResult; cart ops manage ShoppingCart state.
std::shared_ptr<const wsdl::ServiceDescription> amazon_description();

/// The paper's "possible cache policy configuration for Amazon Web
/// services": 20 search operations cacheable, 6 cart operations not.
cache::CachePolicy default_amazon_policy(
    std::chrono::milliseconds ttl = std::chrono::minutes(10));

class AmazonBackend {
 public:
  AmazonSearchResult search(const std::string& operation,
                            const std::string& query, std::int32_t page) const;

  ShoppingCart get_cart(const std::string& cart_id) const;
  ShoppingCart clear_cart(const std::string& cart_id);
  ShoppingCart add_items(const std::string& cart_id, const std::string& asin,
                         std::int32_t quantity);
  ShoppingCart remove_items(const std::string& cart_id, const std::string& asin);
  ShoppingCart modify_items(const std::string& cart_id, const std::string& asin,
                            std::int32_t quantity);
  TransactionDetails transaction_details(const std::string& transaction_id) const;

 private:
  static double price_of(const std::string& asin);
  static void recompute_subtotal(ShoppingCart& cart);

  mutable std::mutex mu_;
  std::map<std::string, ShoppingCart> carts_;
};

std::shared_ptr<soap::SoapService> make_amazon_service(
    std::shared_ptr<AmazonBackend> backend);

}  // namespace wsc::services::amazon
