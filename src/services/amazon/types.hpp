// Amazon Web services (2004) data types, WSDL-compiler style.
//
// Used by the Table-1 cache-policy demonstration: search results flow
// through the cache, shopping-cart state must not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "reflect/type_info.hpp"

namespace wsc::services::amazon {

struct ProductSummary {
  std::string asin;
  std::string title;
  std::string manufacturer;
  double listPrice = 0.0;
  std::int32_t salesRank = 0;

  bool operator==(const ProductSummary&) const = default;
};

struct AmazonSearchResult {
  std::int32_t totalResults = 0;
  std::vector<ProductSummary> products;

  bool operator==(const AmazonSearchResult&) const = default;
};

struct CartItem {
  std::string asin;
  std::int32_t quantity = 0;
  double unitPrice = 0.0;

  bool operator==(const CartItem&) const = default;
};

struct ShoppingCart {
  std::string cartId;
  std::vector<CartItem> items;
  double subtotal = 0.0;

  bool operator==(const ShoppingCart&) const = default;
};

struct TransactionDetails {
  std::string transactionId;
  std::string status;
  double total = 0.0;

  bool operator==(const TransactionDetails&) const = default;
};

/// Register all Amazon types (idempotent, thread-safe).
void ensure_amazon_types();

}  // namespace wsc::services::amazon
