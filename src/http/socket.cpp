#include "http/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace wsc::http {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

timeval to_timeval(std::chrono::milliseconds t) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(t.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((t.count() % 1000) * 1000);
  return tv;
}

void set_fd_nonblocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  ::fcntl(fd, F_SETFL, on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}
}  // namespace

std::size_t raise_fd_soft_limit() noexcept {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < lim.rlim_max) {
    rlimit raised = lim;
    raised.rlim_cur = raised.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds timeout) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr = loopback(port);
  if (host != "localhost" && host != "127.0.0.1") {
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw TransportError("connect: unsupported host '" + host +
                               "' (IPv4 literals and localhost only)",
                           /*retryable=*/false);
    }
  }
  const std::string peer = host + ":" + std::to_string(port);
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout.count() > 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (timeout.count() > 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      if (ready == 0) {
        ::close(fd);
        throw TimeoutError("connect to " + peer + " timed out after " +
                           std::to_string(timeout.count()) + "ms");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (ready < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        if (err != 0) errno = err;
        int saved = errno;
        ::close(fd);
        errno = saved;
        fail("connect to " + peer);
      }
    } else {
      int saved = errno;
      ::close(fd);
      errno = saved;
      fail("connect to " + peer);
    }
  }
  if (timeout.count() > 0) ::fcntl(fd, F_SETFL, flags);  // back to blocking
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

TcpStream TcpStream::connect_begin(const std::string& host, std::uint16_t port,
                                   bool& in_progress) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr = loopback(port);
  if (host != "localhost" && host != "127.0.0.1") {
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw TransportError("connect: unsupported host '" + host +
                               "' (IPv4 literals and localhost only)",
                           /*retryable=*/false);
    }
  }
  set_fd_nonblocking(fd, true);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  in_progress = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINPROGRESS) {
      in_progress = true;
    } else {
      int saved = errno;
      ::close(fd);
      errno = saved;
      fail("connect to " + host + ":" + std::to_string(port));
    }
  }
  return TcpStream(fd);
}

void TcpStream::set_nonblocking(bool on) {
  if (valid()) set_fd_nonblocking(fd_, on);
}

int TcpStream::pending_error() noexcept {
  if (!valid()) return EBADF;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

IoResult TcpStream::try_read(char* buf, std::size_t buf_len) {
  if (!valid()) throw TransportError("read on closed socket");
  IoResult r;
  for (;;) {
    ssize_t n = ::recv(fd_, buf, buf_len, 0);
    if (n > 0) {
      r.bytes = static_cast<std::size_t>(n);
      return r;
    }
    if (n == 0) {
      r.closed = true;
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.would_block = true;
      return r;
    }
    if (errno == ECONNRESET) {
      r.closed = true;
      return r;
    }
    fail("recv");
  }
}

IoResult TcpStream::try_write(std::string_view data) {
  if (!valid()) throw TransportError("write on closed socket");
  IoResult r;
  while (r.bytes < data.size()) {
    ssize_t n = ::send(fd_, data.data() + r.bytes, data.size() - r.bytes,
                       MSG_NOSIGNAL);
    if (n > 0) {
      r.bytes += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      r.would_block = true;
      return r;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      r.closed = true;
      return r;
    }
    fail("send");
  }
  return r;
}

void TcpStream::set_read_timeout(std::chrono::milliseconds timeout) {
  if (!valid()) return;
  timeval tv = to_timeval(timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void TcpStream::set_write_timeout(std::chrono::milliseconds timeout) {
  if (!valid()) return;
  timeval tv = to_timeval(timeout);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void TcpStream::write_all(std::string_view data) {
  if (!valid()) throw TransportError("write on closed socket");
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TimeoutError("send timed out (write deadline expired)");
      fail("send");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::size_t TcpStream::read_some(char* buf, std::size_t buf_len) {
  if (!valid()) throw TransportError("read on closed socket");
  for (;;) {
    ssize_t n = ::recv(fd_, buf, buf_len, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw TimeoutError("recv timed out (read deadline expired)");
    fail("recv");
  }
}

void TcpStream::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

int TcpStream::release() noexcept { return std::exchange(fd_, -1); }

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("bind 127.0.0.1:" + std::to_string(port));
  }
  // Deep backlog: the load harness opens thousands of connections in
  // bursts; the kernel clamps to net.core.somaxconn.
  if (::listen(fd_, 4096) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { shutdown(); }

TcpStream TcpListener::accept() {
  for (;;) {
    int listener = fd_.load(std::memory_order_acquire);
    if (listener < 0) return TcpStream();  // shut down
    int client = ::accept(listener, nullptr, nullptr);
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(client);
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) return TcpStream();  // shut down
    fail("accept");
  }
}

TcpListener::AcceptResult TcpListener::try_accept(TcpStream& out) {
  for (;;) {
    int listener = fd_.load(std::memory_order_acquire);
    if (listener < 0) return AcceptResult::Closed;
    int client = ::accept(listener, nullptr, nullptr);
    if (client >= 0) {
      int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      set_fd_nonblocking(client, true);
      out = TcpStream(client);
      return AcceptResult::Accepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return AcceptResult::WouldBlock;
    if (errno == EBADF || errno == EINVAL) return AcceptResult::Closed;
    // Per-connection failures (ECONNABORTED, EMFILE under pressure...):
    // skip this connection attempt rather than killing the acceptor.
    return AcceptResult::WouldBlock;
  }
}

void TcpListener::set_nonblocking(bool on) {
  int listener = fd_.load(std::memory_order_acquire);
  if (listener >= 0) set_fd_nonblocking(listener, on);
}

void TcpListener::shutdown() noexcept {
  // Claim the fd atomically so a concurrent accept() never observes a
  // half-closed descriptor; ::shutdown() then wakes any blocked accept.
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace wsc::http
