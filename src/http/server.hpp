// Threaded HTTP/1.1 server with keep-alive — the Tomcat stand-in.
//
// An acceptor thread hands each connection to a worker thread that serves
// requests until the peer disconnects.  `Handler` is invoked once per
// request; exceptions map to 500 responses so a buggy service cannot wedge
// a connection.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "http/message.hpp"
#include "http/socket.hpp"

namespace wsc::http {

using Handler = std::function<Response(const Request&)>;

class HttpServer {
 public:
  /// Binds immediately (port 0 = auto); call start() to begin serving.
  HttpServer(std::uint16_t port, Handler handler);

  /// Stops and joins all threads.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();

  std::uint16_t port() const noexcept { return listener_.port(); }
  std::string base_url() const {
    return "http://127.0.0.1:" + std::to_string(port());
  }

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);
  void register_connection(TcpStream& stream);
  void unregister_connection(TcpStream& stream);

  TcpListener listener_;
  Handler handler_;
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
  // Sockets currently being served; stop() shuts them down so workers
  // blocked in recv() on an idle keep-alive connection wake and exit.
  std::mutex conns_mu_;
  std::set<TcpStream*> active_conns_;
  std::atomic<bool> running_{false};
};

}  // namespace wsc::http
