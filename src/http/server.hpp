// HTTP/1.1 server with keep-alive, in two interchangeable modes:
//
//  * Threaded — the Tomcat stand-in of the paper's portal scenario: an
//    acceptor thread hands each connection to a worker thread that serves
//    requests until the peer disconnects.  Finished worker handles are
//    reaped as the server runs (they used to accumulate forever).
//  * Reactor — a nonblocking epoll event loop owning every accepted
//    socket: per-connection state machines drive the incremental
//    RequestParser, parsed requests dispatch to a bounded worker pool,
//    responses stream back with EPOLLOUT re-arming, idle keep-alive
//    connections are reaped on a deadline, and backpressure comes from
//    accept pacing plus per-connection write-buffer caps.  This is the
//    mode that holds 10k concurrent connections cheaply.
//
// `Handler` is invoked once per request; exceptions map to 500 responses
// so a buggy service cannot wedge a connection.  Hostile inputs (oversized
// headers/bodies, garbage framing) map to 431/413/400 and a dropped
// connection — never a dead process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "http/server_stats.hpp"
#include "http/socket.hpp"

namespace wsc::http {

using Handler = std::function<Response(const Request&)>;

class EpollReactor;  // reactor.hpp

struct ServerOptions {
  enum class Mode { Threaded, Reactor };
  Mode mode = Mode::Threaded;

  /// Per-message size caps (431/413 on violation).
  ParserLimits limits;

  /// Reactor: close keep-alive connections idle longer than this (zero
  /// disables reaping).
  std::chrono::milliseconds idle_timeout{60'000};

  /// Reactor: pause accepting when this many connections are active;
  /// resume below 90% (accept pacing backpressure).
  std::size_t max_connections = 16 * 1024;

  /// Reactor: close a connection whose un-flushed response bytes exceed
  /// this cap (slow or stalled reader).
  std::size_t write_buffer_cap = 4 * 1024 * 1024;

  /// Reactor: handler threads.  0 = 2 x hardware_concurrency (the handler
  /// is synchronous and may block on backend SOAP calls).  SIZE_MAX is
  /// reserved; 1..N gives a fixed pool.  `inline_handlers` = true runs
  /// handlers on the event loop itself (tests, pure-CPU handlers).
  std::size_t worker_threads = 0;
  bool inline_handlers = false;

  /// Reactor: pause accepting while more than this many requests are
  /// queued or running in the worker pool (0 = 64 x worker threads).
  std::size_t max_dispatch_queue = 0;

  /// Reactor: number of event loops (sockets are sharded across them
  /// round-robin; loop 0 owns the listener).
  std::size_t event_loops = 1;
};

class HttpServer {
 public:
  /// Binds immediately (port 0 = auto); call start() to begin serving.
  HttpServer(std::uint16_t port, Handler handler);
  HttpServer(std::uint16_t port, Handler handler, ServerOptions options);

  /// Stops and joins all threads.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();

  std::uint16_t port() const noexcept;
  std::string base_url() const {
    return "http://127.0.0.1:" + std::to_string(port());
  }

  const ServerOptions& options() const noexcept { return options_; }
  const ServerStats& stats() const noexcept { return stats_; }

 private:
  void accept_loop();
  void serve_connection(TcpStream stream, std::uint64_t worker_id);
  void register_connection(TcpStream& stream);
  void unregister_connection(TcpStream& stream);
  void reap_finished_workers();

  ServerOptions options_;
  Handler handler_;
  ServerStats stats_;

  // Reactor mode.
  std::unique_ptr<EpollReactor> reactor_;

  // Threaded mode.
  std::unique_ptr<TcpListener> listener_;
  std::thread acceptor_;
  std::mutex workers_mu_;
  std::unordered_map<std::uint64_t, std::thread> workers_;
  std::vector<std::uint64_t> finished_workers_;  // ready to join
  std::uint64_t next_worker_id_ = 0;
  // Sockets currently being served; stop() shuts them down so workers
  // blocked in recv() on an idle keep-alive connection wake and exit.
  std::mutex conns_mu_;
  std::set<TcpStream*> active_conns_;
  std::atomic<bool> running_{false};
};

}  // namespace wsc::http
