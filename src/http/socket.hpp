// Thin RAII layer over POSIX TCP sockets (loopback usage).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace wsc::http {

/// Result of one nonblocking read/write attempt.
struct IoResult {
  std::size_t bytes = 0;     // transferred this call
  bool would_block = false;  // EAGAIN/EWOULDBLOCK — retry on readiness
  bool closed = false;       // orderly shutdown (read) / EPIPE-class (write)
};

/// Raise the process soft RLIMIT_NOFILE to the hard limit (10k-connection
/// runs need ~2 fds per loopback connection).  Returns the resulting soft
/// limit; never throws.
std::size_t raise_fd_soft_limit() noexcept;

/// Connected stream socket.  Move-only RAII over the fd.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port; throws wsc::TransportError.  With a nonzero
  /// `timeout` the connect is attempted non-blocking and throws
  /// wsc::TimeoutError if the handshake does not complete in time (zero =
  /// block on the OS default, which can be minutes).
  static TcpStream connect(const std::string& host, std::uint16_t port,
                           std::chrono::milliseconds timeout =
                               std::chrono::milliseconds(0));

  /// Begin a nonblocking connect (for event-loop clients): returns a
  /// nonblocking socket with the handshake possibly still in flight
  /// (`in_progress` true — wait for writability, then check
  /// pending_error()).  Throws wsc::TransportError on immediate failure.
  static TcpStream connect_begin(const std::string& host, std::uint16_t port,
                                 bool& in_progress);

  bool valid() const noexcept { return fd_ >= 0; }

  /// O_NONBLOCK on/off; reactor sockets live in nonblocking mode.
  void set_nonblocking(bool on);

  /// Consume and return SO_ERROR (0 = none) — completes a nonblocking
  /// connect after the socket turns writable.
  int pending_error() noexcept;

  /// One nonblocking recv(): never blocks, never throws on EAGAIN/orderly
  /// close (reported via IoResult); throws wsc::TransportError on hard
  /// errors (ECONNRESET...).
  IoResult try_read(char* buf, std::size_t buf_len);

  /// One nonblocking send() of as much of `data` as the kernel accepts.
  /// Connection-gone errors (EPIPE/ECONNRESET) report closed rather than
  /// throwing — on an event loop a vanished peer is routine, not
  /// exceptional.
  IoResult try_write(std::string_view data);

  /// Bound the time a single recv()/send() may block (SO_RCVTIMEO /
  /// SO_SNDTIMEO).  Zero restores fully blocking behaviour.  Once armed,
  /// read_some()/write_all() throw wsc::TimeoutError on expiry instead of
  /// hanging on a stalled peer.
  void set_read_timeout(std::chrono::milliseconds timeout);
  void set_write_timeout(std::chrono::milliseconds timeout);

  /// Write all bytes; throws TransportError on failure.
  void write_all(std::string_view data);

  /// Read up to buf_len bytes; returns 0 on orderly shutdown; throws on
  /// error (wsc::TimeoutError if a read timeout is armed and expires).
  std::size_t read_some(char* buf, std::size_t buf_len);

  void close() noexcept;

  /// Half-close both directions without releasing the fd: unblocks a peer
  /// (or our own thread) sleeping in recv().  Safe to call from another
  /// thread while the owner is blocked on this socket.
  void shutdown_both() noexcept;

  /// Half-close the write side only (lingering close: the peer still gets
  /// our final response before we drain and drop the connection).
  void shutdown_write() noexcept;

  /// Give up ownership of the fd without closing it (mailbox handoff
  /// between event loops); -1 when already closed.
  int release() noexcept;

  /// Raw descriptor (for connection registries); -1 when closed.
  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Bind/listen on loopback; port 0 picks a free port.  Throws
  /// TransportError.
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Accept the next connection.  Returns an invalid stream if the listener
  /// was shut down.  Throws TransportError on other failures.
  TcpStream accept();

  enum class AcceptResult { Accepted, WouldBlock, Closed };

  /// Nonblocking accept for event loops; the listener must be in
  /// nonblocking mode (set_nonblocking(true)).  Per-connection transient
  /// errors (ECONNABORTED...) are treated as WouldBlock.
  AcceptResult try_accept(TcpStream& out);

  /// O_NONBLOCK on the listening socket.
  void set_nonblocking(bool on);

  /// Raw descriptor for epoll registration; -1 after shutdown().
  int fd() const noexcept { return fd_.load(std::memory_order_acquire); }

  /// Unblock pending accept() calls and stop accepting.  Safe to call from
  /// another thread while accept() is blocked (the fd handoff is atomic).
  void shutdown() noexcept;

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace wsc::http
