// Nonblocking epoll reactor behind HttpServer's Reactor mode.
//
// Architecture (DESIGN.md §12):
//
//   accept --pacing--> [event loop 0..N-1] --parsed Request--> worker pool
//        listener           |   ^                                  |
//        (loop 0)           v   | completions (mailbox + eventfd)  |
//                      connection FSM  <----------------------------
//
// Each accepted socket belongs to exactly one event loop; all of its
// state (parser, buffers, idle-list links) is touched only by that loop's
// thread.  Workers receive the parsed Request by value and hand the
// serialized response bytes back through the loop's mailbox, so no
// socket or epoll call ever happens off-loop.  Backpressure: the listener
// is unregistered from epoll while the active-connection or dispatch-
// queue caps are exceeded (accept pacing — the kernel backlog absorbs the
// burst), and a connection whose un-flushed output exceeds the write cap
// is closed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "http/server.hpp"

namespace wsc::http {

class EpollReactor {
 public:
  EpollReactor(std::uint16_t port, Handler handler, ServerOptions options,
               ServerStats& stats);
  ~EpollReactor();

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  void start();
  void stop();

  std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  struct Conn;
  struct Loop;
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string bytes;
    bool close_after = false;
  };

  void loop_main(Loop& loop);
  void process_mailbox(Loop& loop);
  void accept_batch(Loop& loop);
  void pause_accepting(Loop& loop);
  void maybe_resume_accepting(Loop& loop);
  bool over_pressure() const;

  Conn* find_conn(Loop& loop, std::uint64_t id);
  void add_conn(Loop& loop, TcpStream stream);
  void close_conn(Loop& loop, Conn& conn, bool reaped_idle = false);
  /// All return false when they closed the connection.
  bool handle_readable(Loop& loop, Conn& conn);
  bool on_request(Loop& loop, Conn& conn);
  bool apply_completion(Loop& loop, Conn& conn, std::string bytes,
                        bool close_after);
  bool flush(Loop& loop, Conn& conn);
  bool respond_direct(Loop& loop, Conn& conn, int status,
                      const std::string& body, bool close_after);
  void update_interest(Loop& loop, Conn& conn, bool want_read,
                       bool want_write);

  void idle_touch(Loop& loop, Conn& conn);
  void idle_unlink(Loop& loop, Conn& conn);
  void reap_idle(Loop& loop, std::uint64_t now_ns);

  void post_completion(Loop& loop, Completion completion);
  void wake(Loop& loop);
  /// Runs the handler (500 on throw) and serializes the response.  Called
  /// from worker threads — touches no loop or connection state.
  Completion make_completion(std::uint64_t conn_id, const Request& request,
                             bool keep_alive);

  ServerOptions options_;
  Handler handler_;
  ServerStats& stats_;
  TcpListener listener_;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};   // stop() entered: close after reply
  std::atomic<bool> accept_paused_{false};
  std::atomic<std::uint64_t> next_conn_id_{16};
  std::atomic<std::size_t> next_loop_{0};

  // Bounded handler pool (lazily started; completions flow via mailboxes).
  class WorkerPool;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace wsc::http
