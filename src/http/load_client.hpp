// Epoll-based HTTP load engine: drives thousands of concurrent keep-alive
// connections from ONE thread (the server under test gets the cores).
//
// Two driving disciplines:
//  * closed loop — each connection fires its next request the moment the
//    previous response lands; measures best-case service latency and the
//    saturation throughput of the server.
//  * open loop — requests arrive on a fixed global schedule regardless of
//    how fast the server answers; latency is measured from the SCHEDULED
//    send time, so a stalled server accrues the queueing delay a real
//    client population would see (no coordinated omission).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/histogram.hpp"

namespace wsc::http {

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 1;
  std::string method = "GET";
  std::string target = "/";
  std::string body;

  std::chrono::milliseconds warmup{500};
  std::chrono::milliseconds duration{5'000};

  /// 0 = closed loop; otherwise total requests/second across all
  /// connections, paced on a fixed schedule (open loop).
  double open_rps = 0;

  std::chrono::milliseconds connect_timeout{10'000};
};

struct LoadReport {
  std::uint64_t connected = 0;  // connections that completed the handshake
  std::uint64_t requests = 0;   // responses completed inside the window
  std::uint64_t errors = 0;     // transport failures + non-2xx statuses
  double seconds = 0;           // measured window length
  double rps = 0;

  // Latency percentiles in microseconds (from send — or scheduled send in
  // open loop — to full response parsed).
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;

  util::Histogram latency_ns;

  std::string json() const;
};

/// Run one load scenario to completion.  Throws wsc::Error when the server
/// cannot be reached at all; per-connection failures mid-run only bump
/// `errors`.
LoadReport run_load(const LoadOptions& options);

}  // namespace wsc::http
