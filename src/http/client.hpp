// HTTP/1.1 client with a persistent (keep-alive) connection.
//
// One HttpConnection per (host, port); the transport layer pools them per
// thread so the benchmark's request loop measures processing, not TCP
// handshakes — matching the persistent connections Axis/Tomcat used.
#pragma once

#include <cstdint>
#include <string>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "http/socket.hpp"

namespace wsc::http {

class HttpConnection {
 public:
  HttpConnection(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  /// Send a request and wait for the response.  Reconnects transparently
  /// (once) if the pooled connection has gone stale.  Throws
  /// wsc::TransportError on network failure, wsc::ParseError on protocol
  /// violations.
  Response round_trip(const Request& request);

  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

 private:
  Response try_round_trip(const Request& request);
  void ensure_connected();

  std::string host_;
  std::uint16_t port_;
  TcpStream stream_;
  std::string leftover_;  // pipelined bytes past the previous response
};

}  // namespace wsc::http
