// HTTP/1.1 client with a persistent (keep-alive) connection.
//
// One HttpConnection per (host, port); the transport layer pools them per
// thread so the benchmark's request loop measures processing, not TCP
// handshakes — matching the persistent connections Axis/Tomcat used.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "http/socket.hpp"

namespace wsc::http {

/// Per-connection deadlines.  Zero means "no bound" (block on OS
/// defaults), preserving the historical behaviour; production stacks
/// should always set all three so a stalled origin cannot wedge a caller
/// (ISSUE 3: `read_some` used to block forever).
struct SocketOptions {
  std::chrono::milliseconds connect_timeout{0};
  std::chrono::milliseconds read_timeout{0};
  std::chrono::milliseconds write_timeout{0};
};

class HttpConnection {
 public:
  HttpConnection(std::string host, std::uint16_t port,
                 SocketOptions options = {})
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Send a request and wait for the response.  Reconnects transparently
  /// (once) if the pooled connection has gone stale.  Throws
  /// wsc::TransportError on network failure — always `retryable`, and a
  /// truncated response (peer closed before Content-Length bytes arrived)
  /// is surfaced that way rather than as a hang or a silently short body —
  /// wsc::TimeoutError when a SocketOptions deadline expires, and
  /// wsc::ParseError on protocol violations.
  Response round_trip(const Request& request);

  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }
  const SocketOptions& options() const noexcept { return options_; }

 private:
  Response try_round_trip(const Request& request);
  void ensure_connected();

  std::string host_;
  std::uint16_t port_;
  SocketOptions options_;
  TcpStream stream_;
  std::string leftover_;  // pipelined bytes past the previous response
};

}  // namespace wsc::http
