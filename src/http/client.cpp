#include "http/client.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::http {

void HttpConnection::ensure_connected() {
  if (!stream_.valid()) {
    stream_ = TcpStream::connect(host_, port_);
    leftover_.clear();
  }
}

Response HttpConnection::round_trip(const Request& request) {
  bool was_connected = stream_.valid();
  try {
    ensure_connected();
    return try_round_trip(request);
  } catch (const TransportError&) {
    if (!was_connected) throw;  // fresh connection already failed: real error
    // Stale keep-alive connection (server closed it between requests):
    // reconnect once and retry.
    stream_.close();
    ensure_connected();
    return try_round_trip(request);
  }
}

Response HttpConnection::try_round_trip(const Request& request) {
  stream_.write_all(request.to_bytes());
  ResponseParser parser;
  if (!leftover_.empty()) {
    std::size_t used = parser.feed(leftover_);
    leftover_.erase(0, used);
  }
  char buf[16 * 1024];
  while (!parser.complete()) {
    std::size_t n = stream_.read_some(buf, sizeof(buf));
    if (n == 0) {
      stream_.close();
      throw TransportError("connection closed mid-response");
    }
    std::size_t used = parser.feed(std::string_view(buf, n));
    if (used < n) leftover_.append(buf + used, n - used);
  }
  Response response = parser.take();
  if (auto conn = response.headers.get("Connection");
      conn && util::iequals(*conn, "close")) {
    stream_.close();
  }
  return response;
}

}  // namespace wsc::http
