#include "http/client.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::http {

void HttpConnection::ensure_connected() {
  if (!stream_.valid()) {
    stream_ = TcpStream::connect(host_, port_, options_.connect_timeout);
    if (options_.read_timeout.count() > 0)
      stream_.set_read_timeout(options_.read_timeout);
    if (options_.write_timeout.count() > 0)
      stream_.set_write_timeout(options_.write_timeout);
    leftover_.clear();
  }
}

Response HttpConnection::round_trip(const Request& request) {
  bool was_connected = stream_.valid();
  try {
    ensure_connected();
    return try_round_trip(request);
  } catch (const TimeoutError&) {
    // A deadline expired mid-exchange: the connection state is unknown and
    // the peer is slow, not stale — an immediate replay would just stall
    // again.  Drop the socket and let the retry layer decide.
    stream_.close();
    throw;
  } catch (const TransportError&) {
    if (!was_connected) throw;  // fresh connection already failed: real error
    // Stale keep-alive connection (server closed it between requests):
    // reconnect once and retry.
    stream_.close();
    ensure_connected();
    return try_round_trip(request);
  }
}

Response HttpConnection::try_round_trip(const Request& request) {
  stream_.write_all(request.to_bytes());
  ResponseParser parser;
  if (!leftover_.empty()) {
    std::size_t used = parser.feed(leftover_);
    leftover_.erase(0, used);
  }
  char buf[16 * 1024];
  std::size_t got = 0;
  while (!parser.complete()) {
    std::size_t n = stream_.read_some(buf, sizeof(buf));
    if (n == 0) {
      // The peer closed before delivering the full Content-Length body (or
      // even the head).  Never deliver the short body: surface a retryable
      // transport error so the retry layer can replay the idempotent POST.
      stream_.close();
      throw TransportError(
          "connection closed mid-response (truncated after " +
              std::to_string(got) + " bytes)",
          /*retryable=*/true);
    }
    got += n;
    std::size_t used = parser.feed(std::string_view(buf, n));
    if (used < n) leftover_.append(buf + used, n - used);
  }
  Response response = parser.take();
  if (auto conn = response.headers.get("Connection");
      conn && util::iequals(*conn, "close")) {
    stream_.close();
  }
  return response;
}

}  // namespace wsc::http
