#include "http/load_client.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "http/socket.hpp"
#include "util/error.hpp"

namespace wsc::http {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ClientConn {
  TcpStream stream;
  ResponseParser parser;
  std::string pending;

  enum class State { Connecting, Idle, Sending, Receiving };
  State state = State::Connecting;
  std::size_t out_off = 0;
  std::uint64_t send_ts = 0;  // scheduled ts (open loop) or actual send ts
  std::uint32_t events = 0;
  bool counted_connect = false;
};

class LoadRun {
 public:
  explicit LoadRun(const LoadOptions& options) : options_(options) {
    Request request;
    request.method = options_.method;
    request.target = options_.target;
    request.headers.set("Host", options_.host);
    request.body = options_.body;
    request_bytes_ = request.to_bytes();
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
      throw TransportError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }

  ~LoadRun() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  LoadReport run() {
    conns_.resize(options_.connections);
    for (std::size_t i = 0; i < conns_.size(); ++i) open_conn(i);

    const std::uint64_t start = now_ns();
    measure_from_ = start + static_cast<std::uint64_t>(
                                options_.warmup.count()) *
                                1'000'000ull;
    const std::uint64_t end =
        measure_from_ +
        static_cast<std::uint64_t>(options_.duration.count()) * 1'000'000ull;
    const double interval_ns =
        options_.open_rps > 0 ? 1e9 / options_.open_rps : 0;
    double next_fire = static_cast<double>(start);

    epoll_event events[512];
    while (true) {
      const std::uint64_t now = now_ns();
      if (now >= end) break;
      // Every connection failed before a single handshake completed:
      // nothing is listening, give up instead of idling out the window.
      if (report_.connected == 0 && report_.errors >= options_.connections)
        throw TransportError("load client: server unreachable");

      int wait_ms = 5;
      if (interval_ns > 0) {
        // Release every send whose scheduled instant has passed; measure
        // from that instant so server stalls show up as queueing delay.
        while (static_cast<double>(now) >= next_fire) {
          backlog_.push_back(static_cast<std::uint64_t>(next_fire));
          next_fire += interval_ns;
        }
        drain_backlog();
        const double gap_ms = (next_fire - static_cast<double>(now)) / 1e6;
        wait_ms = gap_ms < 1 ? 0 : (gap_ms < 5 ? static_cast<int>(gap_ms) : 5);
      }

      int n = ::epoll_wait(epoll_fd_, events, 512, wait_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw TransportError(std::string("epoll_wait: ") +
                             std::strerror(errno));
      }
      for (int i = 0; i < n; ++i) {
        const std::size_t idx = static_cast<std::size_t>(events[i].data.u64);
        ClientConn& conn = conns_[idx];
        if (!conn.stream.valid()) continue;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          fail_conn(idx);
          continue;
        }
        if (events[i].events & EPOLLOUT) on_writable(idx);
        if (conn.stream.valid() && (events[i].events & EPOLLIN))
          on_readable(idx);
      }
    }

    const std::uint64_t finished = now_ns();
    report_.seconds =
        static_cast<double>(finished - measure_from_) / 1e9;
    if (report_.seconds > 0)
      report_.rps = static_cast<double>(report_.requests) / report_.seconds;
    auto& h = report_.latency_ns;
    report_.p50_us = static_cast<double>(h.percentile(0.50)) / 1e3;
    report_.p90_us = static_cast<double>(h.percentile(0.90)) / 1e3;
    report_.p99_us = static_cast<double>(h.percentile(0.99)) / 1e3;
    report_.p999_us = static_cast<double>(h.percentile(0.999)) / 1e3;
    report_.max_us = static_cast<double>(h.max()) / 1e3;
    return std::move(report_);
  }

 private:
  void open_conn(std::size_t idx) {
    ClientConn& conn = conns_[idx];
    conn.parser = ResponseParser{};
    conn.parser.set_limits(ParserLimits{});
    conn.pending.clear();
    conn.out_off = 0;
    conn.counted_connect = false;
    try {
      bool in_progress = false;
      conn.stream =
          TcpStream::connect_begin(options_.host, options_.port, in_progress);
    } catch (const Error&) {
      ++report_.errors;
      return;  // retried when another event frees capacity
    }
    conn.state = ClientConn::State::Connecting;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u64 = idx;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.stream.fd(), &ev);
    conn.events = EPOLLOUT;
  }

  void fail_conn(std::size_t idx) {
    ++report_.errors;
    conns_[idx].stream.close();
    open_conn(idx);  // keep the configured concurrency level up
  }

  void set_interest(std::size_t idx, std::uint32_t events) {
    ClientConn& conn = conns_[idx];
    if (conn.events == events) return;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = idx;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.stream.fd(), &ev);
    conn.events = events;
  }

  void begin_request(std::size_t idx, std::uint64_t measured_from) {
    ClientConn& conn = conns_[idx];
    conn.state = ClientConn::State::Sending;
    conn.out_off = 0;
    conn.send_ts = measured_from;
    continue_send(idx);
  }

  void continue_send(std::size_t idx) {
    ClientConn& conn = conns_[idx];
    try {
      IoResult r = conn.stream.try_write(
          std::string_view(request_bytes_).substr(conn.out_off));
      if (r.closed) {
        fail_conn(idx);
        return;
      }
      conn.out_off += r.bytes;
      if (r.would_block || conn.out_off < request_bytes_.size()) {
        set_interest(idx, EPOLLOUT);
        return;
      }
      conn.state = ClientConn::State::Receiving;
      set_interest(idx, EPOLLIN);
    } catch (const Error&) {
      fail_conn(idx);
    }
  }

  void on_writable(std::size_t idx) {
    ClientConn& conn = conns_[idx];
    if (conn.state == ClientConn::State::Connecting) {
      if (conn.stream.pending_error() != 0) {
        fail_conn(idx);
        return;
      }
      conn.counted_connect = true;
      ++report_.connected;
      if (options_.open_rps > 0) {
        conn.state = ClientConn::State::Idle;
        set_interest(idx, 0);
        drain_backlog();
      } else {
        begin_request(idx, now_ns());
      }
      return;
    }
    if (conn.state == ClientConn::State::Sending) continue_send(idx);
  }

  void on_readable(std::size_t idx) {
    ClientConn& conn = conns_[idx];
    char buf[16 * 1024];
    try {
      for (;;) {
        IoResult r = conn.stream.try_read(buf, sizeof(buf));
        if (r.would_block) return;
        if (r.closed) {
          fail_conn(idx);
          return;
        }
        std::size_t used = conn.parser.feed(std::string_view(buf, r.bytes));
        if (used < r.bytes) conn.pending.append(buf + used, r.bytes - used);
        if (conn.parser.complete()) {
          on_response(idx);
          if (!conn.stream.valid()) return;
        }
      }
    } catch (const Error&) {
      fail_conn(idx);
    }
  }

  void on_response(std::size_t idx) {
    ClientConn& conn = conns_[idx];
    Response response = conn.parser.take();
    const std::uint64_t now = now_ns();
    if (response.status >= 200 && response.status < 300) {
      if (now >= measure_from_) {
        ++report_.requests;
        report_.latency_ns.record(now - conn.send_ts);
      }
    } else {
      ++report_.errors;
    }
    if (auto hdr = response.headers.get("Connection");
        hdr && *hdr == "close") {
      conn.stream.close();
      open_conn(idx);
      return;
    }
    conn.pending.clear();  // one request in flight: nothing pipelined
    if (options_.open_rps > 0) {
      conn.state = ClientConn::State::Idle;
      set_interest(idx, 0);
      drain_backlog();
    } else {
      begin_request(idx, now);
    }
  }

  void drain_backlog() {
    if (backlog_.empty()) return;
    for (std::size_t idx = 0; idx < conns_.size() && !backlog_.empty();
         ++idx) {
      ClientConn& conn = conns_[idx];
      if (!conn.stream.valid() || conn.state != ClientConn::State::Idle)
        continue;
      const std::uint64_t scheduled = backlog_.front();
      backlog_.pop_front();
      begin_request(idx, scheduled);
    }
  }

  const LoadOptions& options_;
  std::string request_bytes_;
  int epoll_fd_ = -1;
  std::vector<ClientConn> conns_;
  std::deque<std::uint64_t> backlog_;  // open loop: due-but-unsent instants
  std::uint64_t measure_from_ = 0;
  LoadReport report_;
};

}  // namespace

std::string LoadReport::json() const {
  std::string out = "{";
  auto num = [&out](const char* key, double v, bool last = false) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    out += std::string("\"") + key + "\": " + buf + (last ? "" : ", ");
  };
  out += "\"connected\": " + std::to_string(connected) + ", ";
  out += "\"requests\": " + std::to_string(requests) + ", ";
  out += "\"errors\": " + std::to_string(errors) + ", ";
  num("seconds", seconds);
  num("rps", rps);
  num("p50_us", p50_us);
  num("p90_us", p90_us);
  num("p99_us", p99_us);
  num("p999_us", p999_us);
  num("max_us", max_us, /*last=*/true);
  out += "}";
  return out;
}

LoadReport run_load(const LoadOptions& options) {
  raise_fd_soft_limit();
  LoadRun run(options);
  return run.run();
}

}  // namespace wsc::http
