#include "http/parser.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::http {

namespace detail {

std::size_t MessageAssembler::feed(std::string_view data) {
  std::size_t consumed = 0;
  if (state_ == State::Head) {
    // Accumulate until the blank line; search with overlap for split CRLF.
    std::size_t scan_from = head_buf_.size() >= 3 ? head_buf_.size() - 3 : 0;
    head_buf_.append(data);
    consumed = data.size();
    auto end = head_buf_.find("\r\n\r\n", scan_from);
    if (end == std::string::npos) {
      if (head_buf_.size() > limits_.max_head_bytes)
        throw HeaderLimitError("HTTP: header section too large (" +
                               std::to_string(head_buf_.size()) + " > " +
                               std::to_string(limits_.max_head_bytes) + ")");
      return consumed;
    }
    if (end > limits_.max_head_bytes)
      throw HeaderLimitError("HTTP: header section too large (" +
                             std::to_string(end) + " > " +
                             std::to_string(limits_.max_head_bytes) + ")");
    // Bytes past the head belong to the body (or the next message).
    std::string rest = head_buf_.substr(end + 4);
    head_buf_.resize(end);
    parse_head(head_buf_);
    state_ = body_expected_ == 0 ? State::Done : State::Body;
    if (!rest.empty()) {
      std::size_t used = 0;
      if (state_ == State::Body) {
        used = std::min(rest.size(), body_expected_ - body().size());
        body().append(rest.substr(0, used));
        if (body().size() == body_expected_) state_ = State::Done;
      }
      // Unconsumed overflow was counted in `consumed` above; give it back.
      consumed -= rest.size() - used;
    }
    return consumed;
  }
  if (state_ == State::Body) {
    std::size_t need = body_expected_ - body().size();
    std::size_t used = std::min(need, data.size());
    body().append(data.substr(0, used));
    if (body().size() == body_expected_) state_ = State::Done;
    return used;
  }
  return 0;  // Done: caller should take() and reset
}

void MessageAssembler::parse_head(std::string_view head) {
  auto line_end = head.find("\r\n");
  std::string_view start_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  on_start_line(start_line);

  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{} : head.substr(line_end + 2);
  while (!rest.empty()) {
    auto eol = rest.find("\r\n");
    std::string_view line = eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    if (line.empty()) continue;
    auto colon = line.find(':');
    if (colon == std::string_view::npos)
      throw ParseError("HTTP: malformed header line '" + std::string(line) + "'");
    headers().add(std::string(util::trim(line.substr(0, colon))),
                  std::string(util::trim(line.substr(colon + 1))));
  }

  if (auto te = headers().get("Transfer-Encoding");
      te && !util::iequals(*te, "identity"))
    throw ParseError("HTTP: Transfer-Encoding not supported");
  body_expected_ = 0;
  if (auto cl = headers().get("Content-Length")) {
    std::int64_t n = util::parse_i64(*cl);
    if (n < 0) throw ParseError("HTTP: bad Content-Length");
    if (static_cast<std::size_t>(n) > limits_.max_body_bytes)
      throw BodyLimitError("HTTP: declared body too large (" +
                           std::to_string(n) + " > " +
                           std::to_string(limits_.max_body_bytes) + ")");
    body_expected_ = static_cast<std::size_t>(n);
  }
  // Reserve incrementally-bounded capacity: a hostile peer that declares a
  // large body but never sends it must not make us commit the allocation
  // up front.
  body().reserve(std::min<std::size_t>(body_expected_, 1 << 20));
}

void MessageAssembler::reset_framing() {
  state_ = State::Head;
  head_buf_.clear();
  body_expected_ = 0;
}

}  // namespace detail

void RequestParser::on_start_line(std::string_view line) {
  auto parts = util::split(line, ' ');
  if (parts.size() != 3)
    throw ParseError("HTTP: malformed request line '" + std::string(line) + "'");
  if (parts[2] != "HTTP/1.1" && parts[2] != "HTTP/1.0")
    throw ParseError("HTTP: unsupported version '" + parts[2] + "'");
  request_.minor_version = parts[2] == "HTTP/1.0" ? 0 : 1;
  request_.method = parts[0];
  request_.target = parts[1];
}

Request RequestParser::take() {
  if (!complete()) throw ParseError("HTTP: take() before message complete");
  Request out = std::move(request_);
  request_ = Request{};
  reset_framing();
  return out;
}

void ResponseParser::on_start_line(std::string_view line) {
  // "HTTP/1.1 200 OK" — the reason phrase may contain spaces or be empty.
  if (!util::starts_with(line, "HTTP/1."))
    throw ParseError("HTTP: malformed status line '" + std::string(line) + "'");
  auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos)
    throw ParseError("HTTP: malformed status line '" + std::string(line) + "'");
  auto sp2 = line.find(' ', sp1 + 1);
  std::string_view code = line.substr(
      sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos : sp2 - sp1 - 1);
  response_.status = util::parse_i32(code);
  response_.reason =
      sp2 == std::string_view::npos ? "" : std::string(line.substr(sp2 + 1));
}

Response ResponseParser::take() {
  if (!complete()) throw ParseError("HTTP: take() before message complete");
  Response out = std::move(response_);
  response_ = Response{};
  reset_framing();
  return out;
}

}  // namespace wsc::http
