// Connection-layer telemetry shared by both HttpServer modes (threaded
// and reactor).  Plain relaxed atomics, readable from any thread; the
// portal bridges these into its MetricsRegistry (wsc_server_* families)
// and the /stats document via PortalSite::attach_server().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace wsc::http {

struct ServerStats {
  // Counters (monotonic).
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> idle_reaped{0};       // closed by idle timeout
  std::atomic<std::uint64_t> requests{0};          // fully parsed requests
  std::atomic<std::uint64_t> responses{0};         // responses written
  std::atomic<std::uint64_t> handler_errors{0};    // handler threw -> 500
  std::atomic<std::uint64_t> limit_rejected{0};    // 431/413 responses
  std::atomic<std::uint64_t> protocol_errors{0};   // parse failures -> drop
  std::atomic<std::uint64_t> accept_pauses{0};     // backpressure engaged
  std::atomic<std::uint64_t> overflow_closed{0};   // write-buffer cap hit
  std::atomic<std::uint64_t> workers_reaped{0};    // finished handles joined
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  // Gauges (current level).
  std::atomic<std::uint64_t> connections_active{0};
  std::atomic<std::uint64_t> connections_idle{0};  // parked keep-alive
  std::atomic<std::uint64_t> dispatch_depth{0};    // handler queue in-flight
  std::atomic<std::uint64_t> worker_threads{0};    // live worker threads

  std::uint64_t get(const std::atomic<std::uint64_t>& c) const {
    return c.load(std::memory_order_relaxed);
  }
};

/// One consistent-enough JSON object for the portal's /stats endpoint.
inline std::string server_stats_json(const ServerStats& s) {
  auto field = [](const char* name, std::uint64_t v) {
    return "\"" + std::string(name) + "\": " + std::to_string(v);
  };
  std::string out = "{";
  out += field("connections_accepted", s.get(s.connections_accepted)) + ", ";
  out += field("connections_active", s.get(s.connections_active)) + ", ";
  out += field("connections_idle", s.get(s.connections_idle)) + ", ";
  out += field("connections_closed", s.get(s.connections_closed)) + ", ";
  out += field("idle_reaped", s.get(s.idle_reaped)) + ", ";
  out += field("requests", s.get(s.requests)) + ", ";
  out += field("responses", s.get(s.responses)) + ", ";
  out += field("handler_errors", s.get(s.handler_errors)) + ", ";
  out += field("limit_rejected", s.get(s.limit_rejected)) + ", ";
  out += field("protocol_errors", s.get(s.protocol_errors)) + ", ";
  out += field("accept_pauses", s.get(s.accept_pauses)) + ", ";
  out += field("overflow_closed", s.get(s.overflow_closed)) + ", ";
  out += field("workers_reaped", s.get(s.workers_reaped)) + ", ";
  out += field("worker_threads", s.get(s.worker_threads)) + ", ";
  out += field("dispatch_depth", s.get(s.dispatch_depth)) + ", ";
  out += field("bytes_in", s.get(s.bytes_in)) + ", ";
  out += field("bytes_out", s.get(s.bytes_out));
  out += "}";
  return out;
}

}  // namespace wsc::http
