#include "http/message.hpp"

#include "util/strings.hpp"

namespace wsc::http {

void Headers::set(std::string name, std::string value) {
  for (auto& [n, v] : items_) {
    if (util::iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  items_.emplace_back(std::move(name), std::move(value));
}

void Headers::add(std::string name, std::string value) {
  items_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : items_) {
    if (util::iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

namespace {

void append_headers(std::string& out, const Headers& headers,
                    std::size_t body_size, bool has_content_length) {
  for (const auto& [n, v] : headers.all()) out += n + ": " + v + "\r\n";
  if (!has_content_length)
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  out += "\r\n";
}

}  // namespace

std::string Request::to_bytes() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  append_headers(out, headers, body.size(), headers.contains("Content-Length"));
  out += body;
  return out;
}

std::string Response::to_bytes() const {
  std::string phrase = reason.empty() ? std::string(reason_phrase(status)) : reason;
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + phrase + "\r\n";
  append_headers(out, headers, body.size(), headers.contains("Content-Length"));
  out += body;
  return out;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool request_keep_alive(const Request& request) {
  auto conn = request.headers.get("Connection");
  if (request.minor_version == 0)
    return conn && util::iequals(*conn, "keep-alive");
  return !(conn && util::iequals(*conn, "close"));
}

}  // namespace wsc::http
