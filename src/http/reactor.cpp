#include "http/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/events.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace wsc::http {

namespace {

// epoll user-data ids below this range are reserved for the listener and
// the wakeup eventfd; connection ids start above it.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr int kAcceptBatch = 256;
constexpr int kEpollWaitMs = 25;
constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::uint64_t kDrainDeadlineNs = 500'000'000;  // lingering close

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// All fields except the mailbox are owned by the loop's own thread.
struct EpollReactor::Conn {
  std::uint64_t id = 0;
  TcpStream stream;
  RequestParser parser;
  std::string pending;  // bytes past the current message (pipelining)
  std::string outbuf;
  std::size_t out_off = 0;

  enum class State { Reading, Dispatched, Writing, Draining };
  State state = State::Reading;
  bool close_after_write = false;
  bool drain_before_close = false;  // lingering close for 4xx rejections
  std::uint32_t events = 0;         // currently armed epoll interest

  // Intrusive idle list (oldest deadline at head).
  std::uint64_t idle_deadline_ns = 0;
  Conn* idle_prev = nullptr;
  Conn* idle_next = nullptr;
  bool in_idle = false;
};

struct EpollReactor::Loop {
  std::size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  Conn* idle_head = nullptr;
  Conn* idle_tail = nullptr;

  // Mailbox: the only cross-thread surface (workers and sibling loops).
  std::mutex mail_mu;
  std::vector<int> incoming_fds;
  std::vector<Completion> completions;
};

class EpollReactor::WorkerPool {
 public:
  explicit WorkerPool(std::size_t n) : pool(n) {}
  util::ThreadPool pool;
};

EpollReactor::EpollReactor(std::uint16_t port, Handler handler,
                           ServerOptions options, ServerStats& stats)
    : options_(std::move(options)),
      handler_(std::move(handler)),
      stats_(stats),
      listener_(port) {
  if (options_.event_loops == 0) options_.event_loops = 1;
  if (options_.worker_threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    options_.worker_threads = 2 * (hw ? hw : 2);
  }
  if (options_.max_dispatch_queue == 0)
    options_.max_dispatch_queue = 64 * options_.worker_threads;
}

EpollReactor::~EpollReactor() { stop(); }

void EpollReactor::start() {
  if (running_.exchange(true)) return;
  stopping_.store(false);
  listener_.set_nonblocking(true);
  if (!options_.inline_handlers)
    pool_ = std::make_unique<WorkerPool>(options_.worker_threads);
  stats_.worker_threads.store(options_.inline_handlers
                                  ? 0
                                  : options_.worker_threads,
                              std::memory_order_relaxed);
  for (std::size_t i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0)
      throw TransportError(std::string("reactor setup: ") +
                           std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeId;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerId;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &lev);
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_)
    loop->thread = std::thread([this, l = loop.get()] { loop_main(*l); });
}

void EpollReactor::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Phase 1: no new connections or dispatches; requests parsed from here
  // on are answered with Connection: close.
  stopping_.store(true, std::memory_order_release);
  listener_.shutdown();
  // Phase 2: drain in-flight handlers while the loops still run, so their
  // responses reach the wire.
  if (pool_) pool_->pool.shutdown();
  // Phase 3: bring the loops down; they close every remaining connection.
  running_.store(false, std::memory_order_release);
  for (auto& loop : loops_) wake(*loop);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
    loop->epoll_fd = loop->wake_fd = -1;
  }
  loops_.clear();
  pool_.reset();
  stats_.worker_threads.store(0, std::memory_order_relaxed);
  stats_.dispatch_depth.store(0, std::memory_order_relaxed);
}

void EpollReactor::loop_main(Loop& loop) {
  epoll_event events[256];
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(loop.epoll_fd, events, 256, kEpollWaitMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      util::log(util::LogLevel::Warn, "epoll_wait failed: ",
                std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        accept_batch(loop);
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t drain = 0;
        while (::read(loop.wake_fd, &drain, sizeof(drain)) > 0) {
        }
        process_mailbox(loop);
        continue;
      }
      Conn* conn = find_conn(loop, id);
      if (!conn) continue;  // closed earlier this batch
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(loop, *conn);
        continue;
      }
      bool alive = true;
      if ((events[i].events & EPOLLOUT) && conn->state == Conn::State::Writing)
        alive = flush(loop, *conn);
      if (alive && (events[i].events & EPOLLIN)) {
        // flush() may have re-entered Reading with pipelined bytes already
        // handled; handle_readable is a no-op for non-reading states.
        conn = find_conn(loop, id);
        if (conn) handle_readable(loop, *conn);
      }
    }
    process_mailbox(loop);
    reap_idle(loop, now_ns());
    if (loop.index == 0) maybe_resume_accepting(loop);
  }
  // Shutdown: close every connection this loop still owns.
  for (auto& [id, conn] : loop.conns) {
    idle_unlink(loop, *conn);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  }
  loop.conns.clear();
}

void EpollReactor::process_mailbox(Loop& loop) {
  std::vector<int> fds;
  std::vector<Completion> completions;
  {
    std::lock_guard lock(loop.mail_mu);
    fds.swap(loop.incoming_fds);
    completions.swap(loop.completions);
  }
  for (int fd : fds) add_conn(loop, TcpStream(fd));
  for (Completion& c : completions) {
    stats_.dispatch_depth.fetch_sub(1, std::memory_order_relaxed);
    Conn* conn = find_conn(loop, c.conn_id);
    if (!conn) continue;  // connection died while the handler ran
    if (apply_completion(loop, *conn, std::move(c.bytes), c.close_after)) {
      // Fully flushed and back to Reading: consume pipelined bytes.
      Conn* again = find_conn(loop, c.conn_id);
      if (again && again->state == Conn::State::Reading)
        handle_readable(loop, *again);
    }
  }
}

void EpollReactor::accept_batch(Loop& loop) {
  for (int i = 0; i < kAcceptBatch; ++i) {
    if (accept_paused_.load(std::memory_order_relaxed)) return;
    if (over_pressure()) {
      pause_accepting(loop);
      return;
    }
    TcpStream stream;
    switch (listener_.try_accept(stream)) {
      case TcpListener::AcceptResult::WouldBlock:
        return;
      case TcpListener::AcceptResult::Closed:
        return;
      case TcpListener::AcceptResult::Accepted:
        break;
    }
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    if (target == loop.index) {
      add_conn(loop, std::move(stream));
    } else {
      Loop& other = *loops_[target];
      {
        std::lock_guard lock(other.mail_mu);
        other.incoming_fds.push_back(stream.release());
      }
      wake(other);
    }
  }
}

bool EpollReactor::over_pressure() const {
  if (stats_.connections_active.load(std::memory_order_relaxed) >=
      options_.max_connections)
    return true;
  return stats_.dispatch_depth.load(std::memory_order_relaxed) >
         options_.max_dispatch_queue;
}

void EpollReactor::pause_accepting(Loop& loop) {
  if (accept_paused_.exchange(true)) return;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listener_.fd(), nullptr);
  stats_.accept_pauses.fetch_add(1, std::memory_order_relaxed);
  obs::event_log().emit(
      obs::EventKind::AcceptPause, "http.server",
      "accept paused (backpressure)",
      stats_.connections_active.load(std::memory_order_relaxed));
}

void EpollReactor::maybe_resume_accepting(Loop& loop) {
  if (!accept_paused_.load(std::memory_order_relaxed)) return;
  const std::uint64_t active =
      stats_.connections_active.load(std::memory_order_relaxed);
  if (active >= options_.max_connections * 9 / 10) return;
  if (stats_.dispatch_depth.load(std::memory_order_relaxed) >
      options_.max_dispatch_queue / 2)
    return;
  int fd = listener_.fd();
  if (fd < 0) return;  // shut down
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.u64 = kListenerId;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &lev) == 0)
    accept_paused_.store(false, std::memory_order_relaxed);
}

EpollReactor::Conn* EpollReactor::find_conn(Loop& loop, std::uint64_t id) {
  auto it = loop.conns.find(id);
  return it == loop.conns.end() ? nullptr : it->second.get();
}

void EpollReactor::add_conn(Loop& loop, TcpStream stream) {
  auto conn = std::make_unique<Conn>();
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->stream = std::move(stream);
  conn->parser.set_limits(options_.limits);
  Conn* raw = conn.get();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = raw->id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, raw->stream.fd(), &ev) != 0) {
    return;  // fd is closed by the TcpStream destructor
  }
  raw->events = EPOLLIN;
  loop.conns.emplace(raw->id, std::move(conn));
  stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
  idle_touch(loop, *raw);
}

void EpollReactor::close_conn(Loop& loop, Conn& conn, bool reaped_idle) {
  idle_unlink(loop, conn);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  if (reaped_idle) stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
  // close() removes the fd from every epoll set automatically.
  loop.conns.erase(conn.id);
}

void EpollReactor::update_interest(Loop& loop, Conn& conn, bool want_read,
                                   bool want_write) {
  const std::uint32_t events =
      (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  if (events == conn.events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.id;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.stream.fd(), &ev);
  conn.events = events;
}

bool EpollReactor::handle_readable(Loop& loop, Conn& conn) {
  char buf[kReadChunk];
  try {
    for (;;) {
      if (conn.state == Conn::State::Draining) {
        // Lingering close: discard input until the peer finishes or the
        // drain deadline reaps us.
        for (;;) {
          IoResult r = conn.stream.try_read(buf, sizeof(buf));
          if (r.would_block) return true;
          if (r.closed) {
            close_conn(loop, conn);
            return false;
          }
        }
      }
      if (conn.state != Conn::State::Reading) return true;
      if (!conn.pending.empty() && !conn.parser.complete()) {
        std::size_t used = conn.parser.feed(conn.pending);
        conn.pending.erase(0, used);
        if (conn.parser.complete()) {
          if (!on_request(loop, conn)) return false;
          continue;
        }
      }
      IoResult r = conn.stream.try_read(buf, sizeof(buf));
      if (r.would_block) {
        idle_touch(loop, conn);
        return true;
      }
      if (r.closed) {
        close_conn(loop, conn);
        return false;
      }
      stats_.bytes_in.fetch_add(r.bytes, std::memory_order_relaxed);
      std::size_t used = conn.parser.feed(std::string_view(buf, r.bytes));
      if (used < r.bytes) conn.pending.append(buf + used, r.bytes - used);
      if (conn.parser.complete()) {
        if (!on_request(loop, conn)) return false;
      }
    }
  } catch (const HeaderLimitError&) {
    stats_.limit_rejected.fetch_add(1, std::memory_order_relaxed);
    return respond_direct(loop, conn, 431, "request header fields too large",
                          /*close_after=*/true);
  } catch (const BodyLimitError&) {
    stats_.limit_rejected.fetch_add(1, std::memory_order_relaxed);
    return respond_direct(loop, conn, 413, "request body too large",
                          /*close_after=*/true);
  } catch (const ParseError& e) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Debug, "protocol error: ", e.what());
    return respond_direct(loop, conn, 400, "malformed request",
                          /*close_after=*/true);
  } catch (const std::exception& e) {
    // bad_alloc / length_error from hostile inputs: drop the connection,
    // never the process.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Warn, "connection error: ", e.what());
    close_conn(loop, conn);
    return false;
  } catch (...) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    close_conn(loop, conn);
    return false;
  }
}

bool EpollReactor::on_request(Loop& loop, Conn& conn) {
  Request request = conn.parser.take();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  bool keep = request_keep_alive(request);
  if (stopping_.load(std::memory_order_acquire)) keep = false;
  conn.state = Conn::State::Dispatched;
  idle_unlink(loop, conn);
  update_interest(loop, conn, /*want_read=*/false, /*want_write=*/false);
  stats_.dispatch_depth.fetch_add(1, std::memory_order_relaxed);
  if (!pool_) {
    Completion c = make_completion(conn.id, request, keep);
    stats_.dispatch_depth.fetch_sub(1, std::memory_order_relaxed);
    return apply_completion(loop, conn, std::move(c.bytes), c.close_after);
  }
  try {
    pool_->pool.submit([this, l = &loop, id = conn.id,
                        req = std::move(request), keep] {
      Completion c = make_completion(id, req, keep);
      post_completion(*l, std::move(c));
    });
  } catch (const Error&) {
    // Pool already shut down (stop() racing a late request): just close.
    stats_.dispatch_depth.fetch_sub(1, std::memory_order_relaxed);
    close_conn(loop, conn);
    return false;
  }
  return true;
}

EpollReactor::Completion EpollReactor::make_completion(std::uint64_t conn_id,
                                                       const Request& request,
                                                       bool keep_alive) {
  Response response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    stats_.handler_errors.fetch_add(1, std::memory_order_relaxed);
    response = Response{};
    response.status = 500;
    response.headers.set("Content-Type", "text/plain");
    response.body = std::string("internal error: ") + e.what();
  } catch (...) {
    stats_.handler_errors.fetch_add(1, std::memory_order_relaxed);
    response = Response{};
    response.status = 500;
    response.headers.set("Content-Type", "text/plain");
    response.body = "internal error";
  }
  // Echo the keep-alive decision so HTTP/1.0 clients know we honoured
  // (or declined) persistence.
  response.headers.set("Connection", keep_alive ? "keep-alive" : "close");
  Completion c;
  c.conn_id = conn_id;
  c.bytes = response.to_bytes();
  c.close_after = !keep_alive;
  return c;
}

void EpollReactor::post_completion(Loop& loop, Completion completion) {
  {
    std::lock_guard lock(loop.mail_mu);
    loop.completions.push_back(std::move(completion));
  }
  wake(loop);
}

void EpollReactor::wake(Loop& loop) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
}

bool EpollReactor::apply_completion(Loop& loop, Conn& conn, std::string bytes,
                                    bool close_after) {
  const std::size_t queued = conn.outbuf.size() - conn.out_off;
  if (queued + bytes.size() > options_.write_buffer_cap) {
    stats_.overflow_closed.fetch_add(1, std::memory_order_relaxed);
    close_conn(loop, conn);
    return false;
  }
  if (conn.outbuf.empty()) {
    conn.outbuf = std::move(bytes);
  } else {
    conn.outbuf.append(bytes);
  }
  conn.close_after_write = close_after || conn.close_after_write;
  conn.state = Conn::State::Writing;
  stats_.responses.fetch_add(1, std::memory_order_relaxed);
  return flush(loop, conn);
}

bool EpollReactor::flush(Loop& loop, Conn& conn) {
  IoResult r = conn.stream.try_write(
      std::string_view(conn.outbuf).substr(conn.out_off));
  stats_.bytes_out.fetch_add(r.bytes, std::memory_order_relaxed);
  conn.out_off += r.bytes;
  if (r.closed) {
    close_conn(loop, conn);
    return false;
  }
  if (r.would_block) {
    conn.state = Conn::State::Writing;
    update_interest(loop, conn, /*want_read=*/false, /*want_write=*/true);
    idle_touch(loop, conn);
    return true;
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  if (conn.close_after_write) {
    if (conn.drain_before_close) {
      conn.stream.shutdown_write();
      conn.state = Conn::State::Draining;
      update_interest(loop, conn, /*want_read=*/true, /*want_write=*/false);
      idle_touch(loop, conn);
      return true;
    }
    close_conn(loop, conn);
    return false;
  }
  conn.state = Conn::State::Reading;
  update_interest(loop, conn, /*want_read=*/true, /*want_write=*/false);
  idle_touch(loop, conn);
  return true;
}

bool EpollReactor::respond_direct(Loop& loop, Conn& conn, int status,
                                  const std::string& body, bool close_after) {
  Response response;
  response.status = status;
  response.headers.set("Content-Type", "text/plain");
  response.headers.set("Connection", "close");
  response.body = body;
  conn.pending.clear();
  conn.drain_before_close = true;  // let the rejection reach the peer
  conn.state = Conn::State::Dispatched;  // bypass the Reading no-op check
  return apply_completion(loop, conn, response.to_bytes(), close_after);
}

void EpollReactor::idle_touch(Loop& loop, Conn& conn) {
  const std::uint64_t timeout_ns =
      conn.state == Conn::State::Draining
          ? kDrainDeadlineNs
          : static_cast<std::uint64_t>(options_.idle_timeout.count()) *
                1'000'000ull;
  if (timeout_ns == 0) {
    idle_unlink(loop, conn);
    return;
  }
  idle_unlink(loop, conn);
  conn.idle_deadline_ns = now_ns() + timeout_ns;
  conn.idle_prev = loop.idle_tail;
  conn.idle_next = nullptr;
  if (loop.idle_tail)
    loop.idle_tail->idle_next = &conn;
  else
    loop.idle_head = &conn;
  loop.idle_tail = &conn;
  conn.in_idle = true;
  stats_.connections_idle.fetch_add(1, std::memory_order_relaxed);
}

void EpollReactor::idle_unlink(Loop& loop, Conn& conn) {
  if (!conn.in_idle) return;
  if (conn.idle_prev)
    conn.idle_prev->idle_next = conn.idle_next;
  else
    loop.idle_head = conn.idle_next;
  if (conn.idle_next)
    conn.idle_next->idle_prev = conn.idle_prev;
  else
    loop.idle_tail = conn.idle_prev;
  conn.idle_prev = conn.idle_next = nullptr;
  conn.in_idle = false;
  stats_.connections_idle.fetch_sub(1, std::memory_order_relaxed);
}

void EpollReactor::reap_idle(Loop& loop, std::uint64_t now) {
  std::uint64_t reaped = 0;
  while (loop.idle_head && loop.idle_head->idle_deadline_ns <= now) {
    Conn* conn = loop.idle_head;
    const bool draining = conn->state == Conn::State::Draining;
    close_conn(loop, *conn, /*reaped_idle=*/!draining);
    if (!draining) ++reaped;
  }
  if (reaped > 0)
    obs::event_log().emit(obs::EventKind::IdleReap, "http.server",
                          "idle keep-alive connections reaped", reaped);
}

}  // namespace wsc::http
