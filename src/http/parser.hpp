// Incremental HTTP/1.1 message parser (Content-Length framing).
//
// Feed bytes as they arrive; `complete()` flips once head+body are in.
// Works for requests and responses via two thin wrappers.
#pragma once

#include <optional>
#include <string_view>

#include "http/message.hpp"
#include "util/error.hpp"

namespace wsc::http {

/// Per-message size caps.  A hostile peer can otherwise stream unbounded
/// header bytes or declare a huge Content-Length and balloon memory; the
/// server maps violations to 431 / 413 responses before dropping the
/// connection.
struct ParserLimits {
  std::size_t max_head_bytes = 64 * 1024;
  std::size_t max_body_bytes = 256 * 1024 * 1024;
};

/// Header section exceeded ParserLimits::max_head_bytes (HTTP 431).
class HeaderLimitError : public ParseError {
 public:
  using ParseError::ParseError;
};

/// Declared Content-Length exceeded ParserLimits::max_body_bytes (HTTP 413).
class BodyLimitError : public ParseError {
 public:
  using ParseError::ParseError;
};

namespace detail {

/// Shared framing logic: accumulates the head until CRLFCRLF, parses the
/// start line via a callback, collects headers, then reads a Content-Length
/// body.  Throws wsc::ParseError on protocol violations.
class MessageAssembler {
 public:
  /// Returns the number of bytes consumed from `data`; call again with the
  /// remainder after complete() (pipelined messages).
  std::size_t feed(std::string_view data);
  bool complete() const noexcept { return state_ == State::Done; }

  /// Replace the default size caps (keeps effect across reset_framing()).
  void set_limits(const ParserLimits& limits) { limits_ = limits; }
  const ParserLimits& limits() const noexcept { return limits_; }

 protected:
  virtual ~MessageAssembler() = default;
  virtual void on_start_line(std::string_view line) = 0;
  virtual Headers& headers() = 0;
  virtual std::string& body() = 0;

  void reset_framing();

 private:
  void parse_head(std::string_view head);

  enum class State { Head, Body, Done };
  State state_ = State::Head;
  std::string head_buf_;
  std::size_t body_expected_ = 0;
  ParserLimits limits_;
};

}  // namespace detail

class RequestParser final : public detail::MessageAssembler {
 public:
  /// The parsed request; valid once complete().
  Request take();

 private:
  void on_start_line(std::string_view line) override;
  Headers& headers() override { return request_.headers; }
  std::string& body() override { return request_.body; }

  Request request_;
};

class ResponseParser final : public detail::MessageAssembler {
 public:
  Response take();

 private:
  void on_start_line(std::string_view line) override;
  Headers& headers() override { return response_.headers; }
  std::string& body() override { return response_.body; }

  Response response_;
};

}  // namespace wsc::http
