// HTTP/1.1 message model.
//
// SOAP in 2004 rode almost exclusively on HTTP POST; the paper's portal
// scenario runs Axis inside Tomcat.  This model carries both the SOAP
// traffic (src/transport) and the portal's page responses (src/portal).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wsc::http {

/// Header list preserving insertion order; name matching is
/// case-insensitive per RFC 7230.
class Headers {
 public:
  void set(std::string name, std::string value);      // replace-or-append
  void add(std::string name, std::string value);      // always append
  std::optional<std::string_view> get(std::string_view name) const;
  bool contains(std::string_view name) const { return get(name).has_value(); }
  const std::vector<std::pair<std::string, std::string>>& all() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

struct Request {
  std::string method = "GET";
  std::string target = "/";
  /// 0 for HTTP/1.0, 1 for HTTP/1.1 — keep-alive defaults differ (RFC
  /// 7230 §6.3: 1.0 closes unless the client asked to persist).
  int minor_version = 1;
  Headers headers;
  std::string body;

  /// Serialize head+body with Content-Length framing.
  std::string to_bytes() const;
};

struct Response {
  int status = 200;
  std::string reason;  // empty => standard phrase for status
  Headers headers;
  std::string body;

  std::string to_bytes() const;
};

/// Standard reason phrase ("OK", "Not Modified", ...).
std::string_view reason_phrase(int status);

/// Whether the connection should persist after answering `request`:
/// HTTP/1.1 keep-alives unless the client sent `Connection: close`;
/// HTTP/1.0 closes unless the client sent `Connection: keep-alive`.
bool request_keep_alive(const Request& request);

}  // namespace wsc::http
