#include "http/cache_headers.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::http {

CacheDirectives parse_cache_control(std::string_view value) {
  CacheDirectives out;
  for (const std::string& raw : util::split(value, ',')) {
    std::string_view item = util::trim(raw);
    if (util::iequals(item, "no-store")) {
      out.no_store = true;
    } else if (util::iequals(item, "no-cache")) {
      out.no_cache = true;
    } else if (util::starts_with(util::to_lower(item), "max-age=")) {
      try {
        out.max_age = std::chrono::seconds(util::parse_i64(item.substr(8)));
      } catch (const wsc::Error&) {
        // Malformed max-age: be conservative, treat as uncacheable.
        out.no_cache = true;
      }
    }
    // Unknown directives: ignore.
  }
  return out;
}

CacheDirectives cache_directives(const Response& response) {
  if (auto cc = response.headers.get("Cache-Control"))
    return parse_cache_control(*cc);
  return {};
}

std::string format_cache_control(const CacheDirectives& d) {
  std::string out;
  auto append = [&out](std::string_view item) {
    if (!out.empty()) out += ", ";
    out += item;
  };
  if (d.no_store) append("no-store");
  if (d.no_cache) append("no-cache");
  if (d.max_age) append("max-age=" + std::to_string(d.max_age->count()));
  if (out.empty()) out = "public";
  return out;
}

namespace {
constexpr const char* kDays[] = {"Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"};
constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
}  // namespace

std::string format_http_date(std::chrono::seconds since_epoch) {
  // Simulated civil time on top of a plain second counter (days since
  // 1970-01-01; month arithmetic simplified to 30-day months — both ends of
  // our stack use the same functions, so round-tripping is exact).
  long long total = since_epoch.count();
  long long days = total / 86400;
  long long rem = total % 86400;
  int year = static_cast<int>(1970 + days / 360);
  int month = static_cast<int>((days % 360) / 30);
  int mday = static_cast<int>((days % 360) % 30 + 1);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s, %02d %s %04d %02lld:%02lld:%02lld GMT",
                kDays[days % 7], mday, kMonths[month], year, rem / 3600,
                (rem / 60) % 60, rem % 60);
  return buf;
}

std::optional<std::chrono::seconds> parse_http_date(std::string_view text) {
  char day[4], mon[4];
  int mday, year, h, m, s;
  if (std::sscanf(std::string(text).c_str(), "%3s, %2d %3s %4d %2d:%2d:%2d GMT",
                  day, &mday, mon, &year, &h, &m, &s) != 7)
    return std::nullopt;
  int month = -1;
  for (int i = 0; i < 12; ++i) {
    if (std::string_view(mon) == kMonths[i]) month = i;
  }
  if (month < 0 || mday < 1) return std::nullopt;
  long long days =
      static_cast<long long>(year - 1970) * 360 + month * 30 + (mday - 1);
  return std::chrono::seconds(days * 86400 + h * 3600 + m * 60 + s);
}

}  // namespace wsc::http
