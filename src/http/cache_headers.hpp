// HTTP/1.1 cache-consistency headers (paper section 3.2).
//
// The paper notes that since SOAP usually rides on HTTP, the standard
// Cache-Control / If-Modified-Since machinery "can be applied to our
// response caching in Web services".  This module parses/emits the subset
// needed for that hook: max-age, no-store/no-cache, and 304 revalidation
// timestamps.  The transport layer surfaces a parsed CacheDirectives to the
// cache policy so a server-supplied TTL can override the client
// administrator's configuration.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.hpp"

namespace wsc::http {

struct CacheDirectives {
  bool no_store = false;
  bool no_cache = false;
  std::optional<std::chrono::seconds> max_age;

  /// True if a cache may store the response at all.
  bool cacheable() const noexcept { return !no_store && !no_cache; }
};

/// Parse a Cache-Control header value ("max-age=3600, no-cache" ...).
/// Unknown directives are ignored, as the RFC requires.
CacheDirectives parse_cache_control(std::string_view value);

/// Extract directives from a response's headers; absent header => all
/// defaults (cacheable, no explicit TTL).
CacheDirectives cache_directives(const Response& response);

/// Render directives back to a header value (used by the dummy services to
/// advertise per-operation TTLs).
std::string format_cache_control(const CacheDirectives& d);

/// HTTP-date (RFC 7231 IMF-fixdate) formatting/parsing for
/// If-Modified-Since / Last-Modified, on a simulated epoch counter.
std::string format_http_date(std::chrono::seconds since_epoch);
std::optional<std::chrono::seconds> parse_http_date(std::string_view text);

}  // namespace wsc::http
