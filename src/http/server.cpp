#include "http/server.hpp"

#include "http/parser.hpp"
#include "http/reactor.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace wsc::http {

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : HttpServer(port, std::move(handler), ServerOptions{}) {}

HttpServer::HttpServer(std::uint16_t port, Handler handler,
                       ServerOptions options)
    : options_(options), handler_(std::move(handler)) {
  if (options_.mode == ServerOptions::Mode::Reactor) {
    reactor_ =
        std::make_unique<EpollReactor>(port, handler_, options_, stats_);
  } else {
    listener_ = std::make_unique<TcpListener>(port);
  }
}

HttpServer::~HttpServer() { stop(); }

std::uint16_t HttpServer::port() const noexcept {
  return reactor_ ? reactor_->port() : listener_->port();
}

void HttpServer::start() {
  if (reactor_) {
    reactor_->start();
    return;
  }
  if (running_.exchange(true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (reactor_) {
    reactor_->stop();
    return;
  }
  if (!running_.exchange(false)) return;
  listener_->shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Wake workers parked in recv() on idle keep-alive connections.
    std::lock_guard lock(conns_mu_);
    for (TcpStream* s : active_conns_) s->shutdown_both();
  }
  std::unordered_map<std::uint64_t, std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
    finished_workers_.clear();
  }
  for (auto& [id, w] : workers) {
    if (w.joinable()) w.join();
  }
}

// Join worker threads whose connections already ended.  Called from the
// acceptor between accepts, so handles no longer accumulate for the
// lifetime of the server (they used to: one zombie std::thread per
// connection ever served).
void HttpServer::reap_finished_workers() {
  std::vector<std::thread> done;
  {
    std::lock_guard lock(workers_mu_);
    done.reserve(finished_workers_.size());
    for (std::uint64_t id : finished_workers_) {
      auto it = workers_.find(id);
      if (it == workers_.end()) continue;
      done.push_back(std::move(it->second));
      workers_.erase(it);
    }
    finished_workers_.clear();
  }
  for (auto& w : done) {
    if (w.joinable()) w.join();
    stats_.workers_reaped.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    TcpStream stream;
    try {
      stream = listener_->accept();
    } catch (const TransportError& e) {
      if (!running_) return;
      util::log(util::LogLevel::Warn, "accept failed: ", e.what());
      continue;
    }
    if (!stream.valid()) return;  // listener shut down
    reap_finished_workers();
    std::lock_guard lock(workers_mu_);
    if (!running_) return;
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = next_worker_id_++;
    workers_.emplace(id, std::thread([this, id, s = std::move(stream)]() mutable {
                       serve_connection(std::move(s), id);
                     }));
  }
}

void HttpServer::register_connection(TcpStream& stream) {
  std::lock_guard lock(conns_mu_);
  active_conns_.insert(&stream);
  if (!running_.load(std::memory_order_acquire)) stream.shutdown_both();
}

void HttpServer::unregister_connection(TcpStream& stream) {
  std::lock_guard lock(conns_mu_);
  active_conns_.erase(&stream);
}

namespace {

// Answer a framing/limit rejection and linger briefly so the response
// reaches a peer that is still sending (an immediate close() with unread
// input queued triggers an RST that can destroy the response in flight).
void send_rejection(TcpStream& stream, int status, const std::string& body) {
  Response response;
  response.status = status;
  response.headers.set("Content-Type", "text/plain");
  response.headers.set("Connection", "close");
  response.body = body;
  try {
    stream.write_all(response.to_bytes());
    stream.shutdown_write();
    stream.set_read_timeout(std::chrono::milliseconds(500));
    char sink[4096];
    while (stream.read_some(sink, sizeof(sink)) > 0) {
    }
  } catch (const Error&) {
    // Peer vanished mid-rejection; nothing more to deliver.
  }
}

}  // namespace

void HttpServer::serve_connection(TcpStream stream, std::uint64_t worker_id) {
  register_connection(stream);
  struct Finally {
    HttpServer* server;
    TcpStream* stream;
    std::uint64_t worker_id;
    ~Finally() {
      server->unregister_connection(*stream);
      server->stats_.connections_closed.fetch_add(1,
                                                  std::memory_order_relaxed);
      server->stats_.connections_active.fetch_sub(1,
                                                  std::memory_order_relaxed);
      std::lock_guard lock(server->workers_mu_);
      server->finished_workers_.push_back(worker_id);
    }
  } finally{this, &stream, worker_id};

  RequestParser parser;
  parser.set_limits(options_.limits);
  std::string pending;
  char buf[16 * 1024];
  try {
    while (running_.load(std::memory_order_acquire)) {
      // Drain any pipelined bytes first, then read from the socket.
      while (!parser.complete() && !pending.empty()) {
        std::size_t used = parser.feed(pending);
        pending.erase(0, used);
        if (used == 0) break;
      }
      while (!parser.complete()) {
        std::size_t n = stream.read_some(buf, sizeof(buf));
        if (n == 0) return;  // peer closed between requests
        stats_.bytes_in.fetch_add(n, std::memory_order_relaxed);
        std::size_t used = parser.feed(std::string_view(buf, n));
        if (used < n) pending.append(buf + used, n - used);
      }
      Request request = parser.take();
      stats_.requests.fetch_add(1, std::memory_order_relaxed);
      Response response;
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        stats_.handler_errors.fetch_add(1, std::memory_order_relaxed);
        response.status = 500;
        response.headers.set("Content-Type", "text/plain");
        response.body = std::string("internal error: ") + e.what();
      } catch (...) {
        stats_.handler_errors.fetch_add(1, std::memory_order_relaxed);
        response.status = 500;
        response.headers.set("Content-Type", "text/plain");
        response.body = "internal error";
      }
      // RFC 7230 §6.3: HTTP/1.0 closes unless the client opted into
      // keep-alive; 1.1 persists unless the client asked to close.  Echo
      // the decision so 1.0 clients do not wait on a connection we are
      // about to keep open (or vice versa).
      const bool keep = request_keep_alive(request);
      response.headers.set("Connection", keep ? "keep-alive" : "close");
      const std::string bytes = response.to_bytes();
      stream.write_all(bytes);
      stats_.bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
      stats_.responses.fetch_add(1, std::memory_order_relaxed);
      if (!keep) return;
    }
  } catch (const HeaderLimitError& e) {
    stats_.limit_rejected.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Debug, "header limit: ", e.what());
    send_rejection(stream, 431, "request header fields too large");
  } catch (const BodyLimitError& e) {
    stats_.limit_rejected.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Debug, "body limit: ", e.what());
    send_rejection(stream, 413, "request body too large");
  } catch (const ParseError& e) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Debug, "protocol error: ", e.what());
    send_rejection(stream, 400, "malformed request");
  } catch (const Error& e) {
    // Protocol violation or I/O error: drop the connection, as servers do.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Debug, "connection error: ", e.what());
  } catch (const std::exception& e) {
    // length_error/bad_alloc from hostile inputs must cost one connection,
    // never the process (an uncaught exception on a worker calls
    // std::terminate).
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Warn, "connection failure: ", e.what());
  } catch (...) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    util::log(util::LogLevel::Warn, "connection failure: unknown exception");
  }
}

}  // namespace wsc::http
