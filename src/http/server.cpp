#include "http/server.hpp"

#include "http/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/logging.hpp"

namespace wsc::http {

HttpServer::HttpServer(std::uint16_t port, Handler handler)
    : listener_(port), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.exchange(true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Wake workers parked in recv() on idle keep-alive connections.
    std::lock_guard lock(conns_mu_);
    for (TcpStream* s : active_conns_) s->shutdown_both();
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    TcpStream stream;
    try {
      stream = listener_.accept();
    } catch (const TransportError& e) {
      if (!running_) return;
      util::log(util::LogLevel::Warn, "accept failed: ", e.what());
      continue;
    }
    if (!stream.valid()) return;  // listener shut down
    std::lock_guard lock(workers_mu_);
    if (!running_) return;
    workers_.emplace_back(
        [this, s = std::move(stream)]() mutable { serve_connection(std::move(s)); });
  }
}

void HttpServer::register_connection(TcpStream& stream) {
  std::lock_guard lock(conns_mu_);
  active_conns_.insert(&stream);
  if (!running_.load(std::memory_order_acquire)) stream.shutdown_both();
}

void HttpServer::unregister_connection(TcpStream& stream) {
  std::lock_guard lock(conns_mu_);
  active_conns_.erase(&stream);
}

void HttpServer::serve_connection(TcpStream stream) {
  register_connection(stream);
  struct Unregister {
    HttpServer* server;
    TcpStream* stream;
    ~Unregister() { server->unregister_connection(*stream); }
  } unregister{this, &stream};

  RequestParser parser;
  std::string pending;
  char buf[16 * 1024];
  try {
    while (running_.load(std::memory_order_acquire)) {
      // Drain any pipelined bytes first, then read from the socket.
      while (!parser.complete() && !pending.empty()) {
        std::size_t used = parser.feed(pending);
        pending.erase(0, used);
        if (used == 0) break;
      }
      while (!parser.complete()) {
        std::size_t n = stream.read_some(buf, sizeof(buf));
        if (n == 0) return;  // peer closed between requests
        std::size_t used = parser.feed(std::string_view(buf, n));
        if (used < n) pending.append(buf + used, n - used);
      }
      Request request = parser.take();
      Response response;
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        response.status = 500;
        response.headers.set("Content-Type", "text/plain");
        response.body = std::string("internal error: ") + e.what();
      }
      bool close = false;
      if (auto conn = request.headers.get("Connection");
          conn && util::iequals(*conn, "close"))
        close = true;
      if (close) response.headers.set("Connection", "close");
      stream.write_all(response.to_bytes());
      if (close) return;
    }
  } catch (const Error& e) {
    // Protocol violation or I/O error: drop the connection, as servers do.
    util::log(util::LogLevel::Debug, "connection error: ", e.what());
  }
}

}  // namespace wsc::http
