#include "util/hash.hpp"

// Header-only; this TU exists so the module has a linkable object and the
// constexpr definitions get one home for debug symbols.
namespace wsc::util {}
