// Minimal JSON: an escape helper for the hand-built JSON the admin
// endpoints emit, and a small DOM parser for the consumers of those
// endpoints (the cachetop CLI, endpoint tests) — enough of RFC 8259 for
// machine-generated documents, not a general-purpose library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wsc::util::json {

/// Escape a string for inclusion inside JSON double quotes.
std::string escape(std::string_view s);

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  /// Convenience accessors with defaults for absent/mistyped members.
  double number_or(std::string_view key, double fallback = 0) const {
    const Value* v = find(key);
    return v && v->type == Type::Number ? v->number : fallback;
  }
  std::string string_or(std::string_view key,
                        std::string fallback = "") const {
    const Value* v = find(key);
    return v && v->type == Type::String ? v->string : std::move(fallback);
  }
};

/// Parse one JSON document (trailing garbage rejected).  Throws
/// wsc::ParseError on malformed input or nesting deeper than 64 levels.
Value parse(std::string_view text);

}  // namespace wsc::util::json
