#include "util/clock.hpp"

namespace wsc::util {

const SteadyClock& steady_clock() {
  static const SteadyClock instance;
  return instance;
}

}  // namespace wsc::util
