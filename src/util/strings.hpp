// Small string helpers used across the HTTP, XML and cache layers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsc::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single-character separator; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII case-insensitive equality (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

/// True if `s` starts with / ends with `prefix` / `suffix`.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Format a double the way the SOAP layer emits xsd:double values:
/// shortest representation that round-trips (std::to_chars).
std::string format_double(double v);

/// Append-style formatters: to_chars into a stack buffer, then append to
/// `out` — no temporary string, so a caller reusing `out`'s capacity pays
/// zero heap allocations (the cache-key fast path).  Byte-identical output
/// to std::to_string (integers) / format_double.
void append_i64(std::string& out, std::int64_t v);
void append_double(std::string& out, double v);

/// Strict integer parse; throws wsc::ParseError on garbage or overflow.
std::int64_t parse_i64(std::string_view s);
std::int32_t parse_i32(std::string_view s);
double parse_double(std::string_view s);
bool parse_bool(std::string_view s);  // accepts "true"/"false"/"1"/"0"

}  // namespace wsc::util
