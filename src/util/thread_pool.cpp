#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace wsc::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (stopping_) throw Error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      // Another caller already initiated shutdown; workers may still be
      // joining below, so fall through only if we own the join.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions from tasks are a programming error; let them crash
  }
}

}  // namespace wsc::util
