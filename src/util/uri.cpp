#include "util/uri.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::util {

Uri Uri::parse(std::string_view text) {
  Uri uri;
  auto scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0)
    throw ParseError("URI missing scheme: '" + std::string(text) + "'");
  uri.scheme = to_lower(text.substr(0, scheme_end));
  std::string_view rest = text.substr(scheme_end + 3);

  auto path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  uri.path = path_start == std::string_view::npos
                 ? "/"
                 : std::string(rest.substr(path_start));
  if (authority.empty())
    throw ParseError("URI missing host: '" + std::string(text) + "'");

  auto colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    uri.host = std::string(authority.substr(0, colon));
    std::int64_t port = parse_i64(authority.substr(colon + 1));
    if (port < 1 || port > 65535)
      throw ParseError("URI port out of range: '" + std::string(text) + "'");
    uri.port = static_cast<std::uint16_t>(port);
  } else {
    uri.host = std::string(authority);
  }
  if (uri.host.empty())
    throw ParseError("URI missing host: '" + std::string(text) + "'");
  return uri;
}

std::uint16_t Uri::effective_port() const {
  if (port != 0) return port;
  if (scheme == "http") return 80;
  return 0;
}

std::string Uri::to_string() const {
  std::string s = scheme + "://" + host;
  if (port != 0) s += ":" + std::to_string(port);
  s += path;
  return s;
}

}  // namespace wsc::util
