#include "util/random.hpp"

namespace wsc::util {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Modulo bias is irrelevant for workload synthesis.  bound == 0 is a
  // caller bug but must not SIGFPE; treat it as "no choice".
  if (bound == 0) return 0;
  return next_u64() % bound;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

std::string Rng::next_word(std::size_t min_len, std::size_t max_len) {
  static constexpr char kVowels[] = "aeiou";
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxyz";
  std::size_t len = min_len + next_below(max_len - min_len + 1);
  std::string w;
  w.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (i % 2 == 0)
      w.push_back(kConsonants[next_below(sizeof(kConsonants) - 1)]);
    else
      w.push_back(kVowels[next_below(sizeof(kVowels) - 1)]);
  }
  return w;
}

std::string Rng::next_sentence(std::size_t words) {
  std::string s;
  for (std::size_t i = 0; i < words; ++i) {
    if (i > 0) s.push_back(' ');
    s += next_word(2, 9);
  }
  return s;
}

std::vector<std::uint8_t> Rng::next_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    std::uint64_t v = next_u64();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

}  // namespace wsc::util
