// Deterministic PRNG + text generators for workloads.
//
// The dummy Google service (src/services/google) fabricates search results,
// page snippets and cached pages from the query string; everything is seeded
// so the same query always produces the same response, which the cache tests
// rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wsc::util {

/// SplitMix64: tiny, fast, good enough for workload synthesis, and
/// deterministic across platforms (unlike std::mt19937 + distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  double next_double();  // [0, 1)
  bool next_bool(double p_true = 0.5);

  /// Lowercase pseudo-word of the given length.
  std::string next_word(std::size_t min_len, std::size_t max_len);

  /// Space-separated pseudo-words.
  std::string next_sentence(std::size_t words);

  /// Random bytes block.
  std::vector<std::uint8_t> next_bytes(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace wsc::util
