// Fixed-size thread pool.
//
// Used by the HTTP server (one logical worker per in-flight request, like
// Tomcat's connector pool in the paper's portal scenario) and by the load
// simulator's virtual clients.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsc::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers after draining queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; throws wsc::Error after shutdown() has been called.
  void submit(std::function<void()> task);

  /// Stop accepting tasks, finish what is queued, join workers.  Idempotent.
  void shutdown();

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace wsc::util
