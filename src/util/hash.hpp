// FNV-1a hashing and combination helpers.
//
// Cache keys (core/key) are hashed into the cache table with FNV-1a 64;
// deterministic across runs so benchmark workloads are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace wsc::util {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::span<const std::uint8_t> data,
                           std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// boost-style hash combiner for composing field hashes.
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

}  // namespace wsc::util
