// Latency histogram for the portal load simulator (Figures 3 and 4).
//
// Log-bucketed (HdrHistogram-style, base-2 with linear sub-buckets) so the
// load generator records microsecond latencies with bounded memory and we
// can report mean / p50 / p95 / p99 / max per run.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace wsc::util {

class Histogram {
 public:
  /// `sub_bucket_bits` linear sub-buckets per power-of-two bucket; 5 gives
  /// ~3% relative error, plenty for throughput plots.
  explicit Histogram(int sub_bucket_bits = 5);

  void record(std::uint64_t value);
  void record(std::chrono::nanoseconds d) {
    record(static_cast<std::uint64_t>(d.count() < 0 ? 0 : d.count()));
  }

  /// Merge another histogram (combining per-thread recorders).  count,
  /// sum, min, and max are combined exactly regardless of bucket
  /// resolution; with differing `sub_bucket_bits` the bucket counts are
  /// rebucketed (each source bucket lands at its upper bound, the same
  /// approximation recording into the coarser histogram would make).
  void merge(const Histogram& other);

  int sub_bucket_bits() const noexcept { return sub_bits_; }
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1]; returns an upper bound of the containing
  /// bucket (standard HdrHistogram semantics), clamped to the observed
  /// extremes — percentile(0.0) is the recorded min and percentile(1.0)
  /// the recorded max, never a bucket bound.
  std::uint64_t percentile(double q) const;

  /// One-line human-readable summary with values scaled by `unit_divisor`
  /// (e.g. 1e6 for ns -> ms) and suffixed with `unit`.
  std::string summary(double unit_divisor, const std::string& unit) const;

 private:
  std::size_t bucket_index(std::uint64_t value) const;
  std::uint64_t bucket_upper_bound(std::size_t index) const;

  int sub_bits_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

}  // namespace wsc::util
