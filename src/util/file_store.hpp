// Flat-file blob store: the "hard disk" alternative the paper mentions and
// rejects for its evaluation ("we could store the XML messages and Java
// serialized forms on the hard disk, but disk access is slower than memory
// access").  bench_ablation_diskstore quantifies that sentence.
//
// One file per entry, named by the 64-bit key hash; writes go through a
// temp file + rename so readers never observe torn blobs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace wsc::util {

class FileStore {
 public:
  /// Root directory is created if absent.  Throws wsc::Error on failure.
  explicit FileStore(std::string directory);

  /// Write (or replace) a blob.
  void put(std::uint64_t key, std::span<const std::uint8_t> data);
  void put(std::uint64_t key, std::string_view data);

  /// Read a blob; nullopt if absent.
  std::optional<std::vector<std::uint8_t>> get(std::uint64_t key) const;

  /// Remove a blob; true if it existed.
  bool remove(std::uint64_t key);

  /// Number of stored blobs (directory scan).
  std::size_t count() const;

  /// Remove every blob.
  void clear();

  const std::string& directory() const noexcept { return dir_; }

 private:
  std::string path_for(std::uint64_t key) const;

  std::string dir_;
};

}  // namespace wsc::util
