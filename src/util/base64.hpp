// Base64 codec (RFC 4648).
//
// The Google `doGetCachedPage` operation returns a web page as a byte array
// that travels Base64-encoded inside the SOAP response, so the codec sits on
// the hot path of the "large and simple" workload in Tables 7/9.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wsc::util {

/// Encode bytes as standard Base64 with padding.
std::string base64_encode(std::span<const std::uint8_t> data);
std::string base64_encode(std::string_view data);

/// Decode Base64 text.  Whitespace is skipped (SOAP messages are often
/// pretty-printed).  Throws wsc::ParseError on any other invalid character
/// or a truncated final quantum.
std::vector<std::uint8_t> base64_decode(std::string_view text);

}  // namespace wsc::util
