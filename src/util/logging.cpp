#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace wsc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Off};
std::mutex g_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace wsc::util
