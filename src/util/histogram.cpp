#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace wsc::util {

Histogram::Histogram(int sub_bucket_bits) : sub_bits_(sub_bucket_bits) {
  // 64 power-of-two buckets x 2^sub_bits linear sub-buckets covers the full
  // uint64 range.
  buckets_.assign(static_cast<std::size_t>(64) << sub_bits_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t value) const {
  if (value < (1ULL << sub_bits_)) return static_cast<std::size_t>(value);
  int msb = 63 - std::countl_zero(value);
  int shift = msb - sub_bits_;
  std::uint64_t sub = value >> shift;  // in [2^sub_bits, 2^(sub_bits+1))
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(shift + 1) << sub_bits_) +
      (sub - (1ULL << sub_bits_)));
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t index) const {
  // Inverse of bucket_index: block 0 holds exact values [0, 2^sub_bits);
  // block b>=1 holds values with shift = b-1 applied, i.e. the bucket for
  // (rem + 2^sub_bits) << shift .. ((rem + 2^sub_bits + 1) << shift) - 1.
  std::uint64_t sub_count = 1ULL << sub_bits_;
  if (index < sub_count) return index;
  std::uint64_t block = index >> sub_bits_;   // >= 1
  std::uint64_t shift = block - 1;
  std::uint64_t sub = (index & (sub_count - 1)) + sub_count;
  return ((sub + 1) << shift) - 1;
}

void Histogram::record(std::uint64_t value) {
  std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  ++buckets_[idx];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.sub_bits_ == sub_bits_) {
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      buckets_[i] += other.buckets_[i];
  } else {
    // Different resolutions: translate each non-empty source bucket into
    // this histogram's bucketing via its upper bound.  Only the bucket
    // counts are approximated — the exact aggregates below come from the
    // source's own exact values, never from bucket bounds (re-recording
    // bounds used to corrupt sum/min/max and thus percentile(1.0)).
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      if (other.buckets_[i] == 0) continue;
      std::size_t idx = bucket_index(other.bucket_upper_bound(i));
      if (idx >= buckets_.size()) idx = buckets_.size() - 1;
      buckets_[idx] += other.buckets_[i];
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q >= 1.0) return max_;  // the recorded max, not a bucket upper bound
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Clamp to observed extremes so p0/p100 are exact.
      return std::clamp(bucket_upper_bound(i), min(), max_);
    }
  }
  return max_;
}

std::string Histogram::summary(double unit_divisor, const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f%s p50=%.3f%s p95=%.3f%s p99=%.3f%s max=%.3f%s",
                static_cast<unsigned long long>(count_), mean() / unit_divisor,
                unit.c_str(),
                static_cast<double>(percentile(0.50)) / unit_divisor, unit.c_str(),
                static_cast<double>(percentile(0.95)) / unit_divisor, unit.c_str(),
                static_cast<double>(percentile(0.99)) / unit_divisor, unit.c_str(),
                static_cast<double>(max()) / unit_divisor, unit.c_str());
  return buf;
}

}  // namespace wsc::util
