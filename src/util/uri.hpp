// Minimal URI parser for service endpoint URLs.
//
// Cache keys embed the endpoint URL (section 4.1 of the paper: "generated
// from the endpoint URL, operation name, and all parameter names and
// values"), and the HTTP transport needs host/port/path to connect.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wsc::util {

struct Uri {
  std::string scheme;  // "http", or "inproc" for the in-process transport
  std::string host;
  std::uint16_t port = 0;  // 0 = scheme default (http -> 80)
  std::string path;        // always starts with '/'

  /// Parse "scheme://host[:port][/path]".  Throws wsc::ParseError.
  static Uri parse(std::string_view text);

  /// Effective port after applying scheme defaults.
  std::uint16_t effective_port() const;

  /// Canonical string form.
  std::string to_string() const;

  bool operator==(const Uri&) const = default;
};

}  // namespace wsc::util
