#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

#include "util/error.hpp"

namespace wsc::util {

namespace {
bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_double(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw Error("format_double failed");
  return std::string(buf, ptr);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 32 bytes always suffice for a 64-bit integer
  out.append(buf, ptr);
}

void append_double(std::string& out, double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw Error("append_double failed");
  out.append(buf, ptr);
}

std::int64_t parse_i64(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError("invalid integer: '" + std::string(s) + "'");
  return v;
}

std::int32_t parse_i32(std::string_view s) {
  std::int64_t v = parse_i64(s);
  if (v < INT32_MIN || v > INT32_MAX)
    throw ParseError("integer out of int32 range: " + std::string(s));
  return static_cast<std::int32_t>(v);
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw ParseError("invalid double: '" + std::string(s) + "'");
  return v;
}

bool parse_bool(std::string_view s) {
  s = trim(s);
  if (s == "true" || s == "1") return true;
  if (s == "false" || s == "0") return false;
  throw ParseError("invalid boolean: '" + std::string(s) + "'");
}

}  // namespace wsc::util
