#include "util/file_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace wsc::util {

namespace fs = std::filesystem;

FileStore::FileStore(std::string directory) : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw Error("FileStore: cannot create '" + dir_ + "': " + ec.message());
}

std::string FileStore::path_for(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.blob",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

void FileStore::put(std::uint64_t key, std::span<const std::uint8_t> data) {
  std::string final_path = path_for(key);
  std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("FileStore: cannot write '" + tmp_path + "'");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw Error("FileStore: short write to '" + tmp_path + "'");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) throw Error("FileStore: rename failed: " + ec.message());
}

void FileStore::put(std::uint64_t key, std::string_view data) {
  put(key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::optional<std::vector<std::uint8_t>> FileStore::get(std::uint64_t key) const {
  std::ifstream in(path_for(key), std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw Error("FileStore: short read from '" + path_for(key) + "'");
  return data;
}

bool FileStore::remove(std::uint64_t key) {
  std::error_code ec;
  return fs::remove(path_for(key), ec) && !ec;
}

std::size_t FileStore::count() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".blob") ++n;
  }
  return n;
}

void FileStore::clear() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".blob") fs::remove(entry.path(), ec);
  }
}

}  // namespace wsc::util
