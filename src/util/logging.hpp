// Leveled stderr logger.
//
// Off by default so benchmarks stay quiet; examples flip it to Info to show
// the cache hits/misses as they happen.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace wsc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded before formatting.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

/// Variadic convenience: wsc::util::log(LogLevel::Info, "hit ratio=", r);
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

}  // namespace wsc::util
