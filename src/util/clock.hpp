// Clock abstraction so TTL expiry is testable without sleeping.
//
// The cache core takes a `const Clock&`; production code passes the
// process-wide SteadyClock, tests pass a ManualClock they advance by hand.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace wsc::util {

using Duration = std::chrono::steady_clock::duration;
using TimePoint = std::chrono::steady_clock::time_point;

/// Monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const = 0;
};

/// Real monotonic clock; a process-wide instance is available via
/// `steady_clock()`.
class SteadyClock final : public Clock {
 public:
  TimePoint now() const override { return std::chrono::steady_clock::now(); }
};

/// Deterministic clock for tests: starts at an arbitrary epoch and only
/// moves when `advance()` is called.  Thread safe.
class ManualClock final : public Clock {
 public:
  TimePoint now() const override {
    return TimePoint(Duration(ns_.load(std::memory_order_acquire)));
  }
  void advance(Duration d) {
    ns_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

 private:
  std::atomic<Duration::rep> ns_{1};  // nonzero so TimePoint{} compares older
};

/// Shared process-wide steady clock.
const SteadyClock& steady_clock();

}  // namespace wsc::util
