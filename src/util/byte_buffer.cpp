#include "util/byte_buffer.hpp"

#include <bit>
#include <cstring>

namespace wsc::util {

void ByteWriter::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v));
  write_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) write_u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void ByteWriter::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    write_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  write_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::write_string(std::string_view s) {
  write_varint(s.size());
  append_raw(s);
}

void ByteWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  write_varint(bytes.size());
  append_raw(bytes);
}

void ByteWriter::append_raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::append_raw(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw ParseError("byte buffer underflow: need " + std::to_string(n) +
                         " bytes, have " + std::to_string(remaining()),
                     pos_);
  }
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::read_f64() {
  std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t b = read_u8();
    if (shift >= 64) throw ParseError("varint too long", pos_);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::string ByteReader::read_string() {
  std::uint64_t n = read_varint();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> ByteReader::read_bytes() {
  std::uint64_t n = read_varint();
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace wsc::util
