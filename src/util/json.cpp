#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace wsc::util::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    char c = peek();
    Value v;
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type = Value::Type::String;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.type = Value::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.type = Value::Type::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    Value v;
    v.type = Value::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array(int depth) {
    Value v;
    v.type = Value::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs land as two
          // 3-byte sequences — acceptable for telemetry payloads).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                     c == 'E' || c == '+' || c == '-';
      if (!numeric) break;
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0' || !std::isfinite(value)) fail("bad number");
    Value v;
    v.type = Value::Type::Number;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace wsc::util::json
