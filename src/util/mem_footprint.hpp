// Honest heap-footprint accounting for cache-entry byte budgets (Table 9).
//
// The cache's byte budget and the Table 9 comparison are only meaningful if
// every representation reports what it actually costs the allocator, not
// just payload bytes.  Two effects the naive `capacity()` sum misses:
//
//   * small-string optimisation: an SSO string owns NO heap block, so its
//     capacity() must not be billed a second time (the inline buffer is
//     already inside sizeof(std::string), which the caller counts as part
//     of its struct);
//   * allocation overhead: every heap block pays the allocator's header
//     and size-class rounding on top of the requested bytes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsc::util {

/// Per-heap-block allocator cost: glibc malloc bookkeeping plus typical
/// size-class rounding.  A deliberate flat estimate — the point is to stop
/// pretending heap blocks are free, not to model one allocator exactly.
inline constexpr std::size_t kAllocOverhead = 16;

/// Heap bytes owned by a std::string, excluding sizeof(std::string) itself
/// (the caller counts that as part of the enclosing struct).  SSO strings
/// own no heap block at all.
inline std::size_t string_footprint(const std::string& s) {
  if (s.capacity() <= std::string().capacity()) return 0;  // inline buffer
  return s.capacity() + 1 + kAllocOverhead;  // +1: the NUL the block carries
}

/// Heap bytes owned by a vector's backing array (element payload only;
/// element-owned heap is the caller's to add).
template <typename T>
std::size_t vector_footprint(const std::vector<T>& v) {
  if (v.capacity() == 0) return 0;
  return v.capacity() * sizeof(T) + kAllocOverhead;
}

}  // namespace wsc::util
