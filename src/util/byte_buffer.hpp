// Growable byte buffer with primitive read/write helpers.
//
// This is the wire format engine behind `reflect::BinarySerializer` (the
// stand-in for Java serialization) and the scratch space for the HTTP and
// XML layers.  All multi-byte integers are little-endian; strings and blobs
// are length-prefixed with a varint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace wsc::util {

/// Append-only writer over a std::vector<uint8_t>.
class ByteWriter {
 public:
  ByteWriter() = default;

  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  /// LEB128-style unsigned varint (used for all length prefixes).
  void write_varint(std::uint64_t v);

  /// Varint length prefix followed by raw bytes.
  void write_string(std::string_view s);
  void write_bytes(std::span<const std::uint8_t> bytes);

  void append_raw(std::span<const std::uint8_t> bytes);
  void append_raw(std::string_view s);

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Cursor-based reader over a borrowed byte range.  Throws ParseError on
/// underflow so corrupt cache entries are detected instead of misread.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data(), data.size()) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  double read_f64();
  bool read_bool() { return read_u8() != 0; }
  std::uint64_t read_varint();
  std::string read_string();
  std::vector<std::uint8_t> read_bytes();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace wsc::util
