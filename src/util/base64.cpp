#include "util/base64.hpp"

#include <array>

#include "util/error.hpp"

namespace wsc::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return t;
}

constexpr auto kDecode = make_decode_table();

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                      static_cast<std::uint32_t>(data[i + 1]) << 8 |
                      static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                      static_cast<std::uint32_t>(data[i + 1]) << 8;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string base64_encode(std::string_view data) {
  return base64_encode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

std::vector<std::uint8_t> base64_decode(std::string_view text) {
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  std::uint32_t quantum = 0;
  int bits = 0;
  int pad = 0;
  std::size_t pos = 0;
  for (char c : text) {
    ++pos;
    if (is_space(c)) continue;
    if (c == '=') {
      ++pad;
      if (pad > 2) throw ParseError("base64: too much padding", pos);
      continue;
    }
    if (pad > 0) throw ParseError("base64: data after padding", pos);
    std::int8_t v = kDecode[static_cast<unsigned char>(c)];
    if (v < 0) throw ParseError("base64: invalid character", pos);
    quantum = quantum << 6 | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(quantum >> bits));
    }
  }
  if (bits >= 6) throw ParseError("base64: truncated final quantum", pos);
  return out;
}

}  // namespace wsc::util
