// Exception hierarchy shared by every wscache module.
//
// The paper's middleware relies on *detectable* failure of a representation
// method (e.g. Java serialization throwing NotSerializableException) to fall
// back to a more general one.  We mirror that: each subsystem throws a typed
// subclass of `wsc::Error`, and the cache core catches `SerializationError`
// (and friends) to implement the automatic-detection behaviour of section 6.
#pragma once

#include <stdexcept>
#include <string>

namespace wsc {

/// Root of all wscache exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input while parsing (XML, HTTP, URI...).  Carries an
/// approximate offset into the input for diagnostics.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t offset = 0)
      : Error(what + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// A reflection-driven operation was attempted on a type that does not
/// support it (not serializable, not cloneable, no to_string, unknown
/// field...).  Equivalent of Java's NotSerializableException &co.
class SerializationError : public Error {
 public:
  using Error::Error;
};

/// Reflection metadata problems: duplicate registration, unknown type,
/// field type mismatch.
class ReflectionError : public Error {
 public:
  using Error::Error;
};

/// Transport-level failure (connection refused, short read, timeout).
///
/// `retryable` classifies the failure for the retry layer: transient wire
/// conditions (refused connection, reset, truncated response, timeout)
/// default to true; configuration errors (unsupported scheme, unknown
/// endpoint) are marked false at the throw site — repeating those can
/// never succeed.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what, bool retryable = true)
      : Error(what), retryable_(retryable) {}
  bool retryable() const noexcept { return retryable_; }

 private:
  bool retryable_;
};

/// A socket or per-call deadline elapsed (timed connect, SO_RCVTIMEO /
/// SO_SNDTIMEO, or the RetryingTransport per-call deadline).
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what, bool retryable = true)
      : TransportError(what, retryable) {}
};

/// Fast-fail from an open circuit breaker: the endpoint has been failing
/// consistently and the cooldown has not elapsed.  Never retryable — the
/// point of the breaker is to not touch the wire at all.
class BreakerOpenError : public TransportError {
 public:
  explicit BreakerOpenError(const std::string& what)
      : TransportError(what, /*retryable=*/false) {}
};

/// HTTP protocol violation or unexpected status.
class HttpError : public Error {
 public:
  HttpError(int status, const std::string& what)
      : Error("HTTP " + std::to_string(status) + ": " + what),
        status_(status) {}
  int status() const noexcept { return status_; }

 private:
  int status_;
};

}  // namespace wsc
