#include "wsdl/description.hpp"

#include "util/error.hpp"

namespace wsc::wsdl {

const ParamSpec* OperationInfo::param(std::string_view param_name) const {
  for (const ParamSpec& p : params) {
    if (p.name == param_name) return &p;
  }
  return nullptr;
}

OperationInfo& ServiceDescription::add_operation(OperationInfo op) {
  if (operation(op.name))
    throw Error("service '" + name_ + "': duplicate operation '" + op.name + "'");
  for (const ParamSpec& p : op.params) {
    if (!p.type)
      throw Error("operation '" + op.name + "': parameter '" + p.name +
                  "' has no type");
  }
  operations_.push_back(std::move(op));
  return operations_.back();
}

const OperationInfo* ServiceDescription::operation(std::string_view op_name) const {
  for (const OperationInfo& op : operations_) {
    if (op.name == op_name) return &op;
  }
  return nullptr;
}

const OperationInfo& ServiceDescription::require_operation(
    std::string_view op_name) const {
  const OperationInfo* op = operation(op_name);
  if (!op)
    throw Error("service '" + name_ + "': unknown operation '" +
                std::string(op_name) + "'");
  return *op;
}

}  // namespace wsc::wsdl
