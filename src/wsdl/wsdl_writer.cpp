#include "wsdl/wsdl_writer.hpp"

#include <set>

#include "util/error.hpp"
#include "xml/writer.hpp"

namespace wsc::wsdl {

using reflect::Kind;
using reflect::TypeInfo;

std::string xsd_qname(const TypeInfo& type, const std::string& prefix) {
  switch (type.kind) {
    case Kind::Bool: return "xsd:boolean";
    case Kind::Int32: return "xsd:int";
    case Kind::Int64: return "xsd:long";
    case Kind::Double: return "xsd:double";
    case Kind::String: return "xsd:string";
    case Kind::Bytes: return "xsd:base64Binary";
    case Kind::Struct:
    case Kind::Array: return prefix + ":" + type.name;
  }
  throw ReflectionError("xsd_qname: corrupt kind");
}

namespace {

/// Collect every struct/array type reachable from the service signatures.
void collect_types(const TypeInfo& t, std::set<const TypeInfo*>& out) {
  if (t.is_primitive()) return;
  if (!out.insert(&t).second) return;
  if (t.is_array()) {
    collect_types(*t.element, out);
  } else {
    for (const auto& f : t.fields) collect_types(*f.type, out);
  }
}

void write_complex_type(xml::Writer& w, const TypeInfo& t) {
  if (t.is_array()) {
    // SOAP-encoded array restriction, as Axis emits for rpc/encoded.
    w.start_element("complexType").attribute("name", t.name);
    w.start_element("complexContent");
    w.start_element("restriction").attribute("base", "soapenc:Array");
    w.start_element("attribute")
        .attribute("ref", "soapenc:arrayType")
        .attribute("wsdl:arrayType", xsd_qname(*t.element) + "[]")
        .end_element();
    w.end_element().end_element().end_element();
    return;
  }
  w.start_element("complexType").attribute("name", t.name);
  w.start_element("all");
  for (const auto& f : t.fields) {
    w.start_element("element")
        .attribute("name", f.name)
        .attribute("type", xsd_qname(*f.type))
        .end_element();
  }
  w.end_element().end_element();
}

}  // namespace

std::string to_wsdl_xml(const ServiceDescription& service,
                        const std::string& endpoint_url) {
  const std::string& tns = service.target_namespace();
  xml::Writer w;
  w.start_element("wsdl:definitions")
      .attribute("targetNamespace", tns)
      .attribute("xmlns:wsdl", "http://schemas.xmlsoap.org/wsdl/")
      .attribute("xmlns:soap", "http://schemas.xmlsoap.org/wsdl/soap/")
      .attribute("xmlns:xsd", "http://www.w3.org/2001/XMLSchema")
      .attribute("xmlns:soapenc", "http://schemas.xmlsoap.org/soap/encoding/")
      .attribute("xmlns:tns", tns)
      .attribute("xmlns:typens", tns);

  // <types>
  std::set<const TypeInfo*> complex;
  for (const auto& op : service.operations()) {
    for (const auto& p : op.params) collect_types(*p.type, complex);
    if (op.result_type) collect_types(*op.result_type, complex);
  }
  if (!complex.empty()) {
    w.start_element("wsdl:types");
    w.start_element("xsd:schema").attribute("targetNamespace", tns);
    for (const TypeInfo* t : complex) write_complex_type(w, *t);
    w.end_element().end_element();
  }

  // <message> pairs
  for (const auto& op : service.operations()) {
    w.start_element("wsdl:message").attribute("name", op.name + "Request");
    for (const auto& p : op.params) {
      w.start_element("wsdl:part")
          .attribute("name", p.name)
          .attribute("type", xsd_qname(*p.type))
          .end_element();
    }
    w.end_element();
    w.start_element("wsdl:message").attribute("name", op.name + "Response");
    if (op.result_type) {
      w.start_element("wsdl:part")
          .attribute("name", op.result_name)
          .attribute("type", xsd_qname(*op.result_type))
          .end_element();
    }
    w.end_element();
  }

  // <portType>
  w.start_element("wsdl:portType").attribute("name", service.name() + "Port");
  for (const auto& op : service.operations()) {
    w.start_element("wsdl:operation").attribute("name", op.name);
    w.start_element("wsdl:input")
        .attribute("message", "tns:" + op.name + "Request")
        .end_element();
    w.start_element("wsdl:output")
        .attribute("message", "tns:" + op.name + "Response")
        .end_element();
    w.end_element();
  }
  w.end_element();

  // <binding> rpc/encoded over HTTP, as the 2004 Google WSDL declared.
  w.start_element("wsdl:binding")
      .attribute("name", service.name() + "Binding")
      .attribute("type", "tns:" + service.name() + "Port");
  w.start_element("soap:binding")
      .attribute("style", "rpc")
      .attribute("transport", "http://schemas.xmlsoap.org/soap/http")
      .end_element();
  for (const auto& op : service.operations()) {
    w.start_element("wsdl:operation").attribute("name", op.name);
    w.start_element("soap:operation")
        .attribute("soapAction", tns + "#" + op.name)
        .end_element();
    for (const char* dir : {"wsdl:input", "wsdl:output"}) {
      w.start_element(dir);
      w.start_element("soap:body")
          .attribute("use", "encoded")
          .attribute("namespace", tns)
          .attribute("encodingStyle", "http://schemas.xmlsoap.org/soap/encoding/")
          .end_element();
      w.end_element();
    }
    w.end_element();
  }
  w.end_element();

  // <service>
  w.start_element("wsdl:service").attribute("name", service.name());
  w.start_element("wsdl:port")
      .attribute("name", service.name() + "Port")
      .attribute("binding", "tns:" + service.name() + "Binding");
  w.start_element("soap:address")
      .attribute("location", endpoint_url)
      .end_element();
  w.end_element().end_element();

  w.end_element();  // definitions
  return w.finish();
}

}  // namespace wsc::wsdl
