// Render a ServiceDescription back to a WSDL 1.1 document.
//
// Interoperability is the paper's first design priority: the cache must not
// extend XML/SOAP/WSDL.  Publishing a standard WSDL for our dummy services
// demonstrates that the contract the cache middleware consumes is plain
// WSDL 1.1 (rpc/encoded, like the real Google Web APIs of 2004).
#pragma once

#include <string>

#include "wsdl/description.hpp"

namespace wsc::wsdl {

/// Produce a WSDL 1.1 document (types / messages / portType / binding /
/// service) for a service bound at `endpoint_url`.
std::string to_wsdl_xml(const ServiceDescription& service,
                        const std::string& endpoint_url);

/// XSD QName (e.g. "xsd:string", "typens:GoogleSearchResult") for a
/// registered type, matching the serializer's xsi:type values.
std::string xsd_qname(const reflect::TypeInfo& type,
                      const std::string& type_ns_prefix = "typens");

}  // namespace wsc::wsdl
