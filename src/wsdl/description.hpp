// In-memory service contract: what a WSDL document describes and what the
// Axis WSDL compiler turns into stub metadata.
//
// The paper's middleware knows, per operation, the parameter names/types and
// the result type (from WSDL); the SOAP serializer/deserializer and the
// cache key generators are all driven from this.  We model the compiled
// form directly; `wsdl_writer.hpp` can render it back to WSDL 1.1 XML.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "reflect/type_info.hpp"

namespace wsc::wsdl {

/// One named, typed message part.
struct ParamSpec {
  std::string name;
  const reflect::TypeInfo* type = nullptr;
};

struct OperationInfo {
  std::string name;                               // e.g. "doGoogleSearch"
  std::vector<ParamSpec> params;                  // in order
  std::string result_name = "return";             // response part name
  const reflect::TypeInfo* result_type = nullptr; // nullptr => void

  /// "<name>Response" per SOAP RPC convention.
  std::string response_element() const { return name + "Response"; }

  const ParamSpec* param(std::string_view param_name) const;
};

class ServiceDescription {
 public:
  ServiceDescription(std::string name, std::string target_namespace)
      : name_(std::move(name)), target_namespace_(std::move(target_namespace)) {}

  const std::string& name() const noexcept { return name_; }
  const std::string& target_namespace() const noexcept {
    return target_namespace_;
  }

  /// Add an operation; throws wsc::Error on duplicate names.
  OperationInfo& add_operation(OperationInfo op);

  /// nullptr if unknown.
  const OperationInfo* operation(std::string_view op_name) const;

  /// Throws wsc::Error if unknown.
  const OperationInfo& require_operation(std::string_view op_name) const;

  const std::vector<OperationInfo>& operations() const noexcept {
    return operations_;
  }

 private:
  std::string name_;
  std::string target_namespace_;
  std::vector<OperationInfo> operations_;
};

}  // namespace wsc::wsdl
