// Minimal DOM: element/text tree built from SAX events.
//
// The paper mentions DOM trees as the post-parsing representation when the
// middleware uses a DOM parser (section 3.3).  Axis itself is SAX-based, so
// our cache uses EventSequence on the hot path; the DOM exists as the
// general post-parsing tree (used by tests, tooling, and the HTTP-level
// inspection utilities) and demonstrates the alternative representation.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xml/sax.hpp"

namespace wsc::xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

class Node {
 public:
  enum class Type { Element, Text };

  static NodePtr make_element(QName name, Attributes attrs = {});
  static NodePtr make_text(std::string text);

  Type type() const noexcept { return type_; }
  bool is_element() const noexcept { return type_ == Type::Element; }
  bool is_text() const noexcept { return type_ == Type::Text; }

  // Element accessors (throw wsc::Error if called on text nodes).
  const QName& name() const;
  const Attributes& attributes() const;
  const std::vector<NodePtr>& children() const;
  Node& append_child(NodePtr child);

  /// Attribute value by local name, or empty string if absent.
  std::string_view attribute(std::string_view local) const;

  /// First child element with the given local name, or nullptr.
  const Node* child(std::string_view local) const;

  /// All child elements with the given local name.
  std::vector<const Node*> children_named(std::string_view local) const;

  /// Concatenated descendant text (the "string value" of the element).
  std::string text_content() const;

  // Text accessor.
  const std::string& text() const;
  void append_text(std::string_view more);

  /// Serialize this subtree back to XML (no declaration).
  std::string to_xml() const;

 private:
  explicit Node(Type t) : type_(t) {}

  Type type_;
  QName name_;
  Attributes attrs_;
  std::vector<NodePtr> children_;
  std::string text_;
};

/// Owning document: root element plus storage.
struct Document {
  NodePtr root;
};

/// ContentHandler that assembles a Document.
class DomBuilder final : public ContentHandler {
 public:
  void start_document() override;
  void start_element(const QName& name, const Attributes& attrs) override;
  void end_element(const QName& name) override;
  void characters(std::string_view text) override;

  /// Take the finished document (valid after end of parse).
  Document take();

 private:
  Document doc_;
  std::vector<Node*> stack_;
};

/// Convenience: parse text straight to a Document.
Document parse_document(std::string_view xml_text);

}  // namespace wsc::xml
