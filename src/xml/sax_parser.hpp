// Namespace-aware SAX push parser.
//
// Stand-in for Apache Xerces in the paper's pipeline.  Non-validating,
// UTF-8, supports: prolog, elements, attributes, namespaces (default +
// prefixed, rebinding, undeclaration), character data with the predefined
// entities and numeric character references, CDATA sections, comments,
// processing instructions, and skips a <!DOCTYPE ...> declaration without an
// internal subset.  Well-formedness violations raise wsc::ParseError.
#pragma once

#include <string_view>

#include "xml/sax.hpp"

namespace wsc::xml {

class SaxParser {
 public:
  /// Parse a complete document, delivering events to `handler`.
  void parse(std::string_view document, ContentHandler& handler);
};

/// EventSource adapter over raw XML text: deliver() == parse the text.
class XmlTextSource final : public EventSource {
 public:
  explicit XmlTextSource(std::string text) : text_(std::move(text)) {}
  void deliver(ContentHandler& handler) const override {
    SaxParser{}.parse(text_, handler);
  }
  const std::string& text() const noexcept { return text_; }

 private:
  std::string text_;
};

}  // namespace wsc::xml
