#include "xml/sax_parser.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "xml/escape.hpp"

namespace wsc::xml {

namespace {

using wsc::ParseError;

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// Prefix->URI binding with the element depth that introduced it.
struct NsBinding {
  std::string prefix;
  std::string uri;
  std::size_t depth;
};

class Parser {
 public:
  Parser(std::string_view doc, ContentHandler& handler)
      : doc_(doc), handler_(handler) {}

  void run() {
    handler_.start_document();
    skip_prolog();
    parse_document_element();
    skip_misc();
    if (!at_end()) fail("content after document element");
    if (!open_elements_.empty()) fail("unclosed elements at end of document");
    handler_.end_document();
  }

 private:
  // --- cursor primitives -------------------------------------------------
  bool at_end() const { return pos_ >= doc_.size(); }
  char peek() const { return doc_[pos_]; }
  char take() { return doc_[pos_++]; }
  bool looking_at(std::string_view s) const {
    return doc_.substr(pos_, s.size()) == s;
  }
  void expect(std::string_view s) {
    if (!looking_at(s)) fail("expected '" + std::string(s) + "'");
    pos_ += s.size();
  }
  void skip_ws() {
    while (!at_end() && is_ws(peek())) ++pos_;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("XML: " + msg, pos_);
  }

  std::string_view read_name() {
    if (at_end() || !is_name_start(peek())) fail("expected name");
    std::size_t start = pos_;
    ++pos_;
    while (!at_end() && is_name_char(peek())) ++pos_;
    return doc_.substr(start, pos_ - start);
  }

  // --- prolog / misc ------------------------------------------------------
  void skip_prolog() {
    skip_ws();
    if (looking_at("<?xml")) {
      auto end = doc_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_misc();
    if (looking_at("<!DOCTYPE")) {
      // Skip to matching '>' (no internal subset support).
      auto end = doc_.find('>', pos_);
      if (end == std::string_view::npos) fail("unterminated DOCTYPE");
      if (doc_.substr(pos_, end - pos_).find('[') != std::string_view::npos)
        fail("DOCTYPE internal subset not supported");
      pos_ = end + 1;
      skip_misc();
    }
    if (at_end() || peek() != '<') fail("expected document element");
  }

  /// Comments, PIs and whitespace outside the document element.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (looking_at("<!--")) {
        skip_comment();
      } else if (looking_at("<?")) {
        skip_pi();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    expect("<!--");
    auto end = doc_.find("--", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end;
    expect("-->");
  }

  void skip_pi() {
    expect("<?");
    auto end = doc_.find("?>", pos_);
    if (end == std::string_view::npos) fail("unterminated processing instruction");
    pos_ = end + 2;
  }

  // --- namespaces ----------------------------------------------------------
  std::string_view lookup_ns(std::string_view prefix) const {
    for (auto it = ns_stack_.rbegin(); it != ns_stack_.rend(); ++it) {
      if (it->prefix == prefix) return it->uri;
    }
    if (prefix == "xml") return "http://www.w3.org/XML/1998/namespace";
    return {};
  }

  QName resolve(std::string_view raw, bool is_attribute) {
    QName q;
    q.raw = std::string(raw);
    auto colon = raw.find(':');
    if (colon == std::string_view::npos) {
      q.local = std::string(raw);
      // Unprefixed attributes are in no namespace (XML NS spec).
      if (!is_attribute) q.uri = std::string(lookup_ns(""));
    } else {
      std::string_view prefix = raw.substr(0, colon);
      q.local = std::string(raw.substr(colon + 1));
      if (q.local.empty() || q.local.find(':') != std::string::npos)
        fail("malformed qualified name '" + std::string(raw) + "'");
      std::string_view uri = lookup_ns(prefix);
      if (uri.empty())
        fail("unbound namespace prefix '" + std::string(prefix) + "'");
      q.uri = std::string(uri);
    }
    return q;
  }

  void pop_ns(std::size_t depth) {
    while (!ns_stack_.empty() && ns_stack_.back().depth >= depth)
      ns_stack_.pop_back();
  }

  // --- element content ------------------------------------------------------
  struct RawAttr {
    std::string_view name;
    std::string value;
  };

  /// Parse a start tag (cursor on '<').  Reports start_element (and
  /// end_element for self-closing tags); otherwise pushes onto the open
  /// stack.  Entirely iterative: document depth costs heap, not stack.
  void parse_start_tag() {
    expect("<");
    std::string_view raw_name = read_name();
    std::size_t depth = open_elements_.size() + 1;

    std::vector<RawAttr> raw_attrs;
    bool self_closing = false;
    for (;;) {
      bool had_ws = !at_end() && is_ws(peek());
      skip_ws();
      if (at_end()) fail("unterminated start tag");
      if (peek() == '>') {
        ++pos_;
        break;
      }
      if (looking_at("/>")) {
        pos_ += 2;
        self_closing = true;
        break;
      }
      if (!had_ws) fail("expected whitespace before attribute");
      RawAttr attr;
      attr.name = read_name();
      skip_ws();
      expect("=");
      skip_ws();
      attr.value = read_attr_value();
      raw_attrs.push_back(std::move(attr));
    }

    // First pass: xmlns declarations establish bindings for this element.
    for (const auto& a : raw_attrs) {
      if (a.name == "xmlns") {
        ns_stack_.push_back({"", a.value, depth});
      } else if (a.name.substr(0, 6) == "xmlns:") {
        std::string prefix(a.name.substr(6));
        if (prefix.empty()) fail("empty namespace prefix declaration");
        if (a.value.empty())
          fail("cannot bind prefix '" + prefix + "' to empty URI");
        ns_stack_.push_back({std::move(prefix), a.value, depth});
      }
    }

    // Second pass: resolve element and non-xmlns attributes.
    QName name = resolve(raw_name, /*is_attribute=*/false);
    Attributes attrs;
    for (auto& a : raw_attrs) {
      if (a.name == "xmlns" || a.name.substr(0, 6) == "xmlns:") continue;
      Attribute out;
      out.name = resolve(a.name, /*is_attribute=*/true);
      out.value = std::move(a.value);
      for (const auto& prev : attrs) {
        if (prev.name.local == out.name.local && prev.name.uri == out.name.uri)
          fail("duplicate attribute '" + out.name.raw + "'");
      }
      attrs.push_back(std::move(out));
    }

    handler_.start_element(name, attrs);

    if (self_closing) {
      handler_.end_element(name);
      pop_ns(depth);
      return;
    }
    open_elements_.push_back(std::string(raw_name));
    element_names_.push_back(std::move(name));
  }

  /// Parse an end tag (cursor on "</").  Pops the open stack.
  void parse_end_tag() {
    pos_ += 2;
    std::string_view end_name = read_name();
    if (end_name != open_elements_.back())
      fail("mismatched end tag </" + std::string(end_name) + ">, expected </" +
           open_elements_.back() + ">");
    skip_ws();
    expect(">");
    std::size_t depth = open_elements_.size();
    open_elements_.pop_back();
    QName name = std::move(element_names_.back());
    element_names_.pop_back();
    handler_.end_element(name);
    pop_ns(depth);
  }

  /// The document element and everything inside it, iteratively.
  void parse_document_element() {
    if (at_end() || peek() != '<') fail("expected document element");
    parse_start_tag();
    std::string text;
    auto flush = [&] {
      if (!text.empty()) {
        handler_.characters(text);
        text.clear();
      }
    };
    while (!open_elements_.empty()) {
      if (at_end()) fail("unterminated element <" + open_elements_.back() + ">");
      char c = peek();
      if (c == '<') {
        if (looking_at("</")) {
          flush();
          parse_end_tag();
          continue;
        }
        if (looking_at("<!--")) {
          skip_comment();
          continue;
        }
        if (looking_at("<![CDATA[")) {
          pos_ += 9;
          auto end = doc_.find("]]>", pos_);
          if (end == std::string_view::npos) fail("unterminated CDATA section");
          text.append(doc_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (looking_at("<?")) {
          skip_pi();
          continue;
        }
        flush();
        parse_start_tag();
        continue;
      }
      if (c == '&') {
        // Delegate entity expansion to unescape() over the reference.
        auto end = doc_.find(';', pos_);
        if (end == std::string_view::npos) fail("unterminated entity reference");
        text += unescape(doc_.substr(pos_, end - pos_ + 1));
        pos_ = end + 1;
        continue;
      }
      if (c == ']' && looking_at("]]>")) fail("']]>' not allowed in content");
      text.push_back(take());
    }
  }

  std::string read_attr_value() {
    if (at_end() || (peek() != '"' && peek() != '\'')) fail("expected quoted attribute value");
    char quote = take();
    std::size_t start = pos_;
    while (!at_end() && peek() != quote) {
      if (peek() == '<') fail("'<' not allowed in attribute value");
      ++pos_;
    }
    if (at_end()) fail("unterminated attribute value");
    std::string value = unescape(doc_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  std::string_view doc_;
  ContentHandler& handler_;
  std::size_t pos_ = 0;
  std::vector<NsBinding> ns_stack_;
  std::vector<std::string> open_elements_;  // raw names, for end-tag matching
  std::vector<QName> element_names_;        // resolved names, for end events
};

}  // namespace

void SaxParser::parse(std::string_view document, ContentHandler& handler) {
  Parser(document, handler).run();
}

}  // namespace wsc::xml
