// SAX interfaces: the contract between the parser, the recorded event
// sequence, the DOM builder, and the SOAP deserializer.
//
// This mirrors the role of org.xml.sax in Apache Axis: the paper's key
// observation (section 4.2.2) is that a *recorded SAX event sequence* can be
// replayed into the same deserializer the live parser feeds, skipping the
// expensive tokenization/wellformedness work.  Keeping one handler interface
// is what makes the XML-message and SAX-events cache representations
// interchangeable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace wsc::xml {

/// Expanded element name after namespace processing.
struct QName {
  std::string uri;    // namespace URI, empty if unbound
  std::string local;  // local part
  std::string raw;    // as written, e.g. "soapenv:Envelope"

  bool operator==(const QName&) const = default;
};

/// One attribute after namespace processing.  xmlns declarations are
/// consumed by the parser and not reported here (matching SAX2 defaults).
struct Attribute {
  QName name;
  std::string value;  // entity-expanded

  bool operator==(const Attribute&) const = default;
};

using Attributes = std::vector<Attribute>;

/// Content hash of a QName, for interning tables (CompactEventSequence
/// dedups the handful of names a SOAP response repeats hundreds of times).
inline std::uint64_t qname_hash(const QName& q) {
  std::uint64_t h = util::fnv1a(q.uri);
  h = util::hash_combine(h, util::fnv1a(q.local));
  return util::hash_combine(h, util::fnv1a(q.raw));
}

/// Content hash of a whole attribute list (order-sensitive, as XML
/// attribute order is preserved by the parser and the writer).
inline std::uint64_t attributes_hash(const Attributes& attrs) {
  std::uint64_t h = util::kFnvOffset;
  for (const Attribute& a : attrs) {
    h = util::hash_combine(h, qname_hash(a.name));
    h = util::hash_combine(h, util::fnv1a(a.value));
  }
  return h;
}

/// Receiver of parse events.  Default implementations ignore everything so
/// handlers override only what they need.
///
/// Lifetime contract (identical to SAX2): every reference/view passed to a
/// callback — the QName, the Attributes, the characters() text — is only
/// guaranteed valid FOR THE DURATION OF THAT CALLBACK.  Handlers that keep
/// data must copy it.  Live-parser events point into parser scratch;
/// replayed CompactEventSequence events point into the sequence's arena and
/// interning tables (valid while the sequence lives, but handlers must not
/// rely on that).
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  virtual void start_document() {}
  virtual void end_document() {}
  virtual void start_element(const QName& name, const Attributes& attrs) {
    (void)name;
    (void)attrs;
  }
  virtual void end_element(const QName& name) { (void)name; }
  /// Character data, entity-expanded.  May be delivered in multiple chunks.
  virtual void characters(std::string_view text) { (void)text; }
};

/// Anything that can drive a ContentHandler: the live parser or a recorded
/// event sequence.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual void deliver(ContentHandler& handler) const = 0;
};

}  // namespace wsc::xml
