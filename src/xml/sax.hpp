// SAX interfaces: the contract between the parser, the recorded event
// sequence, the DOM builder, and the SOAP deserializer.
//
// This mirrors the role of org.xml.sax in Apache Axis: the paper's key
// observation (section 4.2.2) is that a *recorded SAX event sequence* can be
// replayed into the same deserializer the live parser feeds, skipping the
// expensive tokenization/wellformedness work.  Keeping one handler interface
// is what makes the XML-message and SAX-events cache representations
// interchangeable.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsc::xml {

/// Expanded element name after namespace processing.
struct QName {
  std::string uri;    // namespace URI, empty if unbound
  std::string local;  // local part
  std::string raw;    // as written, e.g. "soapenv:Envelope"

  bool operator==(const QName&) const = default;
};

/// One attribute after namespace processing.  xmlns declarations are
/// consumed by the parser and not reported here (matching SAX2 defaults).
struct Attribute {
  QName name;
  std::string value;  // entity-expanded

  bool operator==(const Attribute&) const = default;
};

using Attributes = std::vector<Attribute>;

/// Receiver of parse events.  Default implementations ignore everything so
/// handlers override only what they need.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  virtual void start_document() {}
  virtual void end_document() {}
  virtual void start_element(const QName& name, const Attributes& attrs) {
    (void)name;
    (void)attrs;
  }
  virtual void end_element(const QName& name) { (void)name; }
  /// Character data, entity-expanded.  May be delivered in multiple chunks.
  virtual void characters(std::string_view text) { (void)text; }
};

/// Anything that can drive a ContentHandler: the live parser or a recorded
/// event sequence.
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual void deliver(ContentHandler& handler) const = 0;
};

}  // namespace wsc::xml
