#include "xml/event_sequence.hpp"

#include "util/mem_footprint.hpp"

namespace wsc::xml {

void EventSequence::deliver(ContentHandler& handler) const {
  for (const Event& e : events_) {
    switch (e.type) {
      case EventType::StartDocument: handler.start_document(); break;
      case EventType::EndDocument: handler.end_document(); break;
      case EventType::StartElement: handler.start_element(e.name, e.attrs); break;
      case EventType::EndElement: handler.end_element(e.name); break;
      case EventType::Characters: handler.characters(e.text); break;
    }
  }
}

std::size_t EventSequence::memory_size() const {
  // Honest accounting (Table 9): each std::string's inline header is part
  // of the struct size already counted, SSO strings own no heap block, and
  // every real heap block pays allocator overhead (util/mem_footprint.hpp).
  std::size_t total = sizeof(EventSequence) + util::vector_footprint(events_);
  auto qname_size = [](const QName& q) {
    return util::string_footprint(q.uri) + util::string_footprint(q.local) +
           util::string_footprint(q.raw);
  };
  for (const Event& e : events_) {
    total += qname_size(e.name) + util::string_footprint(e.text) +
             util::vector_footprint(e.attrs);
    for (const Attribute& a : e.attrs)
      total += qname_size(a.name) + util::string_footprint(a.value);
  }
  return total;
}

void EventRecorder::start_document() {
  seq_.push({EventType::StartDocument, {}, {}, {}});
}

void EventRecorder::end_document() {
  seq_.push({EventType::EndDocument, {}, {}, {}});
}

void EventRecorder::start_element(const QName& name, const Attributes& attrs) {
  seq_.push({EventType::StartElement, name, attrs, {}});
}

void EventRecorder::end_element(const QName& name) {
  seq_.push({EventType::EndElement, name, {}, {}});
}

void EventRecorder::characters(std::string_view text) {
  seq_.push({EventType::Characters, {}, {}, std::string(text)});
}

}  // namespace wsc::xml
