#include "xml/event_sequence.hpp"

namespace wsc::xml {

void EventSequence::deliver(ContentHandler& handler) const {
  for (const Event& e : events_) {
    switch (e.type) {
      case EventType::StartDocument: handler.start_document(); break;
      case EventType::EndDocument: handler.end_document(); break;
      case EventType::StartElement: handler.start_element(e.name, e.attrs); break;
      case EventType::EndElement: handler.end_element(e.name); break;
      case EventType::Characters: handler.characters(e.text); break;
    }
  }
}

std::size_t EventSequence::memory_size() const {
  std::size_t total = sizeof(EventSequence) + events_.capacity() * sizeof(Event);
  auto qname_size = [](const QName& q) {
    return q.uri.capacity() + q.local.capacity() + q.raw.capacity();
  };
  for (const Event& e : events_) {
    total += qname_size(e.name) + e.text.capacity() +
             e.attrs.capacity() * sizeof(Attribute);
    for (const Attribute& a : e.attrs)
      total += qname_size(a.name) + a.value.capacity();
  }
  return total;
}

void EventRecorder::start_document() {
  seq_.push({EventType::StartDocument, {}, {}, {}});
}

void EventRecorder::end_document() {
  seq_.push({EventType::EndDocument, {}, {}, {}});
}

void EventRecorder::start_element(const QName& name, const Attributes& attrs) {
  seq_.push({EventType::StartElement, name, attrs, {}});
}

void EventRecorder::end_element(const QName& name) {
  seq_.push({EventType::EndElement, name, {}, {}});
}

void EventRecorder::characters(std::string_view text) {
  seq_.push({EventType::Characters, {}, {}, std::string(text)});
}

}  // namespace wsc::xml
