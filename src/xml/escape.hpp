// XML text/attribute escaping and entity expansion.
#pragma once

#include <string>
#include <string_view>

namespace wsc::xml {

/// Escape character data: & < > (and keeps everything else verbatim).
std::string escape_text(std::string_view s);

/// Escape an attribute value for double-quoted attributes: & < > " plus
/// newline/tab normalization-proof references.
std::string escape_attribute(std::string_view s);

/// Expand the five predefined entities (&amp; &lt; &gt; &apos; &quot;) and
/// numeric character references (&#NN; &#xHH;, emitted as UTF-8).
/// Throws wsc::ParseError on an unknown or malformed entity.
std::string unescape(std::string_view s);

/// Append a Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp);

}  // namespace wsc::xml
