// Streaming XML writer.
//
// Produces the on-wire SOAP messages (serializer side of the pipeline in
// Figure 1 of the paper).  Stack-checked: end_element() must match the
// innermost open element, and the result is well-formed by construction.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsc::xml {

class Writer {
 public:
  /// When `declaration` is true, emits `<?xml version="1.0" ...?>` first.
  explicit Writer(bool declaration = true);

  /// Open an element.  `qname` is written verbatim (caller manages
  /// prefixes; the SOAP layer binds its namespaces once on the envelope).
  Writer& start_element(std::string_view qname);

  /// Add an attribute to the most recently opened element.  Only legal
  /// before any content has been written into it.
  Writer& attribute(std::string_view name, std::string_view value);

  /// Character data (escaped).
  Writer& text(std::string_view s);

  /// Pre-escaped/raw content (e.g. Base64 blocks - no escaping needed).
  Writer& raw(std::string_view s);

  /// Close the innermost element; empty elements are collapsed to `<e/>`.
  Writer& end_element();

  /// start_element + text + end_element.
  Writer& text_element(std::string_view qname, std::string_view content);

  /// Finish the document and return the XML.  Throws wsc::Error if
  /// elements remain open.
  std::string finish();

  std::size_t depth() const noexcept { return open_.size(); }

 private:
  void close_start_tag();

  std::string out_;
  std::vector<std::string> open_;
  bool tag_open_ = false;  // '<name' emitted but '>' pending
};

}  // namespace wsc::xml
