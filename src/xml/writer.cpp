#include "xml/writer.hpp"

#include "util/error.hpp"
#include "xml/escape.hpp"

namespace wsc::xml {

Writer::Writer(bool declaration) {
  if (declaration) out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
}

void Writer::close_start_tag() {
  if (tag_open_) {
    out_.push_back('>');
    tag_open_ = false;
  }
}

Writer& Writer::start_element(std::string_view qname) {
  close_start_tag();
  out_.push_back('<');
  out_.append(qname);
  open_.emplace_back(qname);
  tag_open_ = true;
  return *this;
}

Writer& Writer::attribute(std::string_view name, std::string_view value) {
  if (!tag_open_)
    throw Error("Writer: attribute('" + std::string(name) +
                "') after element content");
  out_.push_back(' ');
  out_.append(name);
  out_.append("=\"");
  out_.append(escape_attribute(value));
  out_.push_back('"');
  return *this;
}

Writer& Writer::text(std::string_view s) {
  close_start_tag();
  out_.append(escape_text(s));
  return *this;
}

Writer& Writer::raw(std::string_view s) {
  close_start_tag();
  out_.append(s);
  return *this;
}

Writer& Writer::end_element() {
  if (open_.empty()) throw Error("Writer: end_element with no open element");
  if (tag_open_) {
    out_.append("/>");
    tag_open_ = false;
  } else {
    out_.append("</");
    out_.append(open_.back());
    out_.push_back('>');
  }
  open_.pop_back();
  return *this;
}

Writer& Writer::text_element(std::string_view qname, std::string_view content) {
  start_element(qname);
  text(content);
  return end_element();
}

std::string Writer::finish() {
  if (!open_.empty())
    throw Error("Writer: finish() with <" + open_.back() + "> still open");
  return std::move(out_);
}

}  // namespace wsc::xml
