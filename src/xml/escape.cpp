#include "xml/escape.hpp"

#include <cstdint>

#include "util/error.hpp"

namespace wsc::xml {

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\n': out += "&#10;"; break;
      case '\t': out += "&#9;"; break;
      case '\r': out += "&#13;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp <= 0x7F) {
    out.push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0x10FFFF) {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    throw ParseError("code point out of Unicode range");
  }
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size();) {
    char c = s[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    auto end = s.find(';', i + 1);
    if (end == std::string_view::npos)
      throw ParseError("unterminated entity reference", i);
    std::string_view name = s.substr(i + 1, end - i - 1);
    if (name == "amp") out.push_back('&');
    else if (name == "lt") out.push_back('<');
    else if (name == "gt") out.push_back('>');
    else if (name == "apos") out.push_back('\'');
    else if (name == "quot") out.push_back('"');
    else if (!name.empty() && name[0] == '#') {
      std::uint32_t cp = 0;
      bool hex = name.size() > 1 && (name[1] == 'x' || name[1] == 'X');
      std::string_view digits = name.substr(hex ? 2 : 1);
      if (digits.empty()) throw ParseError("empty character reference", i);
      for (char d : digits) {
        std::uint32_t v;
        if (d >= '0' && d <= '9') v = static_cast<std::uint32_t>(d - '0');
        else if (hex && d >= 'a' && d <= 'f') v = static_cast<std::uint32_t>(d - 'a' + 10);
        else if (hex && d >= 'A' && d <= 'F') v = static_cast<std::uint32_t>(d - 'A' + 10);
        else throw ParseError("bad digit in character reference", i);
        cp = cp * (hex ? 16 : 10) + v;
        if (cp > 0x10FFFF) throw ParseError("character reference out of range", i);
      }
      append_utf8(out, cp);
    } else {
      throw ParseError("unknown entity '&" + std::string(name) + ";'", i);
    }
    i = end + 1;
  }
  return out;
}

}  // namespace wsc::xml
