// Compact interned SAX event sequences: arena-backed recording, zero-copy
// replay (the cache-side successor to event_sequence.hpp).
//
// The legacy `EventSequence` stores one struct of heap std::strings per
// event — three strings per QName, plus per-attribute and per-text strings
// — so a recorded GoogleSearch response costs thousands of allocations and
// its Table 9 footprint is dominated by string headers.  This
// representation exploits what SOAP responses actually look like: the same
// handful of QNames (`<item>`, `<snippet>`, `<URL>` …) and attribute lists
// (`xsi:type="xsd:string"`) repeat hundreds of times, while character data
// is unique but contiguous-appendable.
//
// Layout (see DESIGN.md "Compact event-sequence representation"):
//
//   arena_       one contiguous byte buffer holding ALL character data, in
//                event order;
//   names_       interning table of distinct QNames (materialised once, so
//                replay can hand out `const QName&` without building one);
//   attr_lists_  interning table of distinct whole attribute lists
//                (id 0 is always the empty list);
//   events_      flat fixed-width records:  { type, a, b }  where
//                  StartElement: a = name id,      b = attribute-list id
//                  EndElement:   a = name id,      b = unused
//                  Characters:   a = arena offset, b = byte length
//                  Start/EndDocument: both unused
//
// Replay (`deliver()`) walks the flat array and hands out references into
// the tables and `std::string_view`s into the arena — ZERO heap
// allocations per event (asserted by test).  Recording appends into the
// arena and tables with amortized growth — near-zero allocation on the
// miss path (only on a previously unseen name/list or a buffer grow).
//
// Views passed to the handler follow the ContentHandler lifetime contract
// (sax.hpp): valid only during the callback; handlers copy what they keep.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "xml/event_sequence.hpp"
#include "xml/sax.hpp"

namespace wsc::xml {

class CompactEventSequence final : public EventSource {
 public:
  /// Fixed-width recorded event; meaning of a/b depends on type (above).
  struct EventRec {
    EventType type;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };
  static_assert(sizeof(EventRec) <= 12, "EventRec must stay compact");

  void deliver(ContentHandler& handler) const override;

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// Honest heap footprint in bytes (Table 9 / eviction byte budget):
  /// counts arena and table capacities, per-block allocation overhead, and
  /// the interned strings' real heap (SSO strings bill nothing extra).
  std::size_t memory_size() const;

  // Introspection for tests, benches and the DESIGN.md numbers.
  const std::vector<EventRec>& events() const noexcept { return events_; }
  std::size_t distinct_names() const noexcept { return names_.size(); }
  std::size_t distinct_attr_lists() const noexcept {
    return attr_lists_.size();
  }
  std::size_t arena_bytes() const noexcept { return arena_.size(); }

 private:
  friend class CompactEventRecorder;

  std::string arena_;                    // all character data, event order
  std::vector<QName> names_;             // interned distinct names
  std::vector<Attributes> attr_lists_;   // interned lists; [0] = empty
  std::vector<EventRec> events_;
};

/// ContentHandler that records into a CompactEventSequence.  Owns the
/// interning indices (content hash -> candidate ids) so a finished,
/// immutable sequence does not carry them.
class CompactEventRecorder final : public ContentHandler {
 public:
  CompactEventRecorder();

  void start_document() override;
  void end_document() override;
  void start_element(const QName& name, const Attributes& attrs) override;
  void end_element(const QName& name) override;
  void characters(std::string_view text) override;

  /// Finish recording: trims growth slack (the footprint reported to the
  /// byte budget is what the entry keeps, not what recording peaked at)
  /// and hands the sequence over.  The recorder is reusable afterwards.
  CompactEventSequence take();

  const CompactEventSequence& sequence() const noexcept { return seq_; }

 private:
  std::uint32_t intern_name(const QName& name);
  std::uint32_t intern_attrs(const Attributes& attrs);

  CompactEventSequence seq_;
  // Content hash -> ids with that hash; collisions resolved by comparing
  // against the interned entry (no per-lookup allocation on repeats).
  std::unordered_multimap<std::uint64_t, std::uint32_t> name_index_;
  std::unordered_multimap<std::uint64_t, std::uint32_t> attrs_index_;
};

}  // namespace wsc::xml
