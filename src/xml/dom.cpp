#include "xml/dom.hpp"

#include "util/error.hpp"
#include "xml/escape.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::xml {

NodePtr Node::make_element(QName name, Attributes attrs) {
  auto n = NodePtr(new Node(Type::Element));
  n->name_ = std::move(name);
  n->attrs_ = std::move(attrs);
  return n;
}

NodePtr Node::make_text(std::string text) {
  auto n = NodePtr(new Node(Type::Text));
  n->text_ = std::move(text);
  return n;
}

const QName& Node::name() const {
  if (!is_element()) throw Error("DOM: name() on text node");
  return name_;
}

const Attributes& Node::attributes() const {
  if (!is_element()) throw Error("DOM: attributes() on text node");
  return attrs_;
}

const std::vector<NodePtr>& Node::children() const {
  if (!is_element()) throw Error("DOM: children() on text node");
  return children_;
}

Node& Node::append_child(NodePtr child) {
  if (!is_element()) throw Error("DOM: append_child on text node");
  children_.push_back(std::move(child));
  return *children_.back();
}

std::string_view Node::attribute(std::string_view local) const {
  for (const Attribute& a : attributes()) {
    if (a.name.local == local) return a.value;
  }
  return {};
}

const Node* Node::child(std::string_view local) const {
  for (const NodePtr& c : children()) {
    if (c->is_element() && c->name_.local == local) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::children_named(std::string_view local) const {
  std::vector<const Node*> out;
  for (const NodePtr& c : children()) {
    if (c->is_element() && c->name_.local == local) out.push_back(c.get());
  }
  return out;
}

std::string Node::text_content() const {
  if (is_text()) return text_;
  std::string out;
  for (const NodePtr& c : children_) out += c->text_content();
  return out;
}

const std::string& Node::text() const {
  if (!is_text()) throw Error("DOM: text() on element node");
  return text_;
}

void Node::append_text(std::string_view more) {
  if (!is_text()) throw Error("DOM: append_text on element node");
  text_.append(more);
}

std::string Node::to_xml() const {
  if (is_text()) return escape_text(text_);
  std::string out = "<" + name_.raw;
  for (const Attribute& a : attrs_)
    out += " " + a.name.raw + "=\"" + escape_attribute(a.value) + "\"";
  if (children_.empty()) return out + "/>";
  out += ">";
  for (const NodePtr& c : children_) out += c->to_xml();
  out += "</" + name_.raw + ">";
  return out;
}

void DomBuilder::start_document() {
  doc_ = Document{};
  stack_.clear();
}

void DomBuilder::start_element(const QName& name, const Attributes& attrs) {
  NodePtr node = Node::make_element(name, attrs);
  if (stack_.empty()) {
    if (doc_.root) throw ParseError("DOM: multiple root elements");
    doc_.root = std::move(node);
    stack_.push_back(doc_.root.get());
  } else {
    Node& appended = stack_.back()->append_child(std::move(node));
    stack_.push_back(&appended);
  }
}

void DomBuilder::end_element(const QName&) {
  if (stack_.empty()) throw ParseError("DOM: unbalanced end_element");
  stack_.pop_back();
}

void DomBuilder::characters(std::string_view text) {
  if (stack_.empty()) {
    // Whitespace outside the root is legal; anything else is not.
    for (char c : text) {
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n')
        throw ParseError("DOM: character data outside root element");
    }
    return;
  }
  // Merge adjacent text for a canonical tree.
  auto& siblings = stack_.back()->children();
  if (!siblings.empty() && siblings.back()->is_text()) {
    const_cast<Node*>(siblings.back().get())->append_text(text);
  } else {
    stack_.back()->append_child(Node::make_text(std::string(text)));
  }
}

Document DomBuilder::take() {
  if (!doc_.root) throw ParseError("DOM: empty document");
  return std::move(doc_);
}

Document parse_document(std::string_view xml_text) {
  DomBuilder builder;
  SaxParser{}.parse(xml_text, builder);
  return builder.take();
}

}  // namespace wsc::xml
