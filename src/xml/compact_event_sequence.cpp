#include "xml/compact_event_sequence.hpp"

#include <limits>

#include "util/error.hpp"
#include "util/mem_footprint.hpp"

namespace wsc::xml {

namespace {

std::size_t qname_heap(const QName& q) {
  return util::string_footprint(q.uri) + util::string_footprint(q.local) +
         util::string_footprint(q.raw);
}

}  // namespace

// --- CompactEventSequence ----------------------------------------------------

void CompactEventSequence::deliver(ContentHandler& handler) const {
  // The hit path: no allocation, no string construction — names and
  // attribute lists come from the interning tables, text is a view into
  // the arena.
  const char* arena = arena_.data();
  for (const EventRec& e : events_) {
    switch (e.type) {
      case EventType::StartDocument: handler.start_document(); break;
      case EventType::EndDocument: handler.end_document(); break;
      case EventType::StartElement:
        handler.start_element(names_[e.a], attr_lists_[e.b]);
        break;
      case EventType::EndElement: handler.end_element(names_[e.a]); break;
      case EventType::Characters:
        handler.characters(std::string_view(arena + e.a, e.b));
        break;
    }
  }
}

std::size_t CompactEventSequence::memory_size() const {
  std::size_t total = sizeof(*this);
  total += util::string_footprint(arena_);
  total += util::vector_footprint(events_);
  total += util::vector_footprint(names_);
  for (const QName& q : names_) total += qname_heap(q);
  total += util::vector_footprint(attr_lists_);
  for (const Attributes& attrs : attr_lists_) {
    total += util::vector_footprint(attrs);
    for (const Attribute& a : attrs)
      total += qname_heap(a.name) + util::string_footprint(a.value);
  }
  return total;
}

// --- CompactEventRecorder ----------------------------------------------------

CompactEventRecorder::CompactEventRecorder() {
  seq_.attr_lists_.emplace_back();  // id 0: the empty attribute list
}

std::uint32_t CompactEventRecorder::intern_name(const QName& name) {
  std::uint64_t h = qname_hash(name);
  auto [first, last] = name_index_.equal_range(h);
  for (auto it = first; it != last; ++it) {
    if (seq_.names_[it->second] == name) return it->second;
  }
  auto id = static_cast<std::uint32_t>(seq_.names_.size());
  seq_.names_.push_back(name);
  name_index_.emplace(h, id);
  return id;
}

std::uint32_t CompactEventRecorder::intern_attrs(const Attributes& attrs) {
  if (attrs.empty()) return 0;
  std::uint64_t h = attributes_hash(attrs);
  auto [first, last] = attrs_index_.equal_range(h);
  for (auto it = first; it != last; ++it) {
    if (seq_.attr_lists_[it->second] == attrs) return it->second;
  }
  auto id = static_cast<std::uint32_t>(seq_.attr_lists_.size());
  seq_.attr_lists_.push_back(attrs);
  attrs_index_.emplace(h, id);
  return id;
}

void CompactEventRecorder::start_document() {
  seq_.events_.push_back({EventType::StartDocument, 0, 0});
}

void CompactEventRecorder::end_document() {
  seq_.events_.push_back({EventType::EndDocument, 0, 0});
}

void CompactEventRecorder::start_element(const QName& name,
                                         const Attributes& attrs) {
  seq_.events_.push_back(
      {EventType::StartElement, intern_name(name), intern_attrs(attrs)});
}

void CompactEventRecorder::end_element(const QName& name) {
  seq_.events_.push_back({EventType::EndElement, intern_name(name), 0});
}

void CompactEventRecorder::characters(std::string_view text) {
  // Chunks stay separate records (replay must be event-for-event identical
  // to the live parse); their bytes are still contiguous in the arena.
  if (seq_.arena_.size() + text.size() >
      std::numeric_limits<std::uint32_t>::max())
    throw Error("CompactEventSequence: character data exceeds 4 GiB arena");
  auto offset = static_cast<std::uint32_t>(seq_.arena_.size());
  seq_.arena_.append(text);
  seq_.events_.push_back(
      {EventType::Characters, offset, static_cast<std::uint32_t>(text.size())});
}

CompactEventSequence CompactEventRecorder::take() {
  seq_.arena_.shrink_to_fit();
  seq_.events_.shrink_to_fit();
  seq_.names_.shrink_to_fit();
  seq_.attr_lists_.shrink_to_fit();
  CompactEventSequence out = std::move(seq_);
  seq_ = CompactEventSequence();
  seq_.attr_lists_.emplace_back();
  name_index_.clear();
  attrs_index_.clear();
  return out;
}

}  // namespace wsc::xml
