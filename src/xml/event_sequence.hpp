// Recorded SAX event sequences (paper section 4.2.2, Table 4).
//
// `EventRecorder` is a ContentHandler that captures the parse of a response
// into an `EventSequence`; the cache stores the sequence, and on a hit
// replays it into the deserializer — identical events, no tokenizer.  This
// is the paper's second cache-value representation, applicable to any type.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "xml/sax.hpp"

namespace wsc::xml {

enum class EventType : std::uint8_t {
  StartDocument,
  EndDocument,
  StartElement,
  EndElement,
  Characters,
};

/// One recorded event.  StartElement carries the name and attributes;
/// EndElement carries the name; Characters carries text.
struct Event {
  EventType type;
  QName name;        // StartElement / EndElement
  Attributes attrs;  // StartElement
  std::string text;  // Characters
};

class EventSequence final : public EventSource {
 public:
  void deliver(ContentHandler& handler) const override;

  void push(Event e) { events_.push_back(std::move(e)); }
  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// Approximate heap footprint in bytes, for Table 9-style accounting.
  std::size_t memory_size() const;

 private:
  std::vector<Event> events_;
};

/// ContentHandler that records everything it hears.
class EventRecorder final : public ContentHandler {
 public:
  void start_document() override;
  void end_document() override;
  void start_element(const QName& name, const Attributes& attrs) override;
  void end_element(const QName& name) override;
  void characters(std::string_view text) override;

  EventSequence take() { return std::move(seq_); }
  const EventSequence& sequence() const noexcept { return seq_; }

 private:
  EventSequence seq_;
};

/// Fan a single event stream out to several handlers (e.g. deserialize AND
/// record in one parse, the way the cache populates itself on a miss
/// without reparsing).
class TeeHandler final : public ContentHandler {
 public:
  TeeHandler(ContentHandler& first, ContentHandler& second)
      : first_(first), second_(second) {}

  void start_document() override {
    first_.start_document();
    second_.start_document();
  }
  void end_document() override {
    first_.end_document();
    second_.end_document();
  }
  void start_element(const QName& name, const Attributes& attrs) override {
    first_.start_element(name, attrs);
    second_.start_element(name, attrs);
  }
  void end_element(const QName& name) override {
    first_.end_element(name);
    second_.end_element(name);
  }
  void characters(std::string_view text) override {
    first_.characters(text);
    second_.characters(text);
  }

 private:
  ContentHandler& first_;
  ContentHandler& second_;
};

}  // namespace wsc::xml
