#include "portal/query_string.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::portal {

namespace {

bool unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' || c == '~';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string url_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (unreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[static_cast<unsigned char>(c) >> 4]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= s.size())
        throw ParseError("url_decode: truncated escape", i);
      int hi = hex_digit(s[i + 1]);
      int lo = hex_digit(s[i + 2]);
      if (hi < 0 || lo < 0) throw ParseError("url_decode: bad escape", i);
      out.push_back(static_cast<char>(hi << 4 | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

ParsedTarget parse_target(std::string_view target) {
  ParsedTarget out;
  auto qpos = target.find('?');
  out.path = std::string(target.substr(0, qpos));
  if (qpos == std::string_view::npos) return out;
  for (const std::string& pair : util::split(target.substr(qpos + 1), '&')) {
    if (pair.empty()) continue;
    auto eq = pair.find('=');
    if (eq == std::string::npos) {
      out.query[url_decode(pair)] = "";
    } else {
      out.query[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
    }
  }
  return out;
}

}  // namespace wsc::portal
