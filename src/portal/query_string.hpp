// URL query-string encoding/decoding for the portal's GET interface.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace wsc::portal {

/// Percent-encode a query value (RFC 3986 unreserved set kept verbatim,
/// space as %20).
std::string url_encode(std::string_view s);

/// Decode %XX and '+'; throws wsc::ParseError on malformed escapes.
std::string url_decode(std::string_view s);

/// Split "/path?a=1&b=2" into path and decoded key/value pairs.
struct ParsedTarget {
  std::string path;
  std::map<std::string, std::string> query;
};
ParsedTarget parse_target(std::string_view target);

}  // namespace wsc::portal
