// Closed-loop load simulator (the IBM Web Performance Tool stand-in).
//
// N virtual clients each issue their next request only after the previous
// reply ("we stressed the portal site without concurrent access" = N=1;
// Figure 4 uses N=25).  The cache-hit ratio is controlled *exactly*, not
// stochastically: a warmed hot set of queries provides hits, fresh unique
// queries provide misses, interleaved so every prefix of the run matches
// the target ratio.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/histogram.hpp"

namespace wsc::portal {

struct LoadConfig {
  int concurrency = 1;            // virtual clients
  int requests_per_client = 200;  // measured requests each
  double hit_ratio = 1.0;         // target fraction served from cache
  int hot_set_size = 16;          // distinct warmed queries
  std::uint64_t seed = 42;        // workload determinism
};

struct LoadReport {
  double duration_seconds = 0;
  std::uint64_t requests = 0;
  double throughput_rps = 0;
  util::Histogram latency;  // nanoseconds per request

  double mean_response_ms() const { return latency.mean() / 1e6; }
};

/// A virtual client's way of fetching one portal page for a query.
/// Implementations: direct render_page() call, or a real HTTP GET.
using PageFetcher = std::function<void(int client_index, const std::string& query)>;

/// Run the workload through an arbitrary fetcher.  The hot set is warmed
/// (unmeasured) before the clock starts.
LoadReport run_load(const LoadConfig& config, const PageFetcher& fetch);

/// Convenience: drive a live portal over HTTP.  `portal_base_url` like
/// "http://127.0.0.1:8080" — each virtual client keeps one persistent
/// connection, as the paper's load tool did.
LoadReport run_load_http(const std::string& portal_base_url,
                         const LoadConfig& config);

}  // namespace wsc::portal
