// The portal site of Figure 2: a web front-end whose pages are rendered
// from back-end Web-services calls made through the caching client
// middleware.
//
//   load simulator --HTTP--> portal (this) --SOAP/HTTP--> dummy Google WS
//
// GET /portal?q=<query> renders an HTML results page around one
// doGoogleSearch call; the response cache in the middleware is what the
// Figure 3/4 experiments measure.
#pragma once

#include <memory>
#include <string>

#include "core/client.hpp"
#include "http/server.hpp"
#include "obs/metrics.hpp"
#include "obs/profiles.hpp"
#include "services/google/stub.hpp"

namespace wsc::portal {

struct PortalConfig {
  /// SOAP endpoint of the backend Google service.
  std::string backend_endpoint;
  std::shared_ptr<transport::Transport> transport;
  /// Middleware configuration (key method, policy/representation).
  cache::CachingServiceClient::Options options;
  /// Shared response cache; created internally when null.
  std::shared_ptr<cache::ResponseCache> response_cache;
  /// Metrics registry behind the /metrics admin endpoint; created
  /// internally (pre-wired with the cache, tracer, process/build info and
  /// event counters) when null.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Cost-profile registry behind /profiles; created internally when null
  /// and injected into the middleware options (sampling every call — the
  /// portal is the observability showcase, not the overhead benchmark).
  std::shared_ptr<obs::CostProfiles> profiles;
  /// Adaptive representation policy behind /adaptive; created internally
  /// (sharing `profiles`) when null and injected into the middleware
  /// options, closing the cost-model loop by default.
  std::shared_ptr<cache::AdaptivePolicy> adaptive;
};

class PortalSite {
 public:
  explicit PortalSite(PortalConfig config);

  /// Render the results page for a query (one backend call through the
  /// caching middleware + HTML generation).
  std::string render_page(const std::string& query);

  /// HTTP handler.  Routes:
  ///   GET /portal?q=...  -> text/html results page
  ///   GET /stats         -> application/json StatsSnapshot counters
  ///                         (+ a "server" section after attach_server())
  ///   GET /metrics       -> Prometheus text exposition (version 0.0.4)
  ///   GET /profiles      -> application/json per-representation cost rows
  ///                         + merged hot keys + cache footprint
  ///   GET /adaptive      -> application/json adaptive-policy state (per
  ///                         operation: current representation, candidate
  ///                         scores, switches, memory pressure)
  ///   GET /events        -> application/json recent structured events
  http::Handler handler();

  /// Bridge the serving HttpServer's connection-layer telemetry into
  /// /metrics (wsc_server_* families) and /stats ("server" object).  Call
  /// once, after constructing the server with this site's handler(); the
  /// server must outlive the site.
  void attach_server(const http::HttpServer& server);

  cache::ResponseCache& response_cache() noexcept { return *cache_; }
  services::google::GoogleClient& google() noexcept { return *google_; }
  obs::MetricsRegistry& metrics() noexcept { return *metrics_; }
  obs::CostProfiles& profiles() noexcept { return *profiles_; }
  cache::AdaptivePolicy& adaptive() noexcept { return *adaptive_; }

 private:
  std::string profiles_json() const;

  std::shared_ptr<cache::ResponseCache> cache_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<obs::CostProfiles> profiles_;
  std::shared_ptr<cache::AdaptivePolicy> adaptive_;
  obs::Summary* request_latency_ = nullptr;  // owned by *metrics_
  const http::ServerStats* server_stats_ = nullptr;  // attach_server()
  std::unique_ptr<services::google::GoogleClient> google_;
};

}  // namespace wsc::portal
