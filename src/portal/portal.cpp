#include "portal/portal.hpp"

#include "core/metrics_bridge.hpp"
#include "obs/trace.hpp"
#include "portal/query_string.hpp"
#include "xml/escape.hpp"

namespace wsc::portal {

using services::google::GoogleClient;
using services::google::GoogleSearchResult;

PortalSite::PortalSite(PortalConfig config)
    : cache_(config.response_cache ? std::move(config.response_cache)
                                   : std::make_shared<cache::ResponseCache>()),
      metrics_(std::move(config.metrics)) {
  if (!metrics_) {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
    cache::register_cache_metrics(*metrics_, *cache_);
    obs::register_tracer_metrics(*metrics_, obs::tracer());
  }
  google_ = std::make_unique<GoogleClient>(std::move(config.transport),
                                           std::move(config.backend_endpoint),
                                           cache_, std::move(config.options));
}

std::string PortalSite::render_page(const std::string& query) {
  GoogleSearchResult result = google_->doGoogleSearch(query);

  // HTML rendering is intentionally straightforward string building — the
  // portal's own work should be cheap next to the middleware path, as in
  // the paper's setup.
  std::string html = "<html><head><title>Portal: " + xml::escape_text(query) +
                     "</title></head><body>";
  html += "<h1>Results for \"" + xml::escape_text(query) + "\"</h1>";
  html += "<p>about " + std::to_string(result.estimatedTotalResultsCount) +
          " results in " + std::to_string(result.searchTime) + "s</p><ol>";
  for (const auto& e : result.resultElements) {
    html += "<li><a href=\"" + e.URL + "\">" + xml::escape_text(e.title) +
            "</a><br/>" + xml::escape_text(e.snippet) + "<br/><small>" +
            e.hostName + " - " + e.cachedSize + "</small></li>";
  }
  html += "</ol><hr/><ul>";
  for (const auto& dc : result.directoryCategories)
    html += "<li>" + xml::escape_text(dc.fullViewableName) + "</li>";
  html += "</ul></body></html>";
  return html;
}

http::Handler PortalSite::handler() {
  return [this](const http::Request& request) {
    http::Response response;
    ParsedTarget target = parse_target(request.target);
    if (target.path == "/stats") {
      response.headers.set("Content-Type", "application/json");
      response.body = cache::stats_json(cache_->stats());
      return response;
    }
    if (target.path == "/metrics") {
      response.headers.set("Content-Type",
                           "text/plain; version=0.0.4; charset=utf-8");
      response.body = metrics_->prometheus_text();
      return response;
    }
    if (target.path != "/portal") {
      response.status = 404;
      response.body = "not found";
      return response;
    }
    auto q = target.query.find("q");
    if (q == target.query.end() || q->second.empty()) {
      response.status = 400;
      response.body = "missing q parameter";
      return response;
    }
    response.headers.set("Content-Type", "text/html; charset=utf-8");
    response.body = render_page(q->second);
    return response;
  };
}

}  // namespace wsc::portal
