#include "portal/portal.hpp"

#include "core/adaptive_policy.hpp"
#include "core/metrics_bridge.hpp"
#include "obs/build_info.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "portal/query_string.hpp"
#include "util/json.hpp"
#include "xml/escape.hpp"

namespace wsc::portal {

using services::google::GoogleClient;
using services::google::GoogleSearchResult;

PortalSite::PortalSite(PortalConfig config)
    : cache_(config.response_cache ? std::move(config.response_cache)
                                   : std::make_shared<cache::ResponseCache>()),
      metrics_(std::move(config.metrics)),
      profiles_(config.profiles ? std::move(config.profiles)
                                : std::make_shared<obs::CostProfiles>()),
      adaptive_(config.adaptive
                    ? std::move(config.adaptive)
                    : std::make_shared<cache::AdaptivePolicy>(profiles_)) {
  if (!metrics_) {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
    cache::register_cache_metrics(*metrics_, *cache_);
    cache::register_adaptive_metrics(*metrics_, *adaptive_);
    obs::register_tracer_metrics(*metrics_, obs::tracer());
    obs::register_process_metrics(*metrics_);
    obs::register_event_metrics(*metrics_, obs::event_log());
  }
  // The portal is the observability showcase: feed the cost-profile
  // registry from every call (no sampling), track hot keys on every
  // lookup, and flag slow miss-path calls — unless the caller configured
  // these knobs explicitly.
  if (!config.options.profiles) {
    config.options.profiles = profiles_;
    config.options.profile_sample_every = 1;
  }
  // Close the loop by default: the Auto representation policy starts at
  // the trait choice and converges on what this deployment's live cost
  // rows say is optimal.  An explicitly configured options.adaptive (even
  // null semantics differ: PortalConfig::adaptive set) still wins.
  if (!config.options.adaptive) config.options.adaptive = adaptive_;
  if (config.options.slow_call_threshold_ns == 0)
    config.options.slow_call_threshold_ns = 50'000'000;  // 50 ms
  // A popular portal query is exactly the thundering-herd shape the
  // single-flight layer guards against (DESIGN.md §11): when the deployer
  // made doGoogleSearch cacheable but left the anti-herd knobs unset,
  // default to serving stale-within-grace while ONE background refresh
  // runs, and to renewing the entry ahead of expiry on hot keys.
  {
    const cache::OperationPolicy& search =
        config.options.policy.lookup("doGoogleSearch");
    if (search.cacheable) {
      if (search.staleness.stale_while_revalidate.count() == 0)
        config.options.policy.stale_while_revalidate("doGoogleSearch",
                                                     std::chrono::seconds(30));
      if (search.refresh_ahead == 0.0)
        config.options.policy.refresh_ahead("doGoogleSearch", 0.8);
    }
  }
  cache_->enable_hot_key_tracking({/*capacity=*/64, /*sample_every=*/1});
  request_latency_ = &metrics_->summary(
      "wsc_portal_request_ns", "Portal page render latency (ns), end to end.");
  google_ = std::make_unique<GoogleClient>(std::move(config.transport),
                                           std::move(config.backend_endpoint),
                                           cache_, std::move(config.options));
  obs::event_log().emit(obs::EventKind::Lifecycle, "portal",
                        "portal telemetry online");
}

void PortalSite::attach_server(const http::HttpServer& server) {
  server_stats_ = &server.stats();
  const http::ServerStats* s = server_stats_;
  auto counter = [&](const char* name, const char* help,
                     const std::atomic<std::uint64_t>& field) {
    metrics_->counter_fn(name, help, {},
                         [s, &field] { return s->get(field); });
  };
  auto gauge = [&](const char* name, const char* help,
                   const std::atomic<std::uint64_t>& field) {
    metrics_->gauge_fn(name, help, {}, [s, &field] {
      return static_cast<double>(s->get(field));
    });
  };
  counter("wsc_server_connections_accepted_total",
          "Connections accepted since start.", s->connections_accepted);
  counter("wsc_server_connections_closed_total",
          "Connections closed since start.", s->connections_closed);
  counter("wsc_server_idle_reaped_total",
          "Keep-alive connections closed by the idle timeout.",
          s->idle_reaped);
  counter("wsc_server_requests_total", "Requests fully parsed.", s->requests);
  counter("wsc_server_responses_total", "Responses written.", s->responses);
  counter("wsc_server_handler_errors_total",
          "Handler exceptions mapped to 500.", s->handler_errors);
  counter("wsc_server_limit_rejected_total",
          "Requests rejected with 431/413 (size caps).", s->limit_rejected);
  counter("wsc_server_protocol_errors_total",
          "Malformed requests / dropped connections.", s->protocol_errors);
  counter("wsc_server_accept_pauses_total",
          "Times accept pacing engaged (backpressure).", s->accept_pauses);
  counter("wsc_server_overflow_closed_total",
          "Connections closed for exceeding the write-buffer cap.",
          s->overflow_closed);
  counter("wsc_server_workers_reaped_total",
          "Finished worker threads joined (threaded mode).",
          s->workers_reaped);
  counter("wsc_server_bytes_in_total", "Request bytes read.", s->bytes_in);
  counter("wsc_server_bytes_out_total", "Response bytes written.",
          s->bytes_out);
  gauge("wsc_server_connections_active", "Connections currently open.",
        s->connections_active);
  gauge("wsc_server_connections_idle",
        "Keep-alive connections parked between requests.",
        s->connections_idle);
  gauge("wsc_server_dispatch_depth",
        "Requests queued or running in the handler pool.", s->dispatch_depth);
  gauge("wsc_server_worker_threads", "Live handler threads.",
        s->worker_threads);
}

std::string PortalSite::profiles_json() const {
  // One composed document: the cost-model rows, the hottest keys, and the
  // cache footprint they add up to — everything the adaptive-selection
  // policy (and cachetop) needs in one scrape.
  std::string out = "{\"window\": \"";
  out += profiles_->window_label();
  out += "\", \"rows\": ";
  out += profiles_->json_rows();
  out += ", \"hot_keys\": [";
  bool first = true;
  for (const obs::TopKSketch::HotKey& hot : cache_->hot_keys(16)) {
    if (!first) out += ", ";
    first = false;
    out += "{\"key\": \"" + util::json::escape(hot.key) +
           "\", \"count\": " + std::to_string(hot.count) +
           ", \"error\": " + std::to_string(hot.error) + "}";
  }
  const cache::ResponseCache::Footprint footprint = cache_->footprint();
  out += "], \"cache\": {\"entries\": " + std::to_string(footprint.entries) +
         ", \"bytes\": " + std::to_string(footprint.bytes) + "}}";
  return out;
}

std::string PortalSite::render_page(const std::string& query) {
  GoogleSearchResult result = google_->doGoogleSearch(query);

  // HTML rendering is intentionally straightforward string building — the
  // portal's own work should be cheap next to the middleware path, as in
  // the paper's setup.
  std::string html = "<html><head><title>Portal: " + xml::escape_text(query) +
                     "</title></head><body>";
  html += "<h1>Results for \"" + xml::escape_text(query) + "\"</h1>";
  html += "<p>about " + std::to_string(result.estimatedTotalResultsCount) +
          " results in " + std::to_string(result.searchTime) + "s</p><ol>";
  for (const auto& e : result.resultElements) {
    html += "<li><a href=\"" + e.URL + "\">" + xml::escape_text(e.title) +
            "</a><br/>" + xml::escape_text(e.snippet) + "<br/><small>" +
            e.hostName + " - " + e.cachedSize + "</small></li>";
  }
  html += "</ol><hr/><ul>";
  for (const auto& dc : result.directoryCategories)
    html += "<li>" + xml::escape_text(dc.fullViewableName) + "</li>";
  html += "</ul></body></html>";
  return html;
}

http::Handler PortalSite::handler() {
  return [this](const http::Request& request) {
    http::Response response;
    ParsedTarget target = parse_target(request.target);
    if (target.path == "/stats") {
      response.headers.set("Content-Type", "application/json");
      std::string body = cache::stats_json(cache_->stats());
      if (server_stats_ && !body.empty() && body.back() == '}') {
        // Splice the connection-layer section into the same document so
        // one scrape sees cache and server state together.
        body.pop_back();
        body += ", \"server\": " + http::server_stats_json(*server_stats_) +
                "}";
      }
      response.body = std::move(body);
      return response;
    }
    if (target.path == "/metrics") {
      response.headers.set("Content-Type",
                           "text/plain; version=0.0.4; charset=utf-8");
      response.body = metrics_->prometheus_text();
      return response;
    }
    if (target.path == "/profiles") {
      response.headers.set("Content-Type", "application/json");
      response.body = profiles_json();
      return response;
    }
    if (target.path == "/adaptive") {
      response.headers.set("Content-Type", "application/json");
      response.body = adaptive_->json();
      return response;
    }
    if (target.path == "/events") {
      response.headers.set("Content-Type", "application/json");
      response.body = obs::event_log().json();
      return response;
    }
    if (target.path != "/portal") {
      response.status = 404;
      response.body = "not found";
      return response;
    }
    auto q = target.query.find("q");
    if (q == target.query.end() || q->second.empty()) {
      response.status = 400;
      response.body = "missing q parameter";
      return response;
    }
    response.headers.set("Content-Type", "text/html; charset=utf-8");
    const std::uint64_t t0 = obs::now_ns();
    response.body = render_page(q->second);
    request_latency_->record(obs::now_ns() - t0);
    return response;
  };
}

}  // namespace wsc::portal
