#include "portal/load_sim.hpp"

#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "http/client.hpp"
#include "portal/query_string.hpp"
#include "util/error.hpp"
#include "util/uri.hpp"

namespace wsc::portal {

namespace {

/// Query used for hit slot `k`: stable member of the warmed hot set.
std::string hot_query(const LoadConfig& config, int k) {
  return "hot-" + std::to_string(config.seed) + "-" +
         std::to_string(k % config.hot_set_size);
}

/// Query for miss slot `j` of client `c`: globally unique, never repeated.
std::string miss_query(const LoadConfig& config, int c, int j) {
  return "miss-" + std::to_string(config.seed) + "-" + std::to_string(c) +
         "-" + std::to_string(j);
}

}  // namespace

LoadReport run_load(const LoadConfig& config, const PageFetcher& fetch) {
  if (config.concurrency < 1 || config.requests_per_client < 1 ||
      config.hot_set_size < 1 || config.hit_ratio < 0 || config.hit_ratio > 1)
    throw Error("run_load: invalid configuration");

  // Warm the hot set (every entry cached before measurement starts).
  for (int k = 0; k < config.hot_set_size; ++k) fetch(0, hot_query(config, k));

  std::mutex report_mu;
  LoadReport report;

  auto client_loop = [&](int c) {
    util::Histogram local;
    // Unmeasured per-client warmup: opens this client's connection and
    // faults in its thread stacks so the measured window starts steady.
    fetch(c, hot_query(config, c));
    int hits_issued = 0;
    for (int j = 0; j < config.requests_per_client; ++j) {
      // Exact interleaving: issue a hit when the running hit count falls
      // below the target prefix ratio.
      bool hit = static_cast<double>(hits_issued) <
                 config.hit_ratio * static_cast<double>(j + 1) - 1e-9;
      std::string query;
      if (hit) {
        query = hot_query(config, c + hits_issued);  // offset per client
        ++hits_issued;
      } else {
        query = miss_query(config, c, j);
      }
      auto t0 = std::chrono::steady_clock::now();
      fetch(c, query);
      auto t1 = std::chrono::steady_clock::now();
      local.record(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0));
    }
    std::lock_guard lock(report_mu);
    report.latency.merge(local);
  };

  auto start = std::chrono::steady_clock::now();
  if (config.concurrency == 1) {
    client_loop(0);
  } else {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(config.concurrency));
    for (int c = 0; c < config.concurrency; ++c)
      clients.emplace_back(client_loop, c);
    for (auto& t : clients) t.join();
  }
  auto end = std::chrono::steady_clock::now();

  report.duration_seconds =
      std::chrono::duration<double>(end - start).count();
  report.requests = static_cast<std::uint64_t>(config.concurrency) *
                    static_cast<std::uint64_t>(config.requests_per_client);
  report.throughput_rps =
      report.duration_seconds > 0
          ? static_cast<double>(report.requests) / report.duration_seconds
          : 0.0;
  return report;
}

LoadReport run_load_http(const std::string& portal_base_url,
                         const LoadConfig& config) {
  util::Uri base = util::Uri::parse(portal_base_url);

  // One persistent connection per virtual client (thread), lazily opened.
  std::vector<std::unique_ptr<http::HttpConnection>> connections(
      static_cast<std::size_t>(config.concurrency));
  std::mutex init_mu;

  PageFetcher fetch = [&](int c, const std::string& query) {
    auto& conn = connections[static_cast<std::size_t>(c)];
    if (!conn) {
      std::lock_guard lock(init_mu);
      if (!conn)
        conn = std::make_unique<http::HttpConnection>(base.host,
                                                      base.effective_port());
    }
    http::Request request;
    request.method = "GET";
    request.target = "/portal?q=" + url_encode(query);
    request.headers.set("Host", base.host);
    http::Response response = conn->round_trip(request);
    if (response.status != 200)
      throw HttpError(response.status, "portal request failed");
  };
  return run_load(config, fetch);
}

}  // namespace wsc::portal
