#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

namespace wsc::obs {

namespace {

/// Aggregation key: the four labels, NUL-separated (none of them may
/// contain NUL — they are operation/representation names).
std::string group_key(const CallLabels& labels) {
  std::string key;
  key.reserve(labels.service.size() + labels.operation.size() +
              labels.representation.size() + 4);
  key += labels.service;
  key += '\0';
  key += labels.operation;
  key += '\0';
  key += labels.representation;
  key += '\0';
  key += static_cast<char>('0' + static_cast<int>(labels.outcome));
  return key;
}

std::atomic<std::uint64_t> g_next_tracer_id{1};

}  // namespace

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::KeyGen: return "keygen";
    case Stage::Lookup: return "lookup";
    case Stage::Retrieve: return "retrieve";
    case Stage::Wire: return "wire";
    case Stage::Backoff: return "backoff";
    case Stage::Parse: return "parse";
    case Stage::Deserialize: return "deserialize";
    case Stage::Store: return "store";
  }
  return "unknown";
}

std::string_view outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Hit: return "hit";
    case Outcome::Miss: return "miss";
    case Outcome::Revalidated: return "revalidated";
    case Outcome::StaleServe: return "stale_serve";
    case Outcome::Uncacheable: return "uncacheable";
    case Outcome::Error: return "error";
    case Outcome::Coalesced: return "coalesced";
    case Outcome::StaleRevalidate: return "stale_revalidate";
  }
  return "unknown";
}

std::uint64_t CallRecord::stage_sum() const {
  std::uint64_t sum = 0;
  for (std::uint64_t ns : stage_ns) sum += ns;
  return sum;
}

void StageAgg::add(std::uint64_t ns) {
  ++count;
  sum_ns += ns;
  min_ns = std::min(min_ns, ns);
  max_ns = std::max(max_ns, ns);
}

void StageAgg::merge(const StageAgg& other) {
  count += other.count;
  sum_ns += other.sum_ns;
  min_ns = std::min(min_ns, other.min_ns);
  max_ns = std::max(max_ns, other.max_ns);
}

double GroupSummary::mean_stage_sum_ns() const {
  if (calls == 0) return 0.0;
  double sum = 0;
  for (const StageAgg& agg : stages)
    sum += static_cast<double>(agg.sum_ns);
  return sum / static_cast<double>(calls);
}

const GroupSummary* TraceSummary::find(std::string_view operation,
                                       Outcome outcome,
                                       std::string_view representation) const {
  for (const GroupSummary& g : groups) {
    if (g.labels.operation != operation || g.labels.outcome != outcome)
      continue;
    if (!representation.empty() && g.labels.representation != representation)
      continue;
    return &g;
  }
  return nullptr;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Tracer

struct Tracer::ThreadState {
  std::mutex mu;
  std::unordered_map<std::string, GroupSummary> groups;
  std::vector<CallRecord> ring;
  std::size_t ring_next = 0;
  std::uint64_t calls = 0;
  std::uint64_t dropped = 0;  // exemplars overwritten in the ring
};

namespace {
/// Thread-local cache of (tracer id -> state) so each thread resolves its
/// state without the tracer-wide lock after first use.  Entries for dead
/// tracers are harmless: ids are never reused.
struct TlsEntry {
  std::uint64_t tracer_id;
  std::shared_ptr<Tracer::ThreadState> state;
};
thread_local std::vector<TlsEntry> t_states;
thread_local CallTrace* t_current_call = nullptr;
}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(std::max<std::size_t>(1, ring_capacity)),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

void Tracer::set_sample_every(std::uint32_t n) {
  sample_every_.store(std::max<std::uint32_t>(1, n),
                      std::memory_order_relaxed);
}

Tracer::ThreadState& Tracer::local_state() {
  for (const TlsEntry& entry : t_states) {
    if (entry.tracer_id == id_) return *entry.state;
  }
  auto state = std::make_shared<ThreadState>();
  state->ring.reserve(ring_capacity_);
  {
    std::lock_guard lock(mu_);
    states_.push_back(state);
  }
  t_states.push_back({id_, state});
  return *state;
}

void Tracer::publish(CallRecord&& record) {
  ThreadState& state = local_state();
  std::uint32_t every = sample_every();
  std::lock_guard lock(state.mu);
  GroupSummary& group = state.groups[group_key(record.labels)];
  if (group.calls == 0) group.labels = record.labels;
  ++group.calls;
  group.total_sum_ns += record.total_ns;
  group.total_hist.record(record.total_ns);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (record.stage_ns[i] != 0)
      group.stages[i].add(record.stage_ns[i]);
  }
  if (state.calls++ % every == 0) {
    if (state.ring.size() < ring_capacity_) {
      state.ring.push_back(std::move(record));
    } else {
      state.ring[state.ring_next] = std::move(record);
      state.ring_next = (state.ring_next + 1) % ring_capacity_;
      ++state.dropped;
    }
  }
}

TraceSummary Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard lock(mu_);
    states = states_;
  }
  std::unordered_map<std::string, GroupSummary> merged;
  TraceSummary out;
  for (const auto& state : states) {
    std::lock_guard lock(state->mu);
    for (const auto& [key, group] : state->groups) {
      auto [it, inserted] = merged.try_emplace(key, GroupSummary{});
      GroupSummary& dst = it->second;
      if (inserted) dst.labels = group.labels;
      dst.calls += group.calls;
      dst.total_sum_ns += group.total_sum_ns;
      dst.total_hist.merge(group.total_hist);
      for (std::size_t i = 0; i < kStageCount; ++i)
        dst.stages[i].merge(group.stages[i]);
    }
    // Ring order: oldest first (the slot about to be overwritten is the
    // oldest once the ring has wrapped).
    for (std::size_t i = 0; i < state->ring.size(); ++i) {
      std::size_t idx = state->ring.size() == ring_capacity_
                            ? (state->ring_next + i) % ring_capacity_
                            : i;
      out.exemplars.push_back(state->ring[idx]);
    }
    out.dropped_exemplars += state->dropped;
  }
  std::vector<std::pair<std::string, GroupSummary>> sorted(
      std::make_move_iterator(merged.begin()),
      std::make_move_iterator(merged.end()));
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.groups.reserve(sorted.size());
  for (auto& [key, group] : sorted) out.groups.push_back(std::move(group));
  return out;
}

void Tracer::reset() {
  std::vector<std::shared_ptr<ThreadState>> states;
  {
    std::lock_guard lock(mu_);
    states = states_;
  }
  for (const auto& state : states) {
    std::lock_guard lock(state->mu);
    state->groups.clear();
    state->ring.clear();
    state->ring_next = 0;
    state->calls = 0;
    state->dropped = 0;
  }
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

// ---------------------------------------------------------------------------
// CallTrace

CallTrace::CallTrace(Tracer& tracer, std::string_view service,
                     std::string_view operation) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  record_.labels.service = service;
  record_.labels.operation = operation;
  prev_ = t_current_call;
  t_current_call = this;
  // Start the clock only after the label setup so the bookkeeping above is
  // excluded from total_ns and the stage sum can account for the total.
  start_ns_ = now_ns();
}

CallTrace::CallTrace(std::string_view service, std::string_view operation)
    : CallTrace(obs::tracer(), service, operation) {}

CallTrace::~CallTrace() {
  if (!tracer_) return;
  record_.total_ns = now_ns() - start_ns_;
  t_current_call = prev_;
  tracer_->publish(std::move(record_));
}

void CallTrace::set_representation(std::string_view rep) {
  if (tracer_) record_.labels.representation = rep;
}

void CallTrace::set_outcome(Outcome outcome) {
  if (tracer_) record_.labels.outcome = outcome;
}

void CallTrace::add_stage(Stage s, std::uint64_t ns) {
  if (tracer_) record_.stage_ns[static_cast<std::size_t>(s)] += ns;
}

std::uint64_t CallTrace::stage_ns(Stage s) const {
  return tracer_ ? record_.stage_ns[static_cast<std::size_t>(s)] : 0;
}

CallTrace* current_call() { return t_current_call; }

}  // namespace wsc::obs
