#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace wsc::obs {

namespace {

/// Fixed-point-ish value formatting: integers print without exponent or
/// decimals so counter exports (and golden tests) stay readable.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const char* kind_name(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::Counter: return "counter";
    case MetricsRegistry::Kind::Gauge: return "gauge";
    case MetricsRegistry::Kind::Summary: return "summary";
  }
  return "untyped";
}

bool valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

void check_name(const std::string& name) {
  if (!valid_metric_name(name))
    throw Error("invalid metric name '" + name + "'");
}

void check_labels(const Labels& labels) {
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!valid_label_name(k))
      throw Error("invalid label name '" + k + "'");
  }
}

std::string quantile_string(double q) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", q);
  return buf;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

MetricsRegistry::MetricsRegistry(WindowOptions window)
    : window_(std::move(window)),
      window_suffix_("_last" + window_.span_label()),
      window_label_(window_.span_label()) {}

std::string MetricsRegistry::windowed_name(
    const std::string& family_name) const {
  constexpr std::string_view kTotal = "_total";
  if (family_name.size() > kTotal.size() &&
      family_name.compare(family_name.size() - kTotal.size(), kTotal.size(),
                          kTotal) == 0) {
    return family_name.substr(0, family_name.size() - kTotal.size()) +
           window_suffix_;
  }
  return family_name + window_suffix_;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, const std::string& help, Kind kind) {
  check_name(name);
  for (auto& family : families_) {
    if (family->name != name) continue;
    if (family->kind != kind)
      throw Error("metric family '" + name +
                  "' re-registered with a different kind");
    if (family->help.empty()) family->help = help;
    return *family;
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  check_labels(labels);
  std::lock_guard lock(mu_);
  Family& family = family_locked(name, help, Kind::Counter);
  for (auto& owned : family.counters) {
    if (owned.labels == labels) return *owned.counter;
  }
  family.counters.push_back(
      {std::move(labels), std::make_unique<Counter>(window_)});
  return *family.counters.back().counter;
}

Summary& MetricsRegistry::summary(const std::string& name,
                                  const std::string& help, Labels labels,
                                  int sub_bucket_bits) {
  check_labels(labels);
  std::lock_guard lock(mu_);
  Family& family = family_locked(name, help, Kind::Summary);
  for (auto& owned : family.summaries) {
    if (owned.labels == labels) return *owned.summary;
  }
  family.summaries.push_back(
      {std::move(labels), std::make_unique<Summary>(sub_bucket_bits, window_)});
  return *family.summaries.back().summary;
}

void MetricsRegistry::counter_fn(const std::string& name,
                                 const std::string& help, Labels labels,
                                 std::function<std::uint64_t()> fn) {
  check_labels(labels);
  std::lock_guard lock(mu_);
  Family& family = family_locked(name, help, Kind::Counter);
  family.callbacks.push_back(
      {std::move(labels), [fn = std::move(fn)] {
         return static_cast<double>(fn());
       }});
}

void MetricsRegistry::gauge_fn(const std::string& name,
                               const std::string& help, Labels labels,
                               std::function<double()> fn) {
  check_labels(labels);
  std::lock_guard lock(mu_);
  Family& family = family_locked(name, help, Kind::Gauge);
  family.callbacks.push_back({std::move(labels), std::move(fn)});
}

void MetricsRegistry::family(const std::string& name, const std::string& help,
                             Kind kind) {
  std::lock_guard lock(mu_);
  family_locked(name, help, kind);
}

void MetricsRegistry::collector(std::function<void(std::vector<Sample>&)> fn) {
  std::lock_guard lock(mu_);
  collectors_.push_back(std::move(fn));
}

const std::vector<double>& MetricsRegistry::summary_quantiles() {
  static const std::vector<double> quantiles = {0.5, 0.9, 0.99, 0.999};
  return quantiles;
}

std::vector<MetricsRegistry::Export> MetricsRegistry::gather() const {
  std::lock_guard lock(mu_);
  std::vector<Export> exports;
  auto find_export = [&exports](const std::string& name) -> Export* {
    for (Export& e : exports) {
      if (e.meta.name == name) return &e;
    }
    return nullptr;
  };

  // One consistent `now` for every windowed view in this scrape.
  const std::uint64_t now = window_.now ? window_.now() : now_ns();

  for (const auto& family : families_) {
    Export e;
    e.meta = {family->name, family->help, family->kind};
    // The windowed twin family, filled alongside the lifetime samples for
    // owned instruments (callback/collector samples have no history).
    Export w;
    const std::string wname = windowed_name(family->name);
    w.meta = {wname, family->help + " (" + window_label_ + " window)",
              family->kind == Kind::Counter ? Kind::Gauge : family->kind};
    for (const auto& owned : family->counters) {
      e.samples.push_back({family->name, owned.labels,
                           static_cast<double>(owned.counter->value())});
      w.samples.push_back({wname, owned.labels,
                           static_cast<double>(owned.counter->windowed(now))});
    }
    for (const auto& owned : family->summaries) {
      util::Histogram hist = owned.summary->snapshot();
      for (double q : summary_quantiles()) {
        Labels labels = owned.labels;
        labels.emplace_back("quantile", quantile_string(q));
        e.samples.push_back({family->name, std::move(labels),
                             static_cast<double>(hist.percentile(q))});
      }
      e.samples.push_back({family->name + "_sum", owned.labels,
                           static_cast<double>(hist.sum())});
      e.samples.push_back({family->name + "_count", owned.labels,
                           static_cast<double>(hist.count())});
      util::Histogram window = owned.summary->windowed_snapshot(now);
      for (double q : summary_quantiles()) {
        Labels labels = owned.labels;
        labels.emplace_back("quantile", quantile_string(q));
        w.samples.push_back({wname, std::move(labels),
                             static_cast<double>(window.percentile(q))});
      }
      w.samples.push_back({wname + "_sum", owned.labels,
                           static_cast<double>(window.sum())});
      w.samples.push_back({wname + "_count", owned.labels,
                           static_cast<double>(window.count())});
    }
    for (const auto& callback : family->callbacks) {
      e.samples.push_back({family->name, callback.labels, callback.fn()});
    }
    exports.push_back(std::move(e));
    if (!w.samples.empty()) exports.push_back(std::move(w));
  }

  std::vector<Sample> collected;
  for (const auto& fn : collectors_) fn(collected);
  for (Sample& sample : collected) {
    // Attach to the declared family; "_sum"/"_count" fold into a summary
    // family of the base name; undeclared names become implicit gauges.
    Export* target = find_export(sample.name);
    if (!target) {
      for (const char* suffix : {"_sum", "_count"}) {
        std::size_t len = std::string(suffix).size();
        if (sample.name.size() > len &&
            sample.name.compare(sample.name.size() - len, len, suffix) == 0) {
          Export* base =
              find_export(sample.name.substr(0, sample.name.size() - len));
          if (base && base->meta.kind == Kind::Summary) target = base;
        }
      }
    }
    if (!target) {
      exports.push_back({{sample.name, "", Kind::Gauge}, {}});
      target = &exports.back();
    }
    target->samples.push_back(std::move(sample));
  }

  std::sort(exports.begin(), exports.end(),
            [](const Export& a, const Export& b) {
              return a.meta.name < b.meta.name;
            });
  return exports;
}

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  for (const Export& e : gather()) {
    if (e.samples.empty()) continue;
    if (!e.meta.help.empty())
      out += "# HELP " + e.meta.name + " " + e.meta.help + "\n";
    out += "# TYPE " + e.meta.name + " " + kind_name(e.meta.kind) + "\n";
    for (const Sample& sample : e.samples) {
      out += sample.name + render_labels(sample.labels) + " " +
             format_value(sample.value) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::json_text() const {
  std::string out = "{";
  bool first_family = true;
  for (const Export& e : gather()) {
    if (e.samples.empty()) continue;
    if (!first_family) out += ",";
    first_family = false;
    out += "\n  \"" + json_escape(e.meta.name) + "\": {\"type\": \"" +
           kind_name(e.meta.kind) + "\", \"samples\": [";
    for (std::size_t i = 0; i < e.samples.size(); ++i) {
      const Sample& sample = e.samples[i];
      if (i) out += ",";
      out += "\n    {\"name\": \"" + json_escape(sample.name) +
             "\", \"labels\": {";
      for (std::size_t j = 0; j < sample.labels.size(); ++j) {
        if (j) out += ", ";
        out += "\"" + json_escape(sample.labels[j].first) + "\": \"" +
               json_escape(sample.labels[j].second) + "\"";
      }
      out += "}, \"value\": " + format_value(sample.value) + "}";
    }
    out += "\n  ]}";
  }
  out += "\n}\n";
  return out;
}

void register_tracer_metrics(MetricsRegistry& registry, const Tracer& tracer) {
  registry.family("wsc_calls_total",
                  "Traced middleware calls by service/operation/"
                  "representation/outcome.",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_call_ns",
                  "End-to-end traced call latency in nanoseconds.",
                  MetricsRegistry::Kind::Summary);
  registry.family("wsc_stage_ns_total",
                  "Nanoseconds attributed to each pipeline stage.",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_stage_calls_total",
                  "Calls in which each pipeline stage ran.",
                  MetricsRegistry::Kind::Counter);
  registry.collector([&tracer](std::vector<Sample>& samples) {
    TraceSummary summary = tracer.snapshot();
    for (const GroupSummary& group : summary.groups) {
      Labels base = {{"service", group.labels.service},
                     {"operation", group.labels.operation},
                     {"representation", group.labels.representation},
                     {"outcome", std::string(outcome_name(group.labels.outcome))}};
      samples.push_back(
          {"wsc_calls_total", base, static_cast<double>(group.calls)});
      for (double q : MetricsRegistry::summary_quantiles()) {
        Labels labels = base;
        labels.emplace_back("quantile", quantile_string(q));
        samples.push_back(
            {"wsc_call_ns", std::move(labels),
             static_cast<double>(group.total_hist.percentile(q))});
      }
      samples.push_back({"wsc_call_ns_sum", base,
                         static_cast<double>(group.total_sum_ns)});
      samples.push_back(
          {"wsc_call_ns_count", base, static_cast<double>(group.calls)});
      for (std::size_t i = 0; i < kStageCount; ++i) {
        const StageAgg& agg = group.stages[i];
        if (agg.count == 0) continue;
        Labels labels = base;
        labels.emplace_back("stage",
                            std::string(stage_name(static_cast<Stage>(i))));
        Labels count_labels = labels;
        samples.push_back({"wsc_stage_ns_total", std::move(labels),
                           static_cast<double>(agg.sum_ns)});
        samples.push_back({"wsc_stage_calls_total", std::move(count_labels),
                           static_cast<double>(agg.count)});
      }
    }
  });
}

}  // namespace wsc::obs
