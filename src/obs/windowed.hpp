// Windowed aggregation: a ring of time-bucketed sub-aggregates behind the
// lifetime counters/summaries, so every metric can answer "what happened
// in the last minute" next to "what happened since boot".
//
// Both instruments keep the exact lifetime aggregate they always had and
// add a fixed ring of buckets, one per `bucket_width` slice of time
// (default 12 x 5s = a rolling 60s window).  A bucket is reused once its
// epoch falls out of the window, so memory is constant and no background
// rotation thread exists — rotation happens lazily on the write path.
//
// Accuracy contract:
//   * lifetime totals are exact (same atomics / histogram as before);
//   * WindowedCounter's window value is approximate at bucket boundaries:
//     a reader racing the bucket-reclaim CAS can miss increments that land
//     in the instant of rotation.  The loss is bounded to writes racing
//     one rotation — fine for a rate/ratio display, never for billing;
//   * WindowedSummary rotates under its existing mutex, so its window is
//     exact.
//
// Every mutating/reading entry point has an overload taking an explicit
// `now_ns` so tests drive rotation with a manual clock; the default pulls
// from WindowOptions::now (obs::now_ns() when unset).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace wsc::obs {

std::uint64_t now_ns();  // trace.cpp — the steady telemetry timeline

struct WindowOptions {
  std::size_t buckets = 12;
  std::chrono::nanoseconds bucket_width = std::chrono::seconds(5);
  /// Injectable time source (nanoseconds); empty means obs::now_ns().
  std::function<std::uint64_t()> now;

  std::uint64_t width_ns() const {
    auto w = bucket_width.count();
    return w > 0 ? static_cast<std::uint64_t>(w) : 1;
  }
  /// Window span as a label suffix: 12 x 5s -> "60s".
  std::string span_label() const;
};

/// Monotonic counter with an exact lifetime total and an approximate
/// rolling-window total.  inc() is lock-free: one relaxed fetch_add on the
/// lifetime total plus one fetch_add (and, once per bucket_width, a CAS)
/// on the current bucket.
class WindowedCounter {
 public:
  explicit WindowedCounter(WindowOptions options = {});

  void inc(std::uint64_t n = 1) { inc(n, now_()); }
  void inc(std::uint64_t n, std::uint64_t now_ns);

  /// Exact lifetime total.
  std::uint64_t value() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Sum over buckets still inside the window ending at `now_ns`.
  std::uint64_t windowed() const { return windowed(now_()); }
  std::uint64_t windowed(std::uint64_t now_ns) const;

 private:
  struct Bucket {
    std::atomic<std::uint64_t> epoch{0};  // 0 = never used
    std::atomic<std::uint64_t> value{0};
  };

  std::uint64_t now_() const { return now_fn_ ? now_fn_() : obs::now_ns(); }
  std::uint64_t epoch_of(std::uint64_t now_ns) const {
    return now_ns / width_ns_ + 1;  // +1 keeps 0 as the "empty" sentinel
  }

  std::atomic<std::uint64_t> total_{0};
  std::vector<Bucket> buckets_;
  std::uint64_t width_ns_;
  std::function<std::uint64_t()> now_fn_;
};

/// Latency distribution with an exact lifetime histogram and an exact
/// rolling-window histogram (both behind the instrument's one mutex, as
/// the pre-windowed Summary already was).
class WindowedSummary {
 public:
  explicit WindowedSummary(int sub_bucket_bits = 5, WindowOptions options = {});

  void record(std::uint64_t value) { record(value, now_()); }
  void record(std::uint64_t value, std::uint64_t now_ns);
  void record(std::chrono::nanoseconds d) {
    record(static_cast<std::uint64_t>(d.count() < 0 ? 0 : d.count()));
  }

  /// Lifetime distribution.
  util::Histogram snapshot() const;

  /// Distribution over the window ending at `now_ns` (merged buckets).
  /// An empty window yields an empty histogram: count()==0, percentiles 0.
  util::Histogram windowed_snapshot() const {
    return windowed_snapshot(now_());
  }
  util::Histogram windowed_snapshot(std::uint64_t now_ns) const;

 private:
  struct Slot {
    std::uint64_t epoch = 0;
    util::Histogram hist;
    Slot(int bits) : hist(bits) {}
  };

  std::uint64_t now_() const { return now_fn_ ? now_fn_() : obs::now_ns(); }
  std::uint64_t epoch_of(std::uint64_t now_ns) const {
    return now_ns / width_ns_ + 1;
  }

  mutable std::mutex mu_;
  int sub_bits_;
  util::Histogram lifetime_;
  std::vector<Slot> slots_;
  std::uint64_t width_ns_;
  std::function<std::uint64_t()> now_fn_;
};

}  // namespace wsc::obs
