#include "obs/profiles.hpp"

#include <cstdio>

#include "util/json.hpp"

namespace wsc::obs {

namespace {

std::string make_key(std::string_view service, std::string_view operation,
                     std::string_view representation) {
  std::string key;
  key.reserve(service.size() + operation.size() + representation.size() + 2);
  key.append(service);
  key.push_back('\0');
  key.append(operation);
  key.push_back('\0');
  key.append(representation);
  return key;
}

void split_key(const std::string& key, std::string& service,
               std::string& operation, std::string& representation) {
  const std::size_t a = key.find('\0');
  const std::size_t b = key.find('\0', a + 1);
  service = key.substr(0, a);
  operation = key.substr(a + 1, b - a - 1);
  representation = key.substr(b + 1);
}

CostProfiles::LatencyStat latency_stat(const WindowedSummary& summary,
                                       std::uint64_t now) {
  CostProfiles::LatencyStat stat;
  util::Histogram life = summary.snapshot();
  stat.count = life.count();
  stat.sum_ns = life.sum();
  stat.mean_ns = life.mean();
  stat.p50_ns = static_cast<double>(life.percentile(0.5));
  stat.p99_ns = static_cast<double>(life.percentile(0.99));
  stat.p999_ns = static_cast<double>(life.percentile(0.999));
  util::Histogram window = summary.windowed_snapshot(now);
  stat.window_count = window.count();
  stat.window_p99_ns = static_cast<double>(window.percentile(0.99));
  return stat;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_latency(std::string& out, const char* name,
                    const CostProfiles::LatencyStat& s) {
  out += std::string("\"") + name + "\": {\"count\": " +
         std::to_string(s.count) + ", \"mean_ns\": " + num(s.mean_ns) +
         ", \"p50_ns\": " + num(s.p50_ns) + ", \"p99_ns\": " + num(s.p99_ns) +
         ", \"p999_ns\": " + num(s.p999_ns) +
         ", \"window_count\": " + std::to_string(s.window_count) +
         ", \"window_p99_ns\": " + num(s.window_p99_ns) + "}";
}

}  // namespace

CostProfiles::CostProfiles(WindowOptions window)
    : window_(std::move(window)), window_label_(window_.span_label()) {}

CostProfiles::Cell& CostProfiles::cell_locked(
    std::string_view service, std::string_view operation,
    std::string_view representation) {
  std::string key = make_key(service, operation, representation);
  auto it = cells_.find(key);
  if (it == cells_.end())
    it = cells_.emplace(std::move(key), std::make_unique<Cell>(window_))
             .first;
  return *it->second;
}

void CostProfiles::record_hit(std::string_view service,
                              std::string_view operation,
                              std::string_view representation,
                              std::uint64_t hit_ns, std::uint64_t weight) {
  std::lock_guard lock(mu_);
  Cell& cell = cell_locked(service, operation, representation);
  cell.hits.inc(weight ? weight : 1);
  cell.hit_ns.record(hit_ns);
}

void CostProfiles::record_miss(std::string_view service,
                               std::string_view operation,
                               std::string_view representation,
                               std::uint64_t deserialize_ns,
                               std::uint64_t store_ns, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  Cell& cell = cell_locked(service, operation, representation);
  cell.misses.inc();
  cell.deserialize_ns.record(deserialize_ns);
  if (bytes > 0) {
    cell.store_ns.record(store_ns);
    cell.stored_entries += 1;
    cell.bytes_sum += bytes;
  }
}

void CostProfiles::record_stale(std::string_view service,
                                std::string_view operation,
                                std::string_view representation) {
  std::lock_guard lock(mu_);
  cell_locked(service, operation, representation).stale_serves.inc();
}

void CostProfiles::record_probe(std::string_view service,
                                std::string_view operation,
                                std::string_view representation,
                                std::uint64_t hit_ns, std::uint64_t store_ns,
                                std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  Cell& cell = cell_locked(service, operation, representation);
  cell.hit_ns.record(hit_ns);
  cell.store_ns.record(store_ns);
  if (bytes > 0) {
    cell.stored_entries += 1;
    cell.bytes_sum += bytes;
  }
}

std::vector<CostProfiles::Row> CostProfiles::snapshot() const {
  const std::uint64_t now = window_.now ? window_.now() : now_ns();
  std::vector<Row> rows;
  std::lock_guard lock(mu_);
  rows.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    Row row;
    split_key(key, row.service, row.operation, row.representation);
    row.hits = cell->hits.value();
    row.misses = cell->misses.value();
    row.stale_serves = cell->stale_serves.value();
    row.window_hits = cell->hits.windowed(now);
    row.window_misses = cell->misses.windowed(now);
    const std::uint64_t total = row.hits + row.misses;
    row.hit_ratio =
        total ? static_cast<double>(row.hits) / static_cast<double>(total) : 0;
    const std::uint64_t wtotal = row.window_hits + row.window_misses;
    row.window_hit_ratio =
        wtotal ? static_cast<double>(row.window_hits) /
                     static_cast<double>(wtotal)
               : 0;
    row.hit_ns = latency_stat(cell->hit_ns, now);
    row.store_ns = latency_stat(cell->store_ns, now);
    row.deserialize_ns = latency_stat(cell->deserialize_ns, now);
    row.stored_entries = cell->stored_entries;
    row.bytes_sum = cell->bytes_sum;
    row.bytes_per_entry =
        cell->stored_entries
            ? static_cast<double>(cell->bytes_sum) /
                  static_cast<double>(cell->stored_entries)
            : 0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string CostProfiles::json_rows() const {
  std::vector<Row> rows = snapshot();
  std::string out = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"service\": \"" + util::json::escape(r.service) +
           "\", \"operation\": \"" + util::json::escape(r.operation) +
           "\", \"representation\": \"" +
           util::json::escape(r.representation) +
           "\", \"hits\": " + std::to_string(r.hits) +
           ", \"misses\": " + std::to_string(r.misses) +
           ", \"stale_serves\": " + std::to_string(r.stale_serves) +
           ", \"window_hits\": " + std::to_string(r.window_hits) +
           ", \"window_misses\": " + std::to_string(r.window_misses) +
           ", \"hit_ratio\": " + num(r.hit_ratio) +
           ", \"window_hit_ratio\": " + num(r.window_hit_ratio) + ", ";
    append_latency(out, "hit", r.hit_ns);
    out += ", ";
    append_latency(out, "store", r.store_ns);
    out += ", ";
    append_latency(out, "deserialize", r.deserialize_ns);
    out += ", \"stored_entries\": " + std::to_string(r.stored_entries) +
           ", \"bytes_sum\": " + std::to_string(r.bytes_sum) +
           ", \"bytes_per_entry\": " + num(r.bytes_per_entry) + "}";
  }
  out += rows.empty() ? "]" : "\n  ]";
  return out;
}

}  // namespace wsc::obs
