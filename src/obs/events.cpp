#include "obs/events.hpp"

#include <algorithm>

#include "obs/windowed.hpp"  // now_ns declaration
#include "util/json.hpp"

namespace wsc::obs {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Lifecycle: return "lifecycle";
    case EventKind::EvictionBurst: return "eviction_burst";
    case EventKind::BreakerOpen: return "breaker_open";
    case EventKind::BreakerProbe: return "breaker_probe";
    case EventKind::StaleServe: return "stale_serve";
    case EventKind::SlowCall: return "slow_call";
    case EventKind::DeadlineHit: return "deadline_hit";
    case EventKind::LeaderFailure: return "leader_failure";
    case EventKind::RefreshAhead: return "refresh_ahead";
    case EventKind::IdleReap: return "idle_reap";
    case EventKind::AcceptPause: return "accept_pause";
    case EventKind::AdaptiveSwitch: return "adaptive_switch";
    case EventKind::MemoryPressure: return "memory_pressure";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity ? capacity : 1), ring_(capacity_) {}

void EventLog::emit(EventKind kind, std::string_view scope,
                    std::string_view detail, std::uint64_t value) {
  emit(kind, scope, detail, value, now_ns());
}

void EventLog::emit(EventKind kind, std::string_view scope,
                    std::string_view detail, std::uint64_t value,
                    std::uint64_t now) {
  emitted_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  Event& slot = ring_[(next_seq_ - 1) % capacity_];
  slot.seq = next_seq_++;
  slot.ts_ns = now;
  slot.kind = kind;
  slot.scope.assign(scope);    // assign() reuses the slot's capacity
  slot.detail.assign(detail);
  slot.value = value;
}

std::vector<Event> EventLog::snapshot(std::uint64_t min_seq) const {
  std::vector<Event> out;
  std::lock_guard lock(mu_);
  out.reserve(std::min<std::uint64_t>(capacity_, next_seq_ - 1));
  // Oldest live slot first: sequences are dense, so walk the ring in seq
  // order starting at next_seq_ - capacity_.
  const std::uint64_t last = next_seq_ - 1;
  const std::uint64_t first =
      last > capacity_ ? last - capacity_ + 1 : 1;
  for (std::uint64_t seq = std::max(first, min_seq + 1); seq <= last; ++seq) {
    const Event& e = ring_[(seq - 1) % capacity_];
    if (e.seq == seq) out.push_back(e);
  }
  return out;
}

std::uint64_t EventLog::dropped() const {
  const std::uint64_t total = emitted_.load(std::memory_order_relaxed);
  return total > capacity_ ? total - capacity_ : 0;
}

void EventLog::clear() {
  std::lock_guard lock(mu_);
  for (Event& e : ring_) e = Event{};
  next_seq_ = 1;
  emitted_.store(0, std::memory_order_relaxed);
  for (auto& c : by_kind_) c.store(0, std::memory_order_relaxed);
}

std::string EventLog::json(std::size_t limit) const {
  std::vector<Event> events = snapshot();
  if (limit && events.size() > limit)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(limit));
  const std::uint64_t now = now_ns();
  std::string out = "{\n  \"dropped\": " + std::to_string(dropped()) +
                    ",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    const std::uint64_t age_ms =
        now > e.ts_ns ? (now - e.ts_ns) / 1'000'000ull : 0;
    out += i ? ",\n    " : "\n    ";
    out += "{\"seq\": " + std::to_string(e.seq) + ", \"kind\": \"" +
           std::string(event_kind_name(e.kind)) + "\", \"scope\": \"" +
           util::json::escape(e.scope) + "\", \"detail\": \"" +
           util::json::escape(e.detail) +
           "\", \"value\": " + std::to_string(e.value) +
           ", \"age_ms\": " + std::to_string(age_ms) + "}";
  }
  out += events.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

EventLog& event_log() {
  static EventLog* instance = new EventLog(512);  // leaked: outlives statics
  return *instance;
}

}  // namespace wsc::obs
