// Process metadata metrics: the anchors a dashboard needs to interpret
// windowed rates — when the process started (so lifetime counters can be
// turned into averages) and exactly what build is running.
#pragma once

#include "obs/metrics.hpp"

namespace wsc::obs {

class EventLog;  // events.hpp

/// Register:
///   process_start_time_seconds  gauge, unix time of process start
///                               (captured once at static initialization);
///   wsc_build_info              gauge fixed at 1, labels git/compiler/
///                               build — the conventional *_info pattern.
void register_process_metrics(MetricsRegistry& registry);

/// Export per-kind event counters: wsc_events_total{kind="..."}.
void register_event_metrics(MetricsRegistry& registry, const EventLog& log);

}  // namespace wsc::obs
