#include "obs/windowed.hpp"

namespace wsc::obs {

std::string WindowOptions::span_label() const {
  const std::uint64_t span_ns = buckets * width_ns();
  const std::uint64_t seconds = span_ns / 1'000'000'000ull;
  if (seconds > 0) return std::to_string(seconds) + "s";
  return std::to_string(span_ns / 1'000'000ull) + "ms";
}

WindowedCounter::WindowedCounter(WindowOptions options)
    : buckets_(options.buckets ? options.buckets : 1),
      width_ns_(options.width_ns()),
      now_fn_(std::move(options.now)) {}

void WindowedCounter::inc(std::uint64_t n, std::uint64_t now_ns) {
  total_.fetch_add(n, std::memory_order_relaxed);
  const std::uint64_t epoch = epoch_of(now_ns);
  Bucket& b = buckets_[epoch % buckets_.size()];
  std::uint64_t seen = b.epoch.load(std::memory_order_acquire);
  if (seen != epoch) {
    // Reclaim the slot for the new epoch.  The winner of the CAS resets
    // the value; a concurrent writer that already moved past the CAS may
    // add its increment before the reset and lose it from the WINDOW view
    // (never from the lifetime total) — the documented boundary error.
    if (b.epoch.compare_exchange_strong(seen, epoch,
                                        std::memory_order_acq_rel)) {
      b.value.store(0, std::memory_order_relaxed);
    } else if (seen != epoch) {
      // A third epoch won the race (reader clock skew); drop the window
      // contribution rather than corrupt someone else's bucket.
      return;
    }
  }
  b.value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t WindowedCounter::windowed(std::uint64_t now_ns) const {
  const std::uint64_t now_epoch = epoch_of(now_ns);
  const std::uint64_t n = buckets_.size();
  std::uint64_t sum = 0;
  for (const Bucket& b : buckets_) {
    const std::uint64_t e = b.epoch.load(std::memory_order_acquire);
    // Window = the current (partial) bucket plus the n-1 preceding ones.
    if (e != 0 && e <= now_epoch && e + n > now_epoch)
      sum += b.value.load(std::memory_order_relaxed);
  }
  return sum;
}

WindowedSummary::WindowedSummary(int sub_bucket_bits, WindowOptions options)
    : sub_bits_(sub_bucket_bits),
      lifetime_(sub_bucket_bits),
      width_ns_(options.width_ns()),
      now_fn_(std::move(options.now)) {
  const std::size_t n = options.buckets ? options.buckets : 1;
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) slots_.emplace_back(sub_bucket_bits);
}

void WindowedSummary::record(std::uint64_t value, std::uint64_t now_ns) {
  const std::uint64_t epoch = epoch_of(now_ns);
  std::lock_guard lock(mu_);
  lifetime_.record(value);
  Slot& slot = slots_[epoch % slots_.size()];
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    slot.hist = util::Histogram(sub_bits_);  // lazy rotation
  }
  slot.hist.record(value);
}

util::Histogram WindowedSummary::snapshot() const {
  std::lock_guard lock(mu_);
  return lifetime_;
}

util::Histogram WindowedSummary::windowed_snapshot(std::uint64_t now_ns) const {
  const std::uint64_t now_epoch = epoch_of(now_ns);
  const std::uint64_t n = slots_.size();
  util::Histogram out(sub_bits_);
  std::lock_guard lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.epoch != 0 && slot.epoch <= now_epoch && slot.epoch + n > now_epoch)
      out.merge(slot.hist);
  }
  return out;
}

}  // namespace wsc::obs
