// Heavy-hitter ("hot key") tracking: the space-saving variant of the
// Misra-Gries frequent-items sketch.
//
// A bounded table of `capacity` (key, count, error) entries.  An offer for
// a tracked key increments its count; an offer for an untracked key when
// the table is full replaces the minimum-count entry, inheriting its count
// as the new entry's worst-case overestimate (`error`).
//
// Guarantees (Metwally et al., "Efficient Computation of Frequent and
// Top-k Elements in Data Streams"): for a stream of total weight W,
//   * count - error <= true_count <= count for every tracked key, and
//   * every key with true_count > W / capacity is present in the table.
//
// The sketch is NOT thread-safe; the response cache keeps one per shard
// behind the shard's own small mutex (shards see disjoint key streams, so
// a scrape merges per-shard tables exactly by summing).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsc::obs {

class TopKSketch {
 public:
  struct HotKey {
    std::string key;
    std::uint64_t count = 0;  // estimate (upper bound on the true count)
    std::uint64_t error = 0;  // worst-case overestimate inherited on entry
  };

  explicit TopKSketch(std::size_t capacity = 64)
      : capacity_(capacity ? capacity : 1) {
    entries_.reserve(capacity_);
  }

  /// Count one observation of `key` with the given weight (sampled feeds
  /// pass the sampling period as the weight so estimates stay unbiased).
  void offer(std::string_view key, std::uint64_t weight = 1);

  /// Tracked entries sorted by descending count estimate.
  std::vector<HotKey> entries() const;

  /// Total stream weight observed (W in the error bound).
  std::uint64_t observed() const noexcept { return observed_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<HotKey> entries_;  // unsorted; linear scan (capacity is small)
  std::uint64_t observed_ = 0;
};

/// Merge per-shard tables over DISJOINT key streams (one key hashes to
/// exactly one cache shard, so a key appears in at most one part and the
/// merge is exact concatenation), sorted by descending count, truncated to
/// `limit` (0 = no limit).
std::vector<TopKSketch::HotKey> merge_topk(
    std::vector<std::vector<TopKSketch::HotKey>> parts, std::size_t limit = 0);

}  // namespace wsc::obs
