// Per-call pipeline tracing: which stage of the middleware spent the time.
//
// The paper's whole argument is a *per-stage* cost decomposition — key
// generation (Tables 6/8) vs. value retrieval (Tables 7/9) — so the
// runtime grows the same decomposition as a first-class facility: every
// CachingServiceClient::invoke() can be covered by a CallTrace whose
// StageTimers attribute nanoseconds to key generation, cache lookup, deep
// copy / SAX replay, wire transport, retry backoff, XML parse,
// deserialization, and store, labeled by
// (service, operation, representation, outcome).
//
// Cost model:
//   * disabled (default): one relaxed atomic load + branch per call and
//     per stage timer — no clock reads, no allocation, no locking;
//   * enabled: two clock reads per stage, and one uncontended per-thread
//     mutex acquisition per call to publish into that thread's aggregates
//     and exemplar ring buffer.  Threads never share write state; a
//     snapshot() merges the per-thread states read-side.
//
// Exemplars: every `sample_every`-th call per thread keeps its full
// per-stage record in a bounded ring buffer (oldest overwritten), so a
// collector can show concrete slow calls next to the aggregates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace wsc::obs {

enum class Stage : std::uint8_t {
  KeyGen,       // cache key generation (Table 6)
  Lookup,       // response-cache probe
  Retrieve,     // CachedValue::retrieve — deep copy / SAX replay (Table 7)
  Wire,         // transport round trips, all attempts, minus backoff sleeps
  Backoff,      // retry backoff sleeps (RetryingTransport)
  Parse,        // XML tokenization + SAX handling of the response
  Deserialize,  // building the application object from the parsed body
  Store,        // representation capture + cache insert
};
inline constexpr std::size_t kStageCount = 8;
std::string_view stage_name(Stage s);

enum class Outcome : std::uint8_t {
  Hit,          // fresh entry served
  Miss,         // full wire call + (possibly) store
  Revalidated,  // 304 renewed a stale entry
  StaleServe,   // wire failed; expired entry served within grace
  Uncacheable,  // policy bypassed the cache
  Error,        // call raised
  Coalesced,       // follower served from another caller's in-flight call
  StaleRevalidate, // expired-within-grace entry served; refresh in background
};
inline constexpr std::size_t kOutcomeCount = 8;
std::string_view outcome_name(Outcome o);

/// The label set every trace aggregate and exemplar carries.
struct CallLabels {
  std::string service;
  std::string operation;
  std::string representation;  // empty until the client resolves it
  Outcome outcome = Outcome::Error;
};

/// One fully traced call (an exemplar).
struct CallRecord {
  CallLabels labels;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, kStageCount> stage_ns{};

  std::uint64_t stage(Stage s) const {
    return stage_ns[static_cast<std::size_t>(s)];
  }
  std::uint64_t stage_sum() const;
};

struct StageAgg {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t min_ns = UINT64_MAX;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t ns);
  void merge(const StageAgg& other);
  double mean_ns() const {
    return count ? static_cast<double>(sum_ns) / static_cast<double>(count) : 0.0;
  }
};

/// Aggregate over every traced call with one label set.
struct GroupSummary {
  CallLabels labels;
  std::uint64_t calls = 0;
  std::uint64_t total_sum_ns = 0;
  std::array<StageAgg, kStageCount> stages{};
  /// End-to-end latency distribution (coarse buckets: ~12% relative error,
  /// small enough to keep one per thread per label set).
  util::Histogram total_hist{3};

  const StageAgg& stage(Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  double mean_total_ns() const {
    return calls ? static_cast<double>(total_sum_ns) / static_cast<double>(calls)
                 : 0.0;
  }
  /// Sum of per-stage mean costs — the traced decomposition of
  /// mean_total_ns(); the gap between the two is untraced glue.
  double mean_stage_sum_ns() const;
};

struct TraceSummary {
  std::vector<GroupSummary> groups;     // sorted by label key
  std::vector<CallRecord> exemplars;    // sampled full records
  std::uint64_t dropped_exemplars = 0;  // ring overwrites since reset

  const GroupSummary* find(std::string_view operation, Outcome outcome,
                           std::string_view representation = {}) const;
};

class CallTrace;

/// Trace sink: per-thread aggregation plus sampled exemplars.  One
/// process-wide instance (`obs::tracer()`) is shared by the client
/// middleware, the transports, and the exporters; tests may construct
/// their own.
class Tracer {
 public:
  /// Opaque per-thread write state (defined in trace.cpp; public only so
  /// the thread-local cache can name it).
  struct ThreadState;

  explicit Tracer(std::size_t ring_capacity = 256);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Keep every n-th call per thread as a full exemplar (n >= 1).
  void set_sample_every(std::uint32_t n);
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Merge all per-thread aggregates and rings; non-destructive, so
  /// multiple scrapers see monotonic values.
  TraceSummary snapshot() const;

  /// Drop all aggregates and exemplars (e.g. between bench phases).
  void reset();

 private:
  friend class CallTrace;

  ThreadState& local_state();
  void publish(CallRecord&& record);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{16};
  std::size_t ring_capacity_;
  std::uint64_t id_;  // process-unique, keys the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadState>> states_;
};

/// The process-wide tracer the middleware stack reports to.
Tracer& tracer();

/// Monotonic nanosecond timestamp (steady clock).
std::uint64_t now_ns();

/// One traced middleware call, stack-scoped in invoke().  Inactive (all
/// methods no-ops) when the tracer is disabled at construction, so the
/// disabled hot path pays one relaxed load + branch.  While alive it is
/// the thread's `current_call()`, which is how layers below the client
/// (retrying transport, HTTP transport) attribute time without any API
/// plumbing.
class CallTrace {
 public:
  CallTrace(Tracer& tracer, std::string_view service,
            std::string_view operation);
  /// Binds to the process-wide tracer.
  CallTrace(std::string_view service, std::string_view operation);
  ~CallTrace();

  CallTrace(const CallTrace&) = delete;
  CallTrace& operator=(const CallTrace&) = delete;

  bool active() const { return tracer_ != nullptr; }
  void set_representation(std::string_view rep);
  void set_outcome(Outcome outcome);
  void add_stage(Stage s, std::uint64_t ns);
  std::uint64_t stage_ns(Stage s) const;

 private:
  Tracer* tracer_ = nullptr;
  CallTrace* prev_ = nullptr;
  CallRecord record_;
  std::uint64_t start_ns_ = 0;
};

/// The innermost active CallTrace on this thread (nullptr when none).
CallTrace* current_call();

/// RAII stage attribution.  The unbound form attaches to `current_call()`
/// so transports deep in the stack contribute stages to whatever call is
/// in flight above them.
class StageTimer {
 public:
  StageTimer(CallTrace& trace, Stage stage)
      : trace_(trace.active() ? &trace : nullptr), stage_(stage) {
    if (trace_) start_ = now_ns();
  }
  explicit StageTimer(Stage stage) : trace_(current_call()), stage_(stage) {
    if (trace_) start_ = now_ns();
  }
  ~StageTimer() {
    if (trace_) trace_->add_stage(stage_, now_ns() - start_);
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  CallTrace* trace_;
  Stage stage_;
  std::uint64_t start_ = 0;
};

}  // namespace wsc::obs
