// Prometheus text exposition format (0.0.4) validator.
//
// Used by the exporter golden tests and by tools/promcheck, which the CI
// smoke step points at the portal's live /metrics output.  Deliberately a
// strict-but-small subset of what a real Prometheus scraper accepts:
// structural validity (names, label syntax, escapes, float values,
// HELP/TYPE placement), not semantic scraping.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace wsc::obs {

/// Returns std::nullopt when `text` is valid exposition format, otherwise
/// a human-readable error naming the offending line.
std::optional<std::string> validate_prometheus_text(std::string_view text);

}  // namespace wsc::obs
