#include "obs/promcheck.hpp"

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "obs/metrics.hpp"  // valid_metric_name

namespace wsc::obs {

namespace {

struct Cursor {
  std::string_view line;
  std::size_t pos = 0;

  bool done() const { return pos >= line.size(); }
  char peek() const { return line[pos]; }
  bool consume(char c) {
    if (done() || line[pos] != c) return false;
    ++pos;
    return true;
  }
};

bool parse_metric_name(Cursor& cur, std::string& out) {
  std::size_t start = cur.pos;
  while (!cur.done()) {
    char c = cur.peek();
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (cur.pos > start && c >= '0' && c <= '9');
    if (!ok) break;
    ++cur.pos;
  }
  out = std::string(cur.line.substr(start, cur.pos - start));
  return !out.empty();
}

bool parse_label_name(Cursor& cur, std::string& out) {
  std::size_t start = cur.pos;
  while (!cur.done()) {
    char c = cur.peek();
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              (cur.pos > start && c >= '0' && c <= '9');
    if (!ok) break;
    ++cur.pos;
  }
  out = std::string(cur.line.substr(start, cur.pos - start));
  return !out.empty();
}

/// Quoted label value with \\, \", \n escapes.
bool parse_label_value(Cursor& cur, std::string& out) {
  if (!cur.consume('"')) return false;
  out.clear();
  while (!cur.done()) {
    char c = cur.line[cur.pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cur.done()) return false;
      char esc = cur.line[cur.pos++];
      if (esc != '\\' && esc != '"' && esc != 'n') return false;
      out.push_back(esc == 'n' ? '\n' : esc);
    } else {
      out.push_back(c);
    }
  }
  return false;  // unterminated
}

bool parse_value(std::string_view token) {
  if (token.empty()) return false;
  if (token == "NaN" || token == "+Inf" || token == "-Inf" || token == "Inf")
    return true;
  std::string owned(token);
  char* end = nullptr;
  std::strtod(owned.c_str(), &end);
  return end && *end == '\0' && end != owned.c_str();
}

bool parse_timestamp(std::string_view token) {
  if (token.empty()) return false;
  std::size_t i = (token[0] == '-' || token[0] == '+') ? 1 : 0;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i)
    if (token[i] < '0' || token[i] > '9') return false;
  return true;
}

const std::set<std::string>& known_types() {
  static const std::set<std::string> types = {"counter", "gauge", "summary",
                                              "histogram", "untyped"};
  return types;
}

/// The metric family a sample belongs to, given declared summary/histogram
/// types: foo_sum / foo_count (and foo_bucket for histograms) fold into foo.
std::string family_of(const std::string& sample_name,
                      const std::map<std::string, std::string>& types) {
  for (const char* suffix : {"_sum", "_count", "_bucket"}) {
    std::string s(suffix);
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      std::string base = sample_name.substr(0, sample_name.size() - s.size());
      auto it = types.find(base);
      if (it != types.end() &&
          (it->second == "summary" || it->second == "histogram")) {
        if (s == "_bucket" && it->second != "histogram") continue;
        return base;
      }
    }
  }
  return sample_name;
}

}  // namespace

std::optional<std::string> validate_prometheus_text(std::string_view text) {
  if (text.empty()) return "empty exposition";
  if (text.back() != '\n') return "missing trailing newline on final line";

  std::map<std::string, std::string> types;  // family -> type
  std::set<std::string> helps;               // families with a HELP line
  std::set<std::string> sampled_families;
  std::set<std::string> seen_series;  // name + rendered labels, duplicates

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    ++line_no;
    std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(start, nl - start);
    start = nl + 1;
    auto fail = [&](const std::string& what) {
      return "line " + std::to_string(line_no) + ": " + what;
    };

    if (line.empty()) continue;
    if (line[0] == '#') {
      Cursor cur{line, 1};
      if (!cur.consume(' ')) continue;  // free-form comment
      std::size_t kw_end = line.find(' ', cur.pos);
      std::string keyword(line.substr(cur.pos, kw_end - cur.pos));
      if (keyword != "HELP" && keyword != "TYPE") continue;  // comment
      if (kw_end == std::string_view::npos)
        return fail("truncated # " + keyword + " line");
      cur.pos = kw_end + 1;
      std::string name;
      if (!parse_metric_name(cur, name))
        return fail("bad metric name in # " + keyword + " line");
      if (keyword == "HELP") {
        if (!helps.insert(name).second)
          return fail("duplicate HELP for '" + name + "'");
        continue;  // docstring is free text
      }
      if (!cur.consume(' ')) return fail("missing type after TYPE " + name);
      std::string type(line.substr(cur.pos));
      if (!known_types().count(type))
        return fail("unknown metric type '" + type + "'");
      if (types.count(name))
        return fail("duplicate TYPE for '" + name + "'");
      if (sampled_families.count(name))
        return fail("TYPE for '" + name + "' after its samples");
      types[name] = type;
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    Cursor cur{line, 0};
    std::string name;
    if (!parse_metric_name(cur, name)) return fail("bad metric name");
    std::string series = name;
    if (cur.consume('{')) {
      series += '{';
      bool first = true;
      while (!cur.consume('}')) {
        if (!first && !cur.consume(','))
          return fail("expected ',' or '}' in label set of " + name);
        if (cur.consume('}')) break;  // trailing comma is allowed
        std::string label_name, label_value;
        if (!parse_label_name(cur, label_name))
          return fail("bad label name in " + name);
        if (!cur.consume('=')) return fail("missing '=' after label name");
        if (!parse_label_value(cur, label_value))
          return fail("bad label value in " + name);
        series += label_name + "=\"" + label_value + "\",";
        first = false;
      }
      series += '}';
    }
    if (!cur.consume(' ')) return fail("missing space before value");
    std::string_view rest = line.substr(cur.pos);
    std::size_t space = rest.find(' ');
    std::string_view value_token = rest.substr(0, space);
    if (!parse_value(value_token))
      return fail("bad sample value '" + std::string(value_token) + "'");
    if (space != std::string_view::npos) {
      std::string_view ts = rest.substr(space + 1);
      if (!parse_timestamp(ts))
        return fail("bad timestamp '" + std::string(ts) + "'");
    }
    if (!seen_series.insert(series).second)
      return fail("duplicate sample for series " + series);
    sampled_families.insert(family_of(name, types));
  }
  return std::nullopt;
}

}  // namespace wsc::obs
