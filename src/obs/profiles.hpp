// Cost-profile registry: live per-(service, operation, representation)
// cost rows — the measured counterpart of the paper's static Tables 6-9,
// and the direct input for the ROADMAP's adaptive representation
// selection.  Where the paper selects the optimal data representation
// from type traits known at deployment time, these rows carry what that
// choice actually costs in production: hit latency (keygen + lookup +
// retrieve), store latency (capture + insert), response deserialization
// latency, bytes per cached entry, and hit ratios — each with a lifetime
// view and a rolling-window view.
//
// Feeding discipline (the <=2% hit-path overhead budget): the client
// middleware samples hits — every Nth hit per thread records one latency
// sample and bumps the hit counter by N, so counters stay unbiased while
// the common hit pays only a thread-local tick.  Misses always record
// (the wire round trip dwarfs the bookkeeping).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/windowed.hpp"

namespace wsc::obs {

class CostProfiles {
 public:
  explicit CostProfiles(WindowOptions window = {});

  /// One sampled hit covering `weight` calls: bumps the hit counter by
  /// `weight`, records one latency sample (keygen+lookup+retrieve ns).
  void record_hit(std::string_view service, std::string_view operation,
                  std::string_view representation, std::uint64_t hit_ns,
                  std::uint64_t weight = 1);

  /// One miss: always counted.  `store_ns`/`bytes` are zero when the
  /// response was not stored (policy/directive suppression) — the miss
  /// still counts, but no store sample or bytes-per-entry row is added.
  void record_miss(std::string_view service, std::string_view operation,
                   std::string_view representation,
                   std::uint64_t deserialize_ns, std::uint64_t store_ns,
                   std::uint64_t bytes);

  /// Degraded-mode stale serve (availability, not a hit or a miss).
  void record_stale(std::string_view service, std::string_view operation,
                    std::string_view representation);

  /// Shadow probe of an alternative representation (adaptive selection):
  /// on a sampled store, the middleware captures the response in an
  /// alternative form WITHOUT serving it and measures what a store
  /// (`store_ns` = capture), a hit (`hit_ns` = one retrieve()) and an
  /// entry (`bytes`) would have cost.  Latency/bytes feeds only — the
  /// hit/miss counters (and therefore every ratio) are untouched, so
  /// probes never distort traffic attribution.
  void record_probe(std::string_view service, std::string_view operation,
                    std::string_view representation, std::uint64_t hit_ns,
                    std::uint64_t store_ns, std::uint64_t bytes);

  struct LatencyStat {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;  // exact lifetime sum: delta feeds stay exact
    double mean_ns = 0;
    double p50_ns = 0;
    double p99_ns = 0;
    double p999_ns = 0;
    std::uint64_t window_count = 0;
    double window_p99_ns = 0;
  };

  struct Row {
    std::string service;
    std::string operation;
    std::string representation;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stale_serves = 0;
    std::uint64_t window_hits = 0;
    std::uint64_t window_misses = 0;
    double hit_ratio = 0;         // hits / (hits + misses)
    double window_hit_ratio = 0;
    LatencyStat hit_ns;
    LatencyStat store_ns;
    LatencyStat deserialize_ns;
    std::uint64_t stored_entries = 0;  // misses that stored a value
    std::uint64_t bytes_sum = 0;
    double bytes_per_entry = 0;
  };

  /// All rows, sorted by (service, operation, representation).
  std::vector<Row> snapshot() const;

  /// The rows as a JSON array (the /profiles endpoint embeds this).
  std::string json_rows() const;

  /// The window span label of every windowed column (e.g. "60s").
  const std::string& window_label() const noexcept { return window_label_; }

 private:
  struct Cell {
    explicit Cell(const WindowOptions& window)
        : hits(window),
          misses(window),
          stale_serves(window),
          hit_ns(5, window),
          store_ns(5, window),
          deserialize_ns(5, window) {}
    WindowedCounter hits;
    WindowedCounter misses;
    WindowedCounter stale_serves;
    WindowedSummary hit_ns;
    WindowedSummary store_ns;
    WindowedSummary deserialize_ns;
    std::uint64_t stored_entries = 0;  // guarded by the registry mutex
    std::uint64_t bytes_sum = 0;
  };

  Cell& cell_locked(std::string_view service, std::string_view operation,
                    std::string_view representation);

  WindowOptions window_;
  std::string window_label_;
  mutable std::mutex mu_;
  // Key: service '\0' operation '\0' representation — sorted, so snapshots
  // come out in a deterministic order.
  std::map<std::string, std::unique_ptr<Cell>, std::less<>> cells_;
};

}  // namespace wsc::obs
