// MetricsRegistry: named instruments over the system's existing telemetry
// (CacheStats counters, RetryCounters, util::Histogram distributions, the
// tracer's per-stage aggregates), exported as Prometheus text exposition
// or JSON.
//
// Instrument kinds:
//   * Counter     — an owned monotonic windowed counter (exact lifetime
//                   total + rolling-window view, see obs/windowed.hpp);
//   * Summary     — an owned windowed util::Histogram pair, exported as a
//                   Prometheus summary (quantiles + _sum + _count);
//   * counter_fn / gauge_fn — read-at-scrape callbacks, how existing
//                   counter structs join without being rewritten;
//   * collector   — a callback emitting many related samples from ONE
//                   consistent snapshot (e.g. a whole StatsSnapshot), so a
//                   scrape never publishes torn values.
//
// Owned Counter/Summary families additionally export a windowed twin
// family per scrape — "<name minus _total>_last60s" (gauge) for counters
// and "<name>_last60s" (summary) for summaries — so dashboards get the
// rolling last-minute view next to the lifetime totals.  Callback and
// collector samples are read at scrape time from external state and have
// no history to window, so they export no twin.
//
// Exports are deterministic: families sorted by name, samples in
// registration/emission order — golden-file tests compare exact text.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/windowed.hpp"
#include "util/histogram.hpp"

namespace wsc::obs {

/// Label set as (name, value) pairs, exported in the given order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One exported value; collectors emit these.  `name` is the full sample
/// name (a family name, or family + "_sum"/"_count" for summaries).
struct Sample {
  std::string name;
  Labels labels;
  double value = 0;
};

/// The registry's instruments are the windowed ones; the old lifetime-only
/// API (inc/value, record/snapshot) is a strict subset of theirs.
using Counter = WindowedCounter;
using Summary = WindowedSummary;

class MetricsRegistry {
 public:
  /// Prometheus metric kinds as exported in `# TYPE` lines.
  enum class Kind { Counter, Gauge, Summary };

  /// `window` configures the rolling view of owned instruments (bucket
  /// count/width and, for tests, an injectable time source).
  explicit MetricsRegistry(WindowOptions window = {});
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned instruments.  Registering the same (name, labels) twice returns
  /// the existing instrument; the same name with a different kind throws.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Summary& summary(const std::string& name, const std::string& help,
                   Labels labels = {}, int sub_bucket_bits = 5);

  /// Read-at-scrape callbacks.
  void counter_fn(const std::string& name, const std::string& help,
                  Labels labels, std::function<std::uint64_t()> fn);
  void gauge_fn(const std::string& name, const std::string& help,
                Labels labels, std::function<double()> fn);

  /// Declare family metadata for samples a collector will emit.
  void family(const std::string& name, const std::string& help, Kind kind);

  /// Multi-sample callback, invoked once per export.
  void collector(std::function<void(std::vector<Sample>&)> fn);

  /// Prometheus text exposition format (version 0.0.4).
  std::string prometheus_text() const;

  /// Same data as JSON: {"family": {"type": ..., "samples": [...]}}.
  std::string json_text() const;

  /// Quantiles exported for Summary instruments.
  static const std::vector<double>& summary_quantiles();

 private:
  struct Family {
    std::string name;
    std::string help;
    Kind kind = Kind::Gauge;
    // Owned instruments attached to this family (at most one kind used).
    struct OwnedCounter {
      Labels labels;
      std::unique_ptr<Counter> counter;
    };
    struct OwnedSummary {
      Labels labels;
      std::unique_ptr<Summary> summary;
    };
    struct Callback {
      Labels labels;
      std::function<double()> fn;
    };
    std::vector<OwnedCounter> counters;
    std::vector<OwnedSummary> summaries;
    std::vector<Callback> callbacks;
  };

  struct FamilyMeta {
    std::string name;
    std::string help;
    Kind kind = Kind::Gauge;
  };
  struct Export {
    FamilyMeta meta;
    std::vector<Sample> samples;
  };

  Family& family_locked(const std::string& name, const std::string& help,
                        Kind kind);
  /// All families' samples, evaluated now; sorted by family name.
  std::vector<Export> gather() const;
  /// "<name minus _total>" + "_last60s" (per the window span).
  std::string windowed_name(const std::string& family_name) const;

  WindowOptions window_;
  std::string window_suffix_;  // "_last60s" for the default window
  std::string window_label_;   // "60s"
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
  std::vector<std::function<void(std::vector<Sample>&)>> collectors_;
};

/// Escape a label value for the exposition format (\\, \", \n).
std::string escape_label_value(std::string_view value);

/// True iff `name` is a valid Prometheus metric name.
bool valid_metric_name(std::string_view name);

class Tracer;  // trace.hpp

/// Export the tracer's per-(service, operation, representation, outcome)
/// aggregates: wsc_calls_total, wsc_call_ns (summary-ish sum/count), and
/// per-stage wsc_stage_ns_total / wsc_stage_calls_total.
void register_tracer_metrics(MetricsRegistry& registry, const Tracer& tracer);

}  // namespace wsc::obs
