#include "obs/build_info.hpp"

#include <chrono>

#include "obs/events.hpp"

#ifndef WSC_GIT_DESCRIBE
#define WSC_GIT_DESCRIBE "unknown"
#endif
#ifndef WSC_BUILD_TYPE
#define WSC_BUILD_TYPE "unknown"
#endif

namespace wsc::obs {

namespace {

/// Captured once when this translation unit initializes — close enough to
/// process start for rate math, and immune to later clock adjustments.
const double kProcessStartSeconds =
    std::chrono::duration<double>(
        std::chrono::system_clock::now().time_since_epoch())
        .count();

}  // namespace

void register_process_metrics(MetricsRegistry& registry) {
  registry.gauge_fn("process_start_time_seconds",
                    "Unix time the process started, in seconds.", {},
                    [] { return kProcessStartSeconds; });
  registry.gauge_fn("wsc_build_info",
                    "Build metadata; the value is always 1.",
                    {{"git", WSC_GIT_DESCRIBE},
                     {"compiler", __VERSION__},
                     {"build", WSC_BUILD_TYPE}},
                    [] { return 1.0; });
}

void register_event_metrics(MetricsRegistry& registry, const EventLog& log) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    const EventKind kind = static_cast<EventKind>(i);
    registry.counter_fn("wsc_events_total", "Structured events by kind.",
                        {{"kind", std::string(event_kind_name(kind))}},
                        [&log, kind] { return log.count(kind); });
  }
}

}  // namespace wsc::obs
