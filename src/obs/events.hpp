// Structured event log: a fixed-size ring of notable, LOW-FREQUENCY
// telemetry events (eviction bursts, circuit-breaker transitions, stale
// serves in degraded mode, calls over a latency threshold), exported as
// JSON on the portal's /events endpoint.
//
// This is the "what just changed" complement to the counters: a counter
// says 14 breaker opens happened since boot; the event log says one
// happened 3 seconds ago, against which endpoint, and how bad it was.
//
// Lock-friendliness: emit() takes one uncontended mutex and writes into a
// preallocated slot whose strings keep their capacity across reuse — no
// allocation in steady state and no unbounded growth.  Events are rare by
// contract (no per-request emits), so a single mutex is not a hit-path
// concern; the hit path never emits.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wsc::obs {

enum class EventKind : std::uint8_t {
  Lifecycle,      // component started / reconfigured
  EvictionBurst,  // one store evicted >= threshold entries
  BreakerOpen,    // circuit breaker tripped open
  BreakerProbe,   // half-open trial call
  StaleServe,     // wire failed; expired entry served within grace
  SlowCall,       // miss-path call exceeded the configured threshold
  DeadlineHit,    // per-call deadline exceeded
  LeaderFailure,  // coalesced leader failed; one error broadcast to waiters
  RefreshAhead,   // soft-TTL hit triggered an async background refresh
  IdleReap,       // reactor closed idle keep-alive connections
  AcceptPause,    // reactor paused accepting (backpressure)
  AdaptiveSwitch,  // adaptive policy switched an operation's representation
  MemoryPressure,  // cache bytes crossed a budget watermark (enter/exit)
};
inline constexpr std::size_t kEventKindCount = 13;
std::string_view event_kind_name(EventKind kind);

struct Event {
  std::uint64_t seq = 0;    // monotonically increasing, 1-based
  std::uint64_t ts_ns = 0;  // obs::now_ns() timeline
  EventKind kind = EventKind::Lifecycle;
  std::string scope;   // where: "cache", "transport", "Service.operation"
  std::string detail;  // human-readable one-liner
  std::uint64_t value = 0;  // kind-specific magnitude (ns, entries, ...)
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 256);

  void emit(EventKind kind, std::string_view scope, std::string_view detail,
            std::uint64_t value = 0);
  void emit(EventKind kind, std::string_view scope, std::string_view detail,
            std::uint64_t value, std::uint64_t now_ns);

  /// Events still in the ring with seq > min_seq, oldest first.
  std::vector<Event> snapshot(std::uint64_t min_seq = 0) const;

  std::uint64_t total_emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Events overwritten before ever being snapshotted by capacity math:
  /// total_emitted() - min(total_emitted(), capacity) still in the ring.
  std::uint64_t dropped() const;
  std::uint64_t count(EventKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Drop all buffered events and reset sequence numbers (tests).
  void clear();

  /// {"dropped": N, "events": [...]} — newest `limit` events, oldest
  /// first, each with its age relative to now (milliseconds).
  std::string json(std::size_t limit = 64) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;      // capacity_ preallocated slots
  std::uint64_t next_seq_ = 1;   // guarded by mu_
  std::atomic<std::uint64_t> emitted_{0};
  std::array<std::atomic<std::uint64_t>, kEventKindCount> by_kind_{};
};

/// Process-wide event log, shared by the cache, the transport bindings,
/// and the client middleware (mirrors obs::tracer()).
EventLog& event_log();

}  // namespace wsc::obs
