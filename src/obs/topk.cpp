#include "obs/topk.hpp"

#include <algorithm>

namespace wsc::obs {

void TopKSketch::offer(std::string_view key, std::uint64_t weight) {
  observed_ += weight;
  HotKey* min_entry = nullptr;
  for (HotKey& e : entries_) {
    if (e.key == key) {
      e.count += weight;
      return;
    }
    if (!min_entry || e.count < min_entry->count) min_entry = &e;
  }
  if (entries_.size() < capacity_) {
    entries_.push_back({std::string(key), weight, 0});
    return;
  }
  // Space-saving replacement: the newcomer takes over the minimum entry,
  // inheriting its count as the overestimate bound.
  min_entry->error = min_entry->count;
  min_entry->count += weight;
  min_entry->key.assign(key);
}

std::vector<TopKSketch::HotKey> TopKSketch::entries() const {
  std::vector<HotKey> out = entries_;
  std::sort(out.begin(), out.end(), [](const HotKey& a, const HotKey& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  return out;
}

std::vector<TopKSketch::HotKey> merge_topk(
    std::vector<std::vector<TopKSketch::HotKey>> parts, std::size_t limit) {
  std::vector<TopKSketch::HotKey> out;
  for (auto& part : parts)
    for (auto& e : part) out.push_back(std::move(e));
  std::sort(out.begin(), out.end(),
            [](const TopKSketch::HotKey& a, const TopKSketch::HotKey& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  if (limit && out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace wsc::obs
