// Bridge the response cache's CacheStats into a MetricsRegistry: one
// collector per cache, emitting every StatsSnapshot counter (and the
// entries/bytes gauges) from a SINGLE snapshot per scrape, so exported
// values can never tear against each other.
#pragma once

#include "obs/metrics.hpp"

namespace wsc::cache {

class AdaptivePolicy;
class ResponseCache;

/// Register wsc_cache_* families backed by `cache`.  `labels` (e.g.
/// {{"cache", "portal"}}) distinguishes multiple caches sharing one
/// registry.  The cache must outlive the registry's exports.
void register_cache_metrics(obs::MetricsRegistry& registry,
                            const ResponseCache& cache,
                            obs::Labels labels = {});

/// Register wsc_adaptive_* families backed by `policy` (decision /
/// switch / probe counters and the memory-pressure gauge).  The policy
/// must outlive the registry's exports.
void register_adaptive_metrics(obs::MetricsRegistry& registry,
                               const AdaptivePolicy& policy,
                               obs::Labels labels = {});

}  // namespace wsc::cache
