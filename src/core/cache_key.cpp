#include "core/cache_key.hpp"

#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"
#include "soap/serializer.hpp"
#include "util/hash.hpp"

namespace wsc::cache {

CacheKey::CacheKey(std::string material)
    : material_(std::move(material)), hash_(util::fnv1a(material_)) {}

CacheKey XmlMessageKeyGenerator::generate(const soap::RpcRequest& request) const {
  // The request envelope embeds operation and parameters; prepend the
  // endpoint, which is transport metadata and not part of the document.
  return CacheKey(request.endpoint + "\n" + soap::serialize_request(request));
}

CacheKey SerializationKeyGenerator::generate(
    const soap::RpcRequest& request) const {
  std::string material = request.endpoint;
  material += '\0';
  material += request.operation;
  for (const soap::Parameter& p : request.params) {
    material += '\0';
    material += p.name;
    material += '=';
    std::vector<std::uint8_t> bytes = reflect::serialize(p.value);
    material.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  return CacheKey(std::move(material));
}

CacheKey ToStringKeyGenerator::generate(const soap::RpcRequest& request) const {
  std::string material = request.endpoint;
  material += '|';
  material += request.operation;
  for (const soap::Parameter& p : request.params) {
    material += '|';
    material += p.name;
    material += '=';
    material += reflect::to_string(p.value);
  }
  return CacheKey(std::move(material));
}

std::unique_ptr<KeyGenerator> make_key_generator(KeyMethod method) {
  switch (method) {
    case KeyMethod::XmlMessage:
      return std::make_unique<XmlMessageKeyGenerator>();
    case KeyMethod::Serialization:
      return std::make_unique<SerializationKeyGenerator>();
    case KeyMethod::ToString:
      return std::make_unique<ToStringKeyGenerator>();
  }
  throw Error("make_key_generator: bad method");
}

}  // namespace wsc::cache
