#include "core/cache_key.hpp"

#include <cassert>

#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"
#include "soap/serializer.hpp"

namespace wsc::cache {

CacheKey::CacheKey(std::string material)
    : material_(std::move(material)), hash_(util::fnv1a(material_)) {}

CacheKey CacheKey::with_hash(std::string material, std::uint64_t hash) {
  assert(hash == util::fnv1a(material));
  CacheKey key;
  key.material_ = std::move(material);
  key.hash_ = hash;
  return key;
}

CacheKey XmlMessageKeyGenerator::generate(const soap::RpcRequest& request) const {
  // The request envelope embeds operation and parameters; prepend the
  // endpoint, which is transport metadata and not part of the document.
  return CacheKey(request.endpoint + "\n" + soap::serialize_request(request));
}

CacheKey SerializationKeyGenerator::generate(
    const soap::RpcRequest& request) const {
  std::string material = request.endpoint;
  material += '\0';
  material += request.operation;
  for (const soap::Parameter& p : request.params) {
    material += '\0';
    material += p.name;
    material += '=';
    std::vector<std::uint8_t> bytes = reflect::serialize(p.value);
    material.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
  return CacheKey(std::move(material));
}

void ToStringKeyGenerator::generate_into(const soap::RpcRequest& request,
                                         KeyScratch& scratch) const {
  // The Table-6 fast path: append everything into the scratch's reused
  // buffer.  reflect::to_string_append formats primitives with to_chars
  // into the buffer directly, so once the buffer's capacity has warmed up
  // this performs zero heap allocations per key.
  scratch.reset();
  std::string& out = scratch.buffer();
  out += request.endpoint;
  out += '|';
  out += request.operation;
  for (const soap::Parameter& p : request.params) {
    out += '|';
    out += p.name;
    out += '=';
    reflect::to_string_append(p.value, out);
  }
  scratch.finish();
}

CacheKey ToStringKeyGenerator::generate(const soap::RpcRequest& request) const {
  // Delegate to the append path so owned keys and scratch refs are
  // byte-identical by construction.
  KeyScratch scratch;
  generate_into(request, scratch);
  return scratch.to_key();
}

std::unique_ptr<KeyGenerator> make_key_generator(KeyMethod method) {
  switch (method) {
    case KeyMethod::XmlMessage:
      return std::make_unique<XmlMessageKeyGenerator>();
    case KeyMethod::Serialization:
      return std::make_unique<SerializationKeyGenerator>();
    case KeyMethod::ToString:
      return std::make_unique<ToStringKeyGenerator>();
  }
  throw Error("make_key_generator: bad method");
}

}  // namespace wsc::cache
