// Cache value representations (paper section 4.2, Tables 3/7/9).
//
// A CachedValue stores one response in one representation and can
// `retrieve()` a fresh application object from it on every hit.  The
// side-effect discipline of §3.1 is enforced here:
//
//   XmlMessage / SaxEvents / Serialized - retrieval *constructs* a new
//     object, so the stored form is naturally isolated from the client.
//   ReflectionCopy / CloneCopy - the object is deep-copied INTO the store
//     and deep-copied OUT on every hit ("the copy is required at the time
//     of a cache hit and at the time when the response application objects
//     from the server are stored").
//   Reference - the stored object is shared with every caller; only legal
//     for immutable or administrator-declared read-only data.
//
// retrieve() is const and thread-safe: concurrent hits on the same entry
// are the normal case in the Figure-4 experiment.
#pragma once

#include <memory>

#include "core/representation.hpp"
#include "reflect/object.hpp"
#include "wsdl/description.hpp"
#include "xml/compact_event_sequence.hpp"
#include "xml/event_sequence.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::cache {

class CachedValue {
 public:
  virtual ~CachedValue() = default;

  /// Produce the application object for a cache hit.
  virtual reflect::Object retrieve() const = 0;

  virtual Representation representation() const = 0;

  /// Approximate bytes held by this entry (Table 9 and the eviction
  /// budget).
  virtual std::size_t memory_size() const = 0;
};

/// Stores the response XML document itself.
class XmlMessageValue final : public CachedValue {
 public:
  XmlMessageValue(std::string response_xml,
                  std::shared_ptr<const wsdl::OperationInfo> op)
      : source_(std::move(response_xml)), op_(std::move(op)) {}

  reflect::Object retrieve() const override;
  Representation representation() const override {
    return Representation::XmlMessage;
  }
  std::size_t memory_size() const override;

 private:
  xml::XmlTextSource source_;
  std::shared_ptr<const wsdl::OperationInfo> op_;
};

/// Stores the recorded SAX events of the response parse.
class SaxEventsValue final : public CachedValue {
 public:
  SaxEventsValue(xml::EventSequence events,
                 std::shared_ptr<const wsdl::OperationInfo> op)
      : events_(std::move(events)), op_(std::move(op)) {}

  reflect::Object retrieve() const override;
  Representation representation() const override {
    return Representation::SaxEvents;
  }
  std::size_t memory_size() const override;

 private:
  xml::EventSequence events_;
  std::shared_ptr<const wsdl::OperationInfo> op_;
};

/// Stores the recorded parse events in the compact arena form: interned
/// names/attribute lists, one contiguous text arena, flat event records.
/// Same replay path as SaxEventsValue but zero allocations per event and a
/// fraction of the bytes (the Table 9 entry the byte budget now charges).
class CompactSaxEventsValue final : public CachedValue {
 public:
  CompactSaxEventsValue(xml::CompactEventSequence events,
                        std::shared_ptr<const wsdl::OperationInfo> op)
      : events_(std::move(events)), op_(std::move(op)) {}

  reflect::Object retrieve() const override;
  Representation representation() const override {
    return Representation::SaxEventsCompact;
  }
  std::size_t memory_size() const override;

 private:
  xml::CompactEventSequence events_;
  std::shared_ptr<const wsdl::OperationInfo> op_;
};

/// Stores the binary-serialized object.
class SerializedValue final : public CachedValue {
 public:
  /// Serializes here; throws wsc::SerializationError for non-serializable
  /// types (the automatic detection hook).
  explicit SerializedValue(const reflect::Object& response);

  reflect::Object retrieve() const override;
  Representation representation() const override {
    return Representation::Serialized;
  }
  std::size_t memory_size() const override;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Stores a reflective deep copy; hits get another reflective deep copy.
class ReflectionCopyValue final : public CachedValue {
 public:
  explicit ReflectionCopyValue(const reflect::Object& response);

  reflect::Object retrieve() const override;
  Representation representation() const override {
    return Representation::ReflectionCopy;
  }
  std::size_t memory_size() const override;

 private:
  reflect::Object stored_;
};

/// Stores a generated deep clone; hits get another clone.
class CloneCopyValue final : public CachedValue {
 public:
  explicit CloneCopyValue(const reflect::Object& response);

  reflect::Object retrieve() const override;
  Representation representation() const override {
    return Representation::CloneCopy;
  }
  std::size_t memory_size() const override;

 private:
  reflect::Object stored_;
};

/// Stores the object itself and hands the same reference to every caller.
class ReferenceValue final : public CachedValue {
 public:
  explicit ReferenceValue(reflect::Object response)
      : stored_(std::move(response)) {}

  reflect::Object retrieve() const override { return stored_; }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override;

 private:
  reflect::Object stored_;
};

/// Everything a representation might need when capturing a fresh response.
/// The middleware fills `response_xml` always, `events` only when it teed
/// the parse, and `object` with the deserialized result.
struct ResponseCapture {
  const std::string* response_xml = nullptr;
  xml::EventSequence* events = nullptr;  // consumed (moved from) if used
  /// Compact recording; consumed (moved from) if used.
  xml::CompactEventSequence* compact_events = nullptr;
  reflect::Object object;
  /// Co-owned so cache entries outlive any one client stub (aliased into
  /// the owning ServiceDescription).
  std::shared_ptr<const wsdl::OperationInfo> op;
};

/// Build the CachedValue for a *resolved* representation (not Auto).
/// Throws wsc::SerializationError when the representation cannot handle
/// the object's type, wsc::Error on missing capture ingredients.
std::unique_ptr<CachedValue> make_cached_value(Representation representation,
                                               ResponseCapture& capture);

}  // namespace wsc::cache
