// CachingServiceClient: the Web-services client middleware stub with the
// transparent response cache of Figure 1.
//
// The user application calls invoke(operation, params) exactly as it would
// on an uncached Axis stub; caching is configured by the administrator via
// CachePolicy and is invisible to the application ("the response cache can
// be used without any changes to the user client application").
//
// Per-call pipeline:
//   1. look the operation up in the WSDL contract,
//   2. policy check — uncacheable operations go straight to the wire,
//   3. generate the cache key with the configured KeyMethod,
//   4. hit  -> CachedValue::retrieve() (the Table 7 cost),
//   5. miss -> serialize, POST via the Transport, parse the reply —
//      teeing the parse into an EventRecorder when the SAX representation
//      will be stored, so the miss path never parses twice —
//      store in the resolved representation, return the fresh object.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cache_key.hpp"
#include "core/cached_value.hpp"
#include "core/policy.hpp"
#include "core/response_cache.hpp"
#include "obs/profiles.hpp"
#include "obs/trace.hpp"
#include "soap/message.hpp"
#include "transport/transport.hpp"
#include "util/uri.hpp"
#include "wsdl/description.hpp"

namespace wsc::transport {
class RetryingTransport;
}

namespace wsc::cache {

/// Fold RetryingTransport events (retries, breaker opens/probes, deadline
/// hits) into the cache's CacheStats counters so one snapshot tells the
/// whole availability story.  The stats object must outlive the transport.
void bind_transport_stats(transport::RetryingTransport& transport,
                          CacheStats& stats);

class CachingServiceClient {
 public:
  struct Options {
    KeyMethod key_method = KeyMethod::ToString;
    CachePolicy policy;
    bool caching_enabled = true;
    /// Live cost-model feed (null = off).  Hits are sampled: every
    /// `profile_sample_every`-th hit per thread records one latency
    /// sample weighted by the period, so the common hit pays only a
    /// thread-local tick; misses always record (the wire dwarfs it).
    std::shared_ptr<obs::CostProfiles> profiles;
    std::uint32_t profile_sample_every = 64;
    /// Miss-path calls slower than this emit a SlowCall event to
    /// obs::event_log(); 0 disables.  Hit-path latency is never checked
    /// here (a hit cannot be wire-slow, and the check would cost two
    /// clock reads per hit).
    std::uint64_t slow_call_threshold_ns = 0;
  };

  /// `description` is shared because cache entries (XML / SAX
  /// representations) reference its OperationInfos and may outlive this
  /// stub.
  CachingServiceClient(std::shared_ptr<transport::Transport> transport,
                       std::shared_ptr<const wsdl::ServiceDescription> description,
                       std::string endpoint_url,
                       std::shared_ptr<ResponseCache> cache, Options options);

  /// Invoke an operation.  Returns the response application object (null
  /// for void operations).  Throws:
  ///   soap::SoapFault        - server-side fault
  ///   wsc::TransportError    - delivery failure
  ///   wsc::SerializationError - configured key method / representation
  ///                             cannot handle the operation's types
  reflect::Object invoke(const std::string& operation,
                         std::vector<soap::Parameter> params);

  /// The key this client would use for a request (exposed for explicit
  /// invalidation and for the key benchmarks).
  CacheKey key_for(const std::string& operation,
                   const std::vector<soap::Parameter>& params) const;

  /// Drop the cached entry for one exact request; true if present.
  bool invalidate(const std::string& operation,
                  const std::vector<soap::Parameter>& params);

  ResponseCache& cache() noexcept { return *cache_; }
  const wsdl::ServiceDescription& description() const noexcept {
    return *description_;
  }
  const std::string& endpoint() const noexcept { return endpoint_url_; }
  void set_caching_enabled(bool enabled) noexcept {
    options_.caching_enabled = enabled;
  }

 private:
  /// What the miss path tees the parse into, decided per-representation
  /// BEFORE parsing so the response is never tokenized twice.
  enum class RecordMode { None, Legacy, Compact };

  struct CallResult {
    reflect::Object object;
    std::string response_xml;
    xml::EventSequence events;                 // filled in Legacy mode
    xml::CompactEventSequence compact_events;  // filled in Compact mode
    http::CacheDirectives directives;
    bool not_modified = false;  // 304 answer to a conditional request
    std::optional<std::chrono::seconds> last_modified;
    std::uint64_t deserialize_ns = 0;  // measured when profiling
  };

  static RecordMode record_mode_for(Representation rep) {
    if (rep == Representation::SaxEvents) return RecordMode::Legacy;
    if (rep == Representation::SaxEventsCompact) return RecordMode::Compact;
    return RecordMode::None;
  }

  CallResult remote_call(
      obs::CallTrace& trace, const soap::RpcRequest& request,
      const wsdl::OperationInfo& op, RecordMode record,
      std::optional<std::chrono::seconds> if_modified_since = std::nullopt);

  /// Degraded mode: after the wire call failed for good, serve an
  /// expired-but-present entry if the operation's stale-if-error grace
  /// covers it.  Returns nullopt when the policy (or the cache) cannot
  /// absorb the failure — the caller rethrows.
  std::optional<reflect::Object> serve_stale_on_error(
      obs::CallTrace& trace, const std::string& operation, const CacheKey& key,
      const OperationPolicy& policy);

  soap::RpcRequest build_request(const std::string& operation,
                                 std::vector<soap::Parameter> params) const;

  std::shared_ptr<const wsdl::OperationInfo> share_op(
      const wsdl::OperationInfo& op) const;

  std::shared_ptr<transport::Transport> transport_;
  std::shared_ptr<const wsdl::ServiceDescription> description_;
  std::string endpoint_url_;
  util::Uri endpoint_;
  std::shared_ptr<ResponseCache> cache_;
  Options options_;
  std::unique_ptr<KeyGenerator> keygen_;
};

}  // namespace wsc::cache
