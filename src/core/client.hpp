// CachingServiceClient: the Web-services client middleware stub with the
// transparent response cache of Figure 1.
//
// The user application calls invoke(operation, params) exactly as it would
// on an uncached Axis stub; caching is configured by the administrator via
// CachePolicy and is invisible to the application ("the response cache can
// be used without any changes to the user client application").
//
// Per-call pipeline:
//   1. look the operation up in the WSDL contract,
//   2. policy check — uncacheable operations go straight to the wire,
//   3. generate the cache key with the configured KeyMethod,
//   4. hit  -> CachedValue::retrieve() (the Table 7 cost),
//   5. miss -> serialize, POST via the Transport, parse the reply —
//      teeing the parse into an EventRecorder when the SAX representation
//      will be stored, so the miss path never parses twice —
//      store in the resolved representation, return the fresh object.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_key.hpp"
#include "core/cached_value.hpp"
#include "core/policy.hpp"
#include "core/refresh_queue.hpp"
#include "core/response_cache.hpp"
#include "obs/profiles.hpp"
#include "obs/trace.hpp"
#include "soap/message.hpp"
#include "transport/transport.hpp"
#include "util/uri.hpp"
#include "wsdl/description.hpp"

namespace wsc::transport {
class RetryingTransport;
}

namespace wsc::cache {

class AdaptivePolicy;

/// Fold RetryingTransport events (retries, breaker opens/probes, deadline
/// hits) into the cache's CacheStats counters so one snapshot tells the
/// whole availability story.  The listener closures co-own the cache, so
/// the counters cannot dangle if the cache is released before the
/// transport (the old `CacheStats&` signature's lifetime footgun).
void bind_transport_stats(transport::RetryingTransport& transport,
                          std::shared_ptr<ResponseCache> cache);

class CachingServiceClient {
 public:
  struct Options {
    KeyMethod key_method = KeyMethod::ToString;
    CachePolicy policy;
    bool caching_enabled = true;
    /// Live cost-model feed (null = off).  Hits are sampled: every
    /// `profile_sample_every`-th hit per thread records one latency
    /// sample weighted by the period, so the common hit pays only a
    /// thread-local tick; misses always record (the wire dwarfs it).
    std::shared_ptr<obs::CostProfiles> profiles;
    std::uint32_t profile_sample_every = 64;
    /// Adaptive representation selection (DESIGN.md §13, null = off).
    /// Consulted only for operations whose policy representation is Auto:
    /// the trait-based auto_select choice seeds the policy, then live
    /// cost-model feedback (shadow probes on sampled stores) steers it.
    /// Implies profiles: when unset, `profiles` is taken from the policy
    /// so the feedback loop always has a feed.
    std::shared_ptr<AdaptivePolicy> adaptive;
    /// Miss-path calls slower than this emit a SlowCall event to
    /// obs::event_log(); 0 disables.  Hit-path latency is never checked
    /// here (a hit cannot be wire-slow, and the check would cost two
    /// clock reads per hit).
    std::uint64_t slow_call_threshold_ns = 0;
    /// Single-flight miss coalescing: concurrent identical misses share
    /// ONE backend call — the first caller leads, the rest park on the
    /// leader's flight.  Disabled, every miss makes its own wire call.
    bool coalesce_misses = true;
    /// How long a follower waits for its leader before giving up (a
    /// FlightWait::Timeout falls back to stale-if-error, else throws
    /// TimeoutError).  Each follower applies its own deadline.
    std::chrono::milliseconds coalesce_wait{5000};
  };

  /// `description` is shared because cache entries (XML / SAX
  /// representations) reference its OperationInfos and may outlive this
  /// stub.
  CachingServiceClient(std::shared_ptr<transport::Transport> transport,
                       std::shared_ptr<const wsdl::ServiceDescription> description,
                       std::string endpoint_url,
                       std::shared_ptr<ResponseCache> cache, Options options);
  /// Joins the background refresh worker (pending refreshes whose flights
  /// were never run are failed, releasing any parked followers).
  ~CachingServiceClient();

  /// Invoke an operation.  Returns the response application object (null
  /// for void operations).  Throws:
  ///   soap::SoapFault        - server-side fault
  ///   wsc::TransportError    - delivery failure
  ///   wsc::SerializationError - configured key method / representation
  ///                             cannot handle the operation's types
  reflect::Object invoke(const std::string& operation,
                         std::vector<soap::Parameter> params);

  /// The key this client would use for a request (exposed for explicit
  /// invalidation and for the key benchmarks).
  CacheKey key_for(const std::string& operation,
                   const std::vector<soap::Parameter>& params) const;

  /// Drop the cached entry for one exact request; true if present.
  bool invalidate(const std::string& operation,
                  const std::vector<soap::Parameter>& params);

  ResponseCache& cache() noexcept { return *cache_; }
  const wsdl::ServiceDescription& description() const noexcept {
    return *description_;
  }
  const std::string& endpoint() const noexcept { return endpoint_url_; }
  void set_caching_enabled(bool enabled) noexcept {
    options_.caching_enabled = enabled;
  }

 private:
  /// What the miss path tees the parse into, decided per-representation
  /// BEFORE parsing so the response is never tokenized twice.
  enum class RecordMode { None, Legacy, Compact };

  struct CallResult {
    reflect::Object object;
    std::string response_xml;
    xml::EventSequence events;                 // filled in Legacy mode
    xml::CompactEventSequence compact_events;  // filled in Compact mode
    http::CacheDirectives directives;
    bool not_modified = false;  // 304 answer to a conditional request
    std::optional<std::chrono::seconds> last_modified;
    std::uint64_t deserialize_ns = 0;  // measured when profiling
  };

  static RecordMode record_mode_for(Representation rep) {
    if (rep == Representation::SaxEvents) return RecordMode::Legacy;
    if (rep == Representation::SaxEventsCompact) return RecordMode::Compact;
    return RecordMode::None;
  }

  CallResult remote_call(
      obs::CallTrace& trace, const soap::RpcRequest& request,
      const wsdl::OperationInfo& op, RecordMode record,
      std::optional<std::chrono::seconds> if_modified_since = std::nullopt);

  /// Degraded mode: after the wire call failed for good, serve an
  /// expired-but-present entry if the operation's stale-if-error grace
  /// covers it.  Returns nullopt when the policy (or the cache) cannot
  /// absorb the failure — the caller rethrows.
  std::optional<reflect::Object> serve_stale_on_error(
      obs::CallTrace& trace, const std::string& operation, const CacheKey& key,
      const OperationPolicy& policy);

  /// Representation resolution, shared by the foreground miss path and
  /// background refreshes.  Starts from the static (WSDL trait) choice;
  /// when the adaptive policy is wired and the operation's configured
  /// representation is Auto, the policy's current choice wins and may
  /// additionally request a shadow probe of an alternative.  Throws
  /// SerializationError when the administrator configured an
  /// inapplicable representation.
  struct ResolvedRepresentation {
    Representation representation = Representation::Auto;
    Representation probe = Representation::Auto;  // Auto = no probe
  };
  ResolvedRepresentation resolve_representation(
      const OperationPolicy& policy, const wsdl::OperationInfo& op,
      const std::string& operation) const;

  /// Shadow probe (adaptive exploration): build `probe`'s CachedValue
  /// from the already-captured response, time its capture and one
  /// retrieve, measure its bytes, and feed CostProfiles::record_probe.
  /// Never serves, never stores, never throws — a probe failure only
  /// means no sample.  Rides the miss path, where the wire round trip
  /// dwarfs the extra capture.
  void run_probe(const wsdl::OperationInfo& op, const std::string& operation,
                 Representation probe, const CallResult& result,
                 const CacheKey& key);

  /// Arrange ONE asynchronous refresh of `key` (SWR and refresh-ahead).
  /// Returns true when a refresh is now running or already was in flight;
  /// false when none will happen (queue saturated or flights shut down) —
  /// the caller must fall back to a synchronous call or let the entry
  /// expire.
  bool schedule_refresh(const std::string& operation,
                        const soap::RpcRequest& request,
                        const wsdl::OperationInfo& op,
                        const OperationPolicy& policy, const CacheKey& key);

  /// Body of a background refresh: wire call (revalidating when possible),
  /// store, return the stored value (null when directives suppressed the
  /// store).  Runs on the RefreshQueue worker; throws on failure.
  std::shared_ptr<const CachedValue> perform_refresh(
      const std::string& operation, const soap::RpcRequest& request,
      const wsdl::OperationInfo& op, const OperationPolicy& policy,
      const CacheKey& key);

  soap::RpcRequest build_request(const std::string& operation,
                                 std::vector<soap::Parameter> params) const;

  std::shared_ptr<const wsdl::OperationInfo> share_op(
      const wsdl::OperationInfo& op) const;

  std::shared_ptr<transport::Transport> transport_;
  std::shared_ptr<const wsdl::ServiceDescription> description_;
  std::string endpoint_url_;
  util::Uri endpoint_;
  std::shared_ptr<ResponseCache> cache_;
  Options options_;
  std::unique_ptr<KeyGenerator> keygen_;
  /// Declared LAST so it is destroyed FIRST: background refresh jobs use
  /// every other member, and the queue's destructor joins the worker
  /// before any of them can die.
  RefreshQueue refresh_queue_;
};

}  // namespace wsc::cache
