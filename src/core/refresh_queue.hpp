// A tiny bounded background-work queue for cache refreshes.
//
// Stale-while-revalidate and soft-TTL refresh-ahead both serve the caller
// immediately and owe the cache ONE asynchronous refresh.  That refresh
// runs here: a single lazily-started worker thread draining a bounded
// queue.  One thread is deliberate — refreshes are per-key deduplicated
// upstream by the single-flight table, so the queue sees at most one job
// per hot key, and a single worker bounds the background load the client
// can put on an already-struggling origin.
//
// submit() never blocks: when the queue is full (origin slower than the
// refresh demand) or the queue is stopped, it returns false and the caller
// falls back to doing nothing — the entry simply expires and the next miss
// fetches it synchronously, which is the pre-SWR behaviour.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace wsc::cache {

class RefreshQueue {
 public:
  explicit RefreshQueue(std::size_t max_pending = 64)
      : max_pending_(max_pending) {}
  /// Stops and joins the worker; pending (never-run) jobs are destroyed,
  /// which fails their flights via the guards the closures own.
  ~RefreshQueue() { stop(); }

  RefreshQueue(const RefreshQueue&) = delete;
  RefreshQueue& operator=(const RefreshQueue&) = delete;

  /// Enqueue a job; starts the worker on first use.  Returns false (job
  /// destroyed immediately) when full or stopped.
  bool submit(std::function<void()> job);

  /// Idempotent.  Waits for the in-progress job (if any), then discards
  /// the rest.  After stop(), submit() always returns false.
  void stop();

  /// Jobs currently queued (not counting one mid-run).  For tests.
  std::size_t pending() const;

 private:
  void run();

  const std::size_t max_pending_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::thread worker_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace wsc::cache
