// Adaptive representation selection: close the loop from live cost
// models (DESIGN.md §13).
//
// The paper selects each operation's optimal data representation ONCE,
// from type traits known at deployment time (§6, auto_select).  That
// choice is static: it cannot see that this deployment's payloads are
// tiny (serialization wins), that the JVM-equivalent reflection copy is
// slow on this host, or that the cache is out of memory and a compact
// form would halve the footprint.  This policy starts from the trait
// choice and then *measures*: a deterministic, seeded fraction of
// stores additionally shadow-probes an alternative applicable
// representation — building the alternative CachedValue from the same
// captured response, timing its store and one retrieve, and measuring
// its bytes — and feeds those samples into per-(operation,
// representation) EWMA score models.  On a decision interval the policy
// re-scores every applicable representation against a configurable
// objective and switches the operation's serving representation when a
// clearly better one (hysteresis) has enough evidence.
//
// Exploration is SHADOW-ONLY: the serving path always uses the current
// representation; probes ride the miss path (where one wire round trip
// already dwarfs an extra capture) and never the hit path.  That is
// what keeps the converged hit-path overhead inside the <=2% budget —
// a converged adaptive client serves byte-identical hits to a static
// one.
//
// Determinism: sampling uses a per-operation SplitMix64 stream seeded
// from Config::seed, decisions tick on an injectable util::Clock, and
// score inputs come from CostProfiles lifetime counters (exact sums).
// Same seed + same cost feed + same clock advances => same decisions.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/representation.hpp"
#include "util/clock.hpp"
#include "util/random.hpp"

namespace wsc::obs {
class CostProfiles;
}

namespace wsc::cache {

class ResponseCache;

/// What the adaptive policy minimizes.
enum class AdaptiveObjective : std::uint8_t {
  Latency,   // expected per-call ns: hit_ewma + miss_ratio * store_ewma
  Bytes,     // bytes per cached entry
  Weighted,  // alpha * latency_score + beta * bytes_score
};
std::string_view adaptive_objective_name(AdaptiveObjective o);

class AdaptivePolicy {
 public:
  struct Config {
    AdaptiveObjective objective = AdaptiveObjective::Weighted;
    /// Weighted-objective coefficients (units: ns and bytes — with the
    /// defaults a nanosecond trades 1:1 against a byte, which values
    /// both roughly equally for the paper's payload scale).
    double alpha = 1.0;
    double beta = 1.0;
    /// Fraction of stores that also shadow-probe one alternative
    /// representation (deterministically sampled per operation).
    double sample_fraction = 1.0 / 16;
    /// Seed for every per-operation sampling stream (stream = seed XOR
    /// hash(operation)); one seed reproduces the whole run.
    std::uint64_t seed = 1;
    /// How often (per operation, on its store path) scores are
    /// re-evaluated and switches considered.
    std::chrono::milliseconds decision_interval{1000};
    /// EWMA smoothing for per-epoch score inputs (1 = latest epoch only).
    double ewma_alpha = 0.4;
    /// A challenger must beat the incumbent's score by this fraction to
    /// take over (hysteresis against measurement noise flapping).
    double min_improvement = 0.05;
    /// A representation needs at least this many hit-latency samples
    /// before it can be scored at all.
    std::uint64_t min_samples = 3;
    /// Memory-pressure watermarks: while cache bytes > high * budget the
    /// effective objective becomes Bytes; it reverts only after bytes
    /// drop below low * budget (hysteresis).  budget_bytes = 0 disables
    /// unless bind_cache()/set_bytes_signal() supplies a budget.
    std::size_t budget_bytes = 0;
    double high_watermark = 0.90;
    double low_watermark = 0.70;
  };

  /// One store-path consultation: serve with `representation`; if
  /// `probe` != Auto, additionally shadow-probe that representation.
  struct Choice {
    Representation representation = Representation::Auto;
    Representation probe = Representation::Auto;  // Auto = no probe
  };

  explicit AdaptivePolicy(std::shared_ptr<obs::CostProfiles> profiles);
  AdaptivePolicy(std::shared_ptr<obs::CostProfiles> profiles, Config config,
                 const util::Clock& clock = util::steady_clock());

  /// Wire the memory-pressure signal to a cache's live footprint and
  /// configured byte budget.  First call wins; later calls are no-ops.
  void bind_cache(std::shared_ptr<const ResponseCache> cache);
  /// Or supply an arbitrary bytes signal (tests): `bytes_fn` is polled
  /// at each decision tick against `budget_bytes`.
  void set_bytes_signal(std::function<std::uint64_t()> bytes_fn,
                        std::size_t budget_bytes);

  /// Store-path consultation for one operation.  `static_choice` is the
  /// trait-based auto_select result (the starting incumbent);
  /// `applicable` lists every representation legal for the operation's
  /// result type.  Also drives the decision tick: when
  /// decision_interval has elapsed on this policy's clock, scores are
  /// refreshed and switches applied before choosing.
  Choice choose(std::string_view service, std::string_view operation,
                Representation static_choice,
                const std::vector<Representation>& applicable);

  /// Current serving representation for an operation (Auto if the
  /// policy has never seen it).
  Representation current(std::string_view operation) const;

  /// Force a decision pass now (tests and benches drive deterministic
  /// cadence with this instead of waiting out the interval).
  void decide_now();

  /// One operation's model state, for /adaptive and cachetop.
  struct OperationState {
    std::string service;
    std::string operation;
    Representation representation = Representation::Auto;
    Representation static_choice = Representation::Auto;
    AdaptiveObjective effective_objective = AdaptiveObjective::Weighted;
    double current_score = 0;  // incumbent's score (0 until first decide)
    std::uint64_t switches = 0;
    std::uint64_t probes = 0;
    struct RepScore {
      Representation representation = Representation::Auto;
      double score = 0;          // objective score; <0 = not enough data
      double hit_ns = 0;         // EWMA inputs
      double store_ns = 0;
      double bytes_per_entry = 0;
      std::uint64_t samples = 0;  // lifetime hit samples seen
    };
    std::vector<RepScore> candidates;  // applicable reps, enum order
  };
  std::vector<OperationState> snapshot() const;

  /// The /adaptive endpoint body: config, pressure state, counters, and
  /// every operation's model.
  std::string json() const;

  // Counters (metrics bridge).
  std::uint64_t decisions() const noexcept {
    return decisions_.load(std::memory_order_relaxed);
  }
  std::uint64_t switches() const noexcept {
    return switches_.load(std::memory_order_relaxed);
  }
  std::uint64_t explore_stores() const noexcept {
    return explore_stores_.load(std::memory_order_relaxed);
  }
  std::uint64_t pressure_transitions() const noexcept {
    return pressure_transitions_.load(std::memory_order_relaxed);
  }
  bool memory_pressure() const noexcept {
    return pressure_.load(std::memory_order_relaxed);
  }
  std::size_t operation_count() const;

  const Config& config() const noexcept { return config_; }
  const std::shared_ptr<obs::CostProfiles>& profiles() const noexcept {
    return profiles_;
  }

 private:
  /// Per-representation EWMA model.  Score inputs are epoch deltas of
  /// the CostProfiles lifetime sums: each decide pass computes the
  /// since-last-pass mean and folds it in with ewma_alpha, so one noisy
  /// window cannot flip a converged choice.
  struct RepModel {
    bool seen = false;
    double hit_ewma = 0;       // ns
    double store_ewma = 0;     // ns
    double bytes_ewma = 0;     // bytes per entry
    std::uint64_t samples = 0;  // lifetime hit-latency samples
    // Last-seen lifetime totals (delta base for the next epoch).
    std::uint64_t last_hit_count = 0;
    std::uint64_t last_hit_sum = 0;
    std::uint64_t last_store_count = 0;
    std::uint64_t last_store_sum = 0;
    std::uint64_t last_entries = 0;
    std::uint64_t last_bytes = 0;
  };

  struct OpState {
    std::string service;
    Representation current = Representation::Auto;
    Representation static_choice = Representation::Auto;
    std::vector<Representation> applicable;
    util::Rng rng{0};
    std::size_t probe_cursor = 0;  // round-robins alternatives
    std::uint64_t switches = 0;
    std::uint64_t probes = 0;
    double current_score = 0;
    // EWMA of the operation's miss ratio (weights store cost in the
    // latency score by how often a store actually happens).
    double miss_ratio_ewma = 0;
    bool miss_ratio_seen = false;
    std::uint64_t last_hits = 0;
    std::uint64_t last_misses = 0;
    std::array<RepModel, kConcreteRepresentationCount> models{};
  };

  OpState& op_locked(std::string_view service, std::string_view operation,
                     Representation static_choice,
                     const std::vector<Representation>& applicable);
  void maybe_decide_locked();
  void decide_locked();
  void refresh_models_locked();
  void update_pressure_locked();
  /// Objective score for one candidate; negative = insufficient data.
  double score_locked(const OpState& op, Representation r,
                      AdaptiveObjective objective) const;
  AdaptiveObjective effective_objective_locked() const {
    return pressure_flag_ ? AdaptiveObjective::Bytes : config_.objective;
  }

  Config config_;
  std::shared_ptr<obs::CostProfiles> profiles_;
  const util::Clock* clock_;

  mutable std::mutex mu_;
  std::map<std::string, OpState, std::less<>> ops_;  // keyed by operation
  util::TimePoint last_decision_{};   // guarded by mu_
  std::function<std::uint64_t()> bytes_fn_;  // guarded by mu_
  std::size_t budget_bytes_ = 0;             // guarded by mu_
  bool pressure_flag_ = false;               // guarded by mu_
  std::shared_ptr<const ResponseCache> cache_;  // keeps bytes_fn_ alive

  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> switches_{0};
  std::atomic<std::uint64_t> explore_stores_{0};
  std::atomic<std::uint64_t> pressure_transitions_{0};
  std::atomic<bool> pressure_{false};
};

}  // namespace wsc::cache
