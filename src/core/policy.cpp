#include "core/policy.hpp"

#include <algorithm>

namespace wsc::cache {

CachePolicy& CachePolicy::set(const std::string& operation,
                              OperationPolicy policy) {
  policies_[operation] = policy;
  return *this;
}

CachePolicy& CachePolicy::cacheable(const std::string& operation,
                                    std::chrono::milliseconds ttl,
                                    Representation representation) {
  OperationPolicy p;
  p.cacheable = true;
  p.ttl = ttl;
  p.representation = representation;
  return set(operation, p);
}

CachePolicy& CachePolicy::uncacheable(const std::string& operation) {
  return set(operation, OperationPolicy{});
}

CachePolicy& CachePolicy::stale_if_error(const std::string& operation,
                                         std::chrono::milliseconds grace) {
  policies_[operation].staleness.stale_if_error = grace;
  return *this;
}

CachePolicy& CachePolicy::stale_while_revalidate(
    const std::string& operation, std::chrono::milliseconds grace) {
  policies_[operation].staleness.stale_while_revalidate = grace;
  return *this;
}

CachePolicy& CachePolicy::refresh_ahead(const std::string& operation,
                                        double fraction) {
  policies_[operation].refresh_ahead = fraction;
  return *this;
}

const OperationPolicy& CachePolicy::lookup(std::string_view operation) const {
  auto it = policies_.find(operation);
  return it == policies_.end() ? default_policy_ : it->second;
}

CachePolicy& CachePolicy::honor_server_directives(bool honor) {
  honor_server_ = honor;
  return *this;
}

std::optional<std::chrono::milliseconds> CachePolicy::effective_ttl(
    const OperationPolicy& policy,
    const http::CacheDirectives& directives) const {
  if (!policy.cacheable) return std::nullopt;
  if (!honor_server_) return policy.ttl;
  if (!directives.cacheable()) return std::nullopt;
  if (directives.max_age) {
    auto server_ttl =
        std::chrono::duration_cast<std::chrono::milliseconds>(*directives.max_age);
    return std::min(policy.ttl, server_ttl);
  }
  return policy.ttl;
}

}  // namespace wsc::cache
