#include "core/metrics_bridge.hpp"

#include "core/adaptive_policy.hpp"
#include "core/response_cache.hpp"

namespace wsc::cache {

void register_cache_metrics(obs::MetricsRegistry& registry,
                            const ResponseCache& cache, obs::Labels labels) {
  using obs::MetricsRegistry;
  struct CounterField {
    const char* name;
    const char* help;
    std::uint64_t StatsSnapshot::*field;
  };
  static const CounterField kCounters[] = {
      {"wsc_cache_hits_total", "Fresh entries served", &StatsSnapshot::hits},
      {"wsc_cache_misses_total", "Lookups that missed",
       &StatsSnapshot::misses},
      {"wsc_cache_stores_total", "Entries inserted or replaced",
       &StatsSnapshot::stores},
      {"wsc_cache_rejected_stores_total",
       "store() calls dropped for a non-positive TTL",
       &StatsSnapshot::rejected_stores},
      {"wsc_cache_expirations_total", "Entries found expired",
       &StatsSnapshot::expirations},
      {"wsc_cache_evictions_total", "CLOCK / byte-budget removals",
       &StatsSnapshot::evictions},
      {"wsc_cache_clock_sweeps_total",
       "Ring slots examined by the CLOCK eviction hand",
       &StatsSnapshot::clock_sweeps},
      {"wsc_cache_second_chances_total",
       "Marked (recently hit) entries spared by the eviction hand",
       &StatsSnapshot::second_chances},
      {"wsc_cache_invalidations_total", "Explicit invalidate()/clear()",
       &StatsSnapshot::invalidations},
      {"wsc_cache_revalidations_total", "Stale entries refreshed via 304",
       &StatsSnapshot::revalidations},
      {"wsc_cache_uncacheable_total", "Calls bypassing the cache per policy",
       &StatsSnapshot::uncacheable},
      {"wsc_cache_stale_serves_total",
       "Expired entries served on wire failure", &StatsSnapshot::stale_serves},
      {"wsc_cache_transport_retries_total", "Wire attempts beyond the first",
       &StatsSnapshot::transport_retries},
      {"wsc_cache_breaker_opens_total", "Circuit breaker open events",
       &StatsSnapshot::breaker_opens},
      {"wsc_cache_breaker_probes_total", "Half-open recovery trial calls",
       &StatsSnapshot::breaker_probes},
      {"wsc_cache_deadline_hits_total", "Per-call deadlines exceeded",
       &StatsSnapshot::deadline_hits},
      {"wsc_cache_coalesced_waits_total",
       "Followers parked on another caller's in-flight backend call",
       &StatsSnapshot::coalesced_waits},
      {"wsc_cache_coalesced_failures_total",
       "Followers that observed the one broadcast leader failure",
       &StatsSnapshot::coalesced_failures},
      {"wsc_cache_stale_while_revalidate_served_total",
       "Expired-within-grace entries served while a refresh ran",
       &StatsSnapshot::stale_while_revalidate_served},
      {"wsc_cache_refresh_ahead_triggered_total",
       "Soft-TTL asynchronous refreshes kicked off",
       &StatsSnapshot::refresh_ahead_triggered},
  };
  for (const CounterField& c : kCounters)
    registry.family(c.name, c.help, MetricsRegistry::Kind::Counter);
  registry.family("wsc_cache_entries", "Current entry count",
                  MetricsRegistry::Kind::Gauge);
  registry.family("wsc_cache_bytes", "Current approximate byte footprint",
                  MetricsRegistry::Kind::Gauge);

  registry.collector(
      [&cache, labels = std::move(labels)](std::vector<obs::Sample>& out) {
        StatsSnapshot s = cache.stats();  // one consistent snapshot
        for (const CounterField& c : kCounters)
          out.push_back({c.name, labels, static_cast<double>(s.*(c.field))});
        out.push_back(
            {"wsc_cache_entries", labels, static_cast<double>(s.entries)});
        out.push_back(
            {"wsc_cache_bytes", labels, static_cast<double>(s.bytes)});
      });
}

void register_adaptive_metrics(obs::MetricsRegistry& registry,
                               const AdaptivePolicy& policy,
                               obs::Labels labels) {
  using obs::MetricsRegistry;
  registry.family("wsc_adaptive_decisions_total",
                  "Adaptive decision passes (score refresh + switch check)",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_adaptive_switches_total",
                  "Representation switches applied by the adaptive policy",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_adaptive_explore_stores_total",
                  "Stores that shadow-probed an alternative representation",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_adaptive_pressure_transitions_total",
                  "Memory-pressure watermark crossings (enter + exit)",
                  MetricsRegistry::Kind::Counter);
  registry.family("wsc_adaptive_operations",
                  "Operations under adaptive management",
                  MetricsRegistry::Kind::Gauge);
  registry.family("wsc_adaptive_memory_pressure",
                  "1 while cache bytes hold the objective at bytes-minimizing",
                  MetricsRegistry::Kind::Gauge);
  registry.collector(
      [&policy, labels = std::move(labels)](std::vector<obs::Sample>& out) {
        out.push_back({"wsc_adaptive_decisions_total", labels,
                       static_cast<double>(policy.decisions())});
        out.push_back({"wsc_adaptive_switches_total", labels,
                       static_cast<double>(policy.switches())});
        out.push_back({"wsc_adaptive_explore_stores_total", labels,
                       static_cast<double>(policy.explore_stores())});
        out.push_back({"wsc_adaptive_pressure_transitions_total", labels,
                       static_cast<double>(policy.pressure_transitions())});
        out.push_back({"wsc_adaptive_operations", labels,
                       static_cast<double>(policy.operation_count())});
        out.push_back({"wsc_adaptive_memory_pressure", labels,
                       policy.memory_pressure() ? 1.0 : 0.0});
      });
}

}  // namespace wsc::cache
