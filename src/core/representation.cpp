#include "core/representation.hpp"

#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"
#include "util/error.hpp"

namespace wsc::cache {

std::string_view representation_name(Representation r) {
  switch (r) {
    case Representation::XmlMessage: return "XML message";
    case Representation::SaxEvents: return "SAX events sequence";
    case Representation::SaxEventsCompact: return "SAX events compact";
    case Representation::Serialized: return "Java serialization";
    case Representation::ReflectionCopy: return "Copy by reflection";
    case Representation::CloneCopy: return "Copy by clone";
    case Representation::Reference: return "Pass by reference";
    case Representation::Auto: return "Auto";
  }
  return "?";
}

std::optional<Representation> representation_from_name(std::string_view name) {
  static constexpr Representation kAll[] = {
      Representation::XmlMessage,     Representation::SaxEvents,
      Representation::SaxEventsCompact, Representation::Serialized,
      Representation::ReflectionCopy, Representation::CloneCopy,
      Representation::Reference,      Representation::Auto,
  };
  for (Representation r : kAll)
    if (representation_name(r) == name) return r;
  return std::nullopt;
}

std::string_view key_method_name(KeyMethod m) {
  switch (m) {
    case KeyMethod::XmlMessage: return "XML message";
    case KeyMethod::Serialization: return "Java serialization";
    case KeyMethod::ToString: return "toString method";
  }
  return "?";
}

bool applicable(Representation r, const reflect::TypeInfo& type,
                bool read_only) {
  switch (r) {
    case Representation::XmlMessage:
    case Representation::SaxEvents:
    case Representation::SaxEventsCompact:
      return true;  // "Limitation: None"
    case Representation::Serialized:
      return type.is_deeply_serializable();
    case Representation::ReflectionCopy:
      return reflect::supports_reflection_copy(type);
    case Representation::CloneCopy:
      return static_cast<bool>(type.clone_fn);
    case Representation::Reference:
      return type.traits.immutable || read_only;
    case Representation::Auto:
      return true;  // always resolvable via auto_select
  }
  return false;
}

Representation auto_select(const reflect::TypeInfo& type, bool read_only,
                           bool prefer_clone) {
  if (type.traits.immutable || read_only) return Representation::Reference;
  if (prefer_clone && type.clone_fn) return Representation::CloneCopy;
  if (reflect::supports_reflection_copy(type))
    return Representation::ReflectionCopy;
  if (type.is_deeply_serializable()) return Representation::Serialized;
  return Representation::SaxEventsCompact;
}

std::vector<Representation> applicable_representations(
    const reflect::TypeInfo& type, bool read_only) {
  std::vector<Representation> out;
  out.reserve(kConcreteRepresentationCount);
  for (std::size_t i = 0; i < kConcreteRepresentationCount; ++i) {
    const Representation r = static_cast<Representation>(i);
    if (applicable(r, type, read_only)) out.push_back(r);
  }
  return out;
}

}  // namespace wsc::cache
