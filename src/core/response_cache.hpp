// The response cache table: key -> (CachedValue, expiry), with TTL expiry,
// CLOCK (second-chance) eviction under entry- and byte-budgets, and a
// contention-free hit path.
//
// The paper holds all cached objects in memory ("for fair comparison, we
// held all of the cached objects in memory") and notes small memory usage
// is desirable; the byte budget uses each representation's measured
// footprint (Table 9) so eviction pressure reflects the representation
// choice.
//
// Concurrency model (DESIGN.md §9): the paper's whole argument is that
// per-hit cost decides whether response caching pays off (Tables 6/7), so
// a hit must not serialize behind other hits.  Each shard is guarded by a
// std::shared_mutex:
//
//   hit      shared_lock + relaxed CLOCK-mark store + atomic stat bump;
//            no list splice, no allocation, no exclusive section.
//   expiry   a lock-free read of the entry's atomic expiry tick; an entry
//            found expired is removed on a rare unique_lock slow path.
//   store /  unique_lock; eviction sweeps a per-shard clock hand over a
//   evict    ring of entries, sparing (and unmarking) recently-hit ones.
//
// Recency is therefore *approximate* (one reference bit instead of exact
// LRU order) — the trade every reader-optimized cache in PAPERS.md makes
// (memcached's striped LRU, S3-FIFO/CLOCK) and faithful to the paper,
// whose policy knobs are TTL and capacity, not an eviction-order contract.
//
// The table can additionally be split into independently-locked shards
// (Config::shards); entry/byte budgets are split evenly across shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/cache_key.hpp"
#include "core/cached_value.hpp"
#include "core/stats.hpp"
#include "obs/topk.hpp"
#include "util/clock.hpp"

namespace wsc::cache {

/// Default shard count: the smallest power of two >= the hardware thread
/// count, clamped to [1, 64].  Power of two so the high-bit shard index
/// distributes evenly; clamped so a 256-vCPU host does not split a small
/// byte budget into homeopathic per-shard slices.
std::size_t default_shard_count() noexcept;

class ResponseCache {
 public:
  struct Config {
    std::size_t max_entries = 100'000;
    std::size_t max_bytes = 256 * 1024 * 1024;
    /// Number of independently locked shards (>= 1), rounded UP to the
    /// next power of two so shard selection is a mask, not a division
    /// (the old `% shards` cost a hardware divide on every lookup).
    /// Defaults to default_shard_count() — a power of two derived from
    /// std::thread::hardware_concurrency().  NOTE: budgets are split
    /// evenly across shards, so with S shards a single shard evicts once
    /// it holds max_entries/S entries (or max_bytes/S bytes) even if the
    /// table as a whole is under budget.  Tests that assert exact
    /// eviction behavior must pin shards = 1.
    std::size_t shards = default_shard_count();
  };

  ResponseCache() : ResponseCache(Config{}) {}
  explicit ResponseCache(Config config,
                         const util::Clock& clock = util::steady_clock());
  /// Wakes every parked single-flight waiter (shutdown_flights()).
  ~ResponseCache();

  /// Fresh-entry lookup.  Returns the stored value (shared; retrieve() is
  /// const and thread-safe) or nullptr on miss/expired.  Counts
  /// hits/misses/expirations and sets the entry's CLOCK reference mark.
  /// Hits take only a shared lock: concurrent hits never serialize.
  std::shared_ptr<const CachedValue> lookup(const CacheKey& key);
  /// Zero-allocation variant: looks up borrowed key material (a
  /// KeyScratch's ref()) without constructing an owned CacheKey.
  std::shared_ptr<const CachedValue> lookup(const CacheKeyRef& key);

  /// Insert or replace.  `ttl` bounds the entry's life from now;
  /// `last_modified` (server-supplied) enables later revalidation.
  /// A non-positive TTL is a no-op counted as `rejected_stores`: an
  /// already-expired entry must never charge the byte budget (where it
  /// could evict live entries before lazy expiry noticed it).
  /// A positive `soft_ttl` (< ttl) arms the refresh-ahead claim: the first
  /// lookup_for_revalidation() hit after `soft_ttl` elapses wins a
  /// one-shot claim (StaleLookup::refresh_ahead) to refresh the entry in
  /// the background before it expires.
  void store(const CacheKey& key, std::shared_ptr<const CachedValue> value,
             std::chrono::milliseconds ttl,
             std::optional<std::chrono::seconds> last_modified = std::nullopt,
             std::chrono::milliseconds soft_ttl = std::chrono::milliseconds(0));

  /// Lookup that also exposes an expired ("stale") entry so the caller can
  /// revalidate it with a conditional request instead of refetching
  /// (§3.2's If-Modified-Since hook).  Stale entries are NOT removed and
  /// no hit/miss is counted for them — the caller reports the outcome via
  /// refresh() (304) or store() (full response).
  struct StaleLookup {
    std::shared_ptr<const CachedValue> value;  // null on true miss
    bool fresh = false;
    std::optional<std::chrono::seconds> last_modified;
    /// How far past expiry the entry is (zero when fresh or missing), so
    /// stale-if-error graces compare against real staleness, not guesses.
    util::Duration staleness{0};
    /// True when THIS lookup won the entry's one-shot refresh-ahead claim
    /// (fresh hit past the soft TTL): the caller owns kicking off exactly
    /// one background refresh.  Re-armed by store()/refresh().
    bool refresh_ahead = false;
  };
  StaleLookup lookup_for_revalidation(const CacheKey& key);
  StaleLookup lookup_for_revalidation(const CacheKeyRef& key);

  /// Degraded-mode lookup (stale-if-error): same exposure of expired
  /// entries as lookup_for_revalidation but with NO side effects — no
  /// hit/miss accounting, no recency mark, and crucially no expiry
  /// eviction, so the fallback entry a failing wire call needs cannot be
  /// destroyed by the lookup that finds it.  The fresh-only lookup()
  /// semantics are unchanged.  Callers report the outcome themselves
  /// (CacheStats::on_stale_serve for a degraded read).
  StaleLookup lookup_allow_stale(const CacheKey& key) const;

  /// Give an existing (possibly expired) entry a new lease after a 304.
  /// Returns false if the entry vanished meanwhile.  Shared-lock only:
  /// the new expiry is an atomic store on the entry's expiry tick.
  /// `soft_ttl` re-arms the refresh-ahead claim exactly as store() does.
  bool refresh(const CacheKey& key, std::chrono::milliseconds ttl,
               std::chrono::milliseconds soft_ttl = std::chrono::milliseconds(0));

  // --- Single-flight miss coalescing (DESIGN.md §11) ----------------------
  //
  // A per-shard in-flight table (beside the CLOCK ring) keyed by the cache
  // key material.  The first caller to join a key's flight becomes the
  // LEADER and performs the backend call; every later joiner is a FOLLOWER
  // and blocks on the flight (condition-variable wait with its own
  // deadline).  The leader broadcasts exactly one outcome — a stored
  // value, "nothing stored", or ONE failure — so a herd of N identical
  // misses costs one wire call and one error at worst, never N.

  class Flight;  // opaque; shared so waiters outlive table erasure

  /// What a join returned.  A default-constructed (null) handle means
  /// coalescing is unavailable (flights shut down): proceed uncoalesced.
  struct FlightHandle {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    explicit operator bool() const noexcept { return flight != nullptr; }
  };

  /// How a follower's wait ended.
  enum class FlightWait : std::uint8_t {
    Value,     // leader stored a fresh entry; FlightResult::value is set
    NoValue,   // leader finished without a storable value (e.g. no-store)
    Error,     // leader failed; FlightResult::error holds the one broadcast
    Timeout,   // this caller's deadline elapsed before the leader finished
    Shutdown,  // flights shut down; nobody will complete this one
  };
  struct FlightResult {
    FlightWait outcome = FlightWait::Shutdown;
    std::shared_ptr<const CachedValue> value;
    std::exception_ptr error;
  };

  /// Join (or open) the in-flight entry for `key`.  First joiner leads.
  FlightHandle join_flight(const CacheKeyRef& key);
  /// Follower: park until the leader completes or `timeout` elapses.
  /// Counts coalesced_waits (and coalesced_failures on an Error outcome).
  FlightResult wait_flight(const FlightHandle& handle,
                           std::chrono::milliseconds timeout);
  /// Leader: publish success and wake all followers.  A null `value` means
  /// "call succeeded but nothing was stored" (FlightWait::NoValue).
  /// No-op for followers / null handles / already-finished flights.
  void complete_flight(const FlightHandle& handle,
                       std::shared_ptr<const CachedValue> value);
  /// Leader: broadcast the one failure to all followers.
  void fail_flight(const FlightHandle& handle, std::exception_ptr error);
  /// Wake every parked waiter with FlightWait::Shutdown, drop the in-flight
  /// tables, and make join_flight() return null handles from now on.
  /// Idempotent; called by the destructor.
  void shutdown_flights();

  /// Remove one entry; true if it existed.
  bool invalidate(const CacheKey& key);

  /// Drop everything (administrative flush).
  void clear();

  /// Drop expired entries eagerly (periodic maintenance; lookup() already
  /// lazily expires).  Returns the number removed.
  std::size_t purge_expired();

  /// Entry count and byte footprint, read together: each shard's pair is
  /// taken under that shard's lock in ONE pass, so entries and bytes can
  /// never disagree with each other (the old two-pass
  /// entry_count()+bytes_used() snapshot could interleave with writers and
  /// tear).
  struct Footprint {
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  Footprint footprint() const;

  std::size_t entry_count() const { return footprint().entries; }
  std::size_t bytes_used() const { return footprint().bytes; }
  /// Configured budgets (the adaptive policy's memory-pressure signal
  /// compares footprint().bytes against max_bytes()).
  std::size_t max_bytes() const noexcept { return config_.max_bytes; }
  std::size_t max_entries() const noexcept { return config_.max_entries; }
  StatsSnapshot stats() const;
  CacheStats& counters() noexcept { return stats_; }

  /// Hot-key tracking: a per-shard space-saving top-K sketch fed from the
  /// lookup path (hits AND misses — "hot" means most-requested).  Off by
  /// default; when off the only lookup-path cost is one relaxed load.
  /// When on, every `sample_every`-th lookup per thread offers its key
  /// material to the owning shard's sketch with the sampling period as
  /// the weight, so count estimates stay unbiased.
  struct HotKeyOptions {
    std::size_t capacity = 64;     // tracked keys per shard
    std::uint32_t sample_every = 64;
  };
  /// Idempotent; options are fixed by the first call.  Never disabled —
  /// sketches live for the cache's lifetime once allocated, so the
  /// sampled path can read them without lifetime checks.
  void enable_hot_key_tracking(HotKeyOptions options);
  void enable_hot_key_tracking() { enable_hot_key_tracking(HotKeyOptions{}); }
  bool hot_key_tracking_enabled() const noexcept {
    return hot_enabled_.load(std::memory_order_acquire);
  }
  /// Per-shard sketches merged (shards see disjoint key streams, so the
  /// merge is exact concatenation), sorted by count, truncated to `limit`.
  std::vector<obs::TopKSketch::HotKey> hot_keys(std::size_t limit = 16) const;

 private:
  /// Expiry is an atomic tick (nanoseconds on the util::Clock timeline) so
  /// the hit path's freshness check is a lock-free load and refresh() can
  /// renew a lease under a shared lock.
  using Tick = util::Duration::rep;
  static Tick tick(util::TimePoint t) noexcept {
    return t.time_since_epoch().count();
  }

  struct Entry {
    std::shared_ptr<const CachedValue> value;  // replaced under unique_lock
    std::atomic<Tick> expiry{0};
    /// Refresh-ahead claim: the tick after which the FIRST revalidation
    /// lookup wins a one-shot background-refresh claim (CAS to 0, the
    /// "disabled/claimed" sentinel).  Re-armed by store()/refresh().
    std::atomic<Tick> soft_expiry{0};
    /// CLOCK reference bit: set (relaxed) by every hit, cleared by the
    /// sweeping hand.  The only thing a hit writes besides stats.
    std::atomic<bool> mark{false};
    std::optional<std::chrono::seconds> last_modified;
    std::size_t bytes = 0;
    const CacheKey* key = nullptr;  // the map node's key (stable address)
    /// Intrusive circular CLOCK ring links (mutated only under the unique
    /// lock; hits never touch them).  New entries are spliced just BEHIND
    /// the hand, so the sweep reaches them last — classic second-chance
    /// FIFO order, with no per-hit list mutation.
    Entry* ring_prev = nullptr;
    Entry* ring_next = nullptr;
  };

  // unordered_map: node-based, so Entry and key addresses are stable
  // across rehash (iterators are NOT — the CLOCK ring therefore links
  // Entry pointers, and eviction erases by key).
  using Map = std::unordered_map<CacheKey, Entry, CacheKey::Hasher,
                                 CacheKey::Eq>;

  /// Per-shard hot-key sketch behind its own small mutex, separate from
  /// the shard's shared_mutex so a sampled offer never holds up readers.
  struct HotShard {
    std::mutex mu;
    obs::TopKSketch sketch;
    explicit HotShard(std::size_t capacity) : sketch(capacity) {}
  };

  /// Per-shard single-flight table behind its own mutex (defined in the
  /// .cpp), separate from the shard's shared_mutex: joining a flight must
  /// not contend with the hit path.
  struct FlightTable;

  struct Shard {
    Shard();   // out-of-line: FlightTable is incomplete here
    ~Shard();
    mutable std::shared_mutex mu;
    Map map;
    Entry* hand = nullptr;  // next ring node the sweep examines
    std::size_t bytes = 0;
    std::unique_ptr<HotShard> hot;  // set once by enable_hot_key_tracking
    std::unique_ptr<FlightTable> flights;  // always allocated
  };

  Shard& shard_for_hash(std::uint64_t hash) {
    // The table index uses the low hash bits; pick shards from the high
    // ones so the two partitions stay independent.  Shard counts are
    // powers of two, so this is a mask, not a divide.
    return *shards_[(hash >> 48) & shard_mask_];
  }
  const Shard& shard_for_hash(std::uint64_t hash) const {
    return *shards_[(hash >> 48) & shard_mask_];
  }

  template <typename KeyLike>
  std::shared_ptr<const CachedValue> lookup_impl(const KeyLike& key);
  template <typename KeyLike>
  StaleLookup lookup_for_revalidation_impl(const KeyLike& key);

  /// Sampled hot-key offer; the caller has already checked hot_enabled_.
  void offer_hot_key(Shard& shard, std::string_view material);
  /// One relaxed flag load when tracking is off — the entire disabled
  /// cost added to the PR 5 hit path.
  template <typename KeyLike>
  void maybe_track_hot_key(Shard& shard, const KeyLike& key) {
    if (hot_enabled_.load(std::memory_order_acquire)) [[unlikely]]
      offer_hot_key(shard, key_material(key));
  }
  static std::string_view key_material(const CacheKey& key) noexcept {
    return key.material();
  }
  static std::string_view key_material(const CacheKeyRef& key) noexcept {
    return key.material;
  }

  /// Common tail of complete_flight/fail_flight: erase the table entry (if
  /// it is still this flight), publish the outcome once, wake everyone.
  void finish_flight(const FlightHandle& handle, FlightWait outcome,
                     std::shared_ptr<const CachedValue> value,
                     std::exception_ptr error);

  void erase_locked(Shard& shard, Map::iterator it);
  /// Returns the number of budget evictions this call performed (expired
  /// reclaims excluded), so store() can flag eviction bursts.
  std::size_t evict_for_budget_locked(Shard& shard, util::TimePoint now);

  Config config_;
  std::size_t shard_mask_;
  std::size_t per_shard_entries_;
  std::size_t per_shard_bytes_;
  const util::Clock* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  CacheStats stats_;
  std::atomic<bool> flights_down_{false};
  std::atomic<bool> hot_enabled_{false};
  HotKeyOptions hot_options_;  // fixed before hot_enabled_ is released
};

}  // namespace wsc::cache
