// The response cache table: key -> (CachedValue, expiry), with TTL expiry,
// LRU eviction under entry- and byte-budgets, and thread safety.
//
// The paper holds all cached objects in memory ("for fair comparison, we
// held all of the cached objects in memory") and notes small memory usage
// is desirable; the byte budget uses each representation's measured
// footprint (Table 9) so eviction pressure reflects the representation
// choice.
//
// Concurrency: the table can be split into independently-locked shards
// (Config::shards).  One shard (the default) gives globally exact LRU;
// more shards trade LRU exactness for lower lock contention under the
// Figure-4 style 25-client hammering (bench_ablation_sharding measures
// the difference).  Entry/byte budgets are split evenly across shards.
#pragma once

#include <chrono>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/cache_key.hpp"
#include "core/cached_value.hpp"
#include "core/stats.hpp"
#include "util/clock.hpp"

namespace wsc::cache {

class ResponseCache {
 public:
  struct Config {
    std::size_t max_entries = 100'000;
    std::size_t max_bytes = 256 * 1024 * 1024;
    /// Number of independently locked shards (>= 1).
    std::size_t shards = 1;
  };

  ResponseCache() : ResponseCache(Config{}) {}
  explicit ResponseCache(Config config,
                         const util::Clock& clock = util::steady_clock());

  /// Fresh-entry lookup.  Returns the stored value (shared; retrieve() is
  /// const and thread-safe) or nullptr on miss/expired.  Counts
  /// hits/misses/expirations and refreshes LRU order.
  std::shared_ptr<const CachedValue> lookup(const CacheKey& key);

  /// Insert or replace.  `ttl` bounds the entry's life from now;
  /// `last_modified` (server-supplied) enables later revalidation.
  /// A non-positive TTL is a no-op counted as `rejected_stores`: an
  /// already-expired entry must never charge the byte budget (where it
  /// could evict live entries before lazy expiry noticed it).
  void store(const CacheKey& key, std::shared_ptr<const CachedValue> value,
             std::chrono::milliseconds ttl,
             std::optional<std::chrono::seconds> last_modified = std::nullopt);

  /// Lookup that also exposes an expired ("stale") entry so the caller can
  /// revalidate it with a conditional request instead of refetching
  /// (§3.2's If-Modified-Since hook).  Stale entries are NOT removed and
  /// no hit/miss is counted for them — the caller reports the outcome via
  /// refresh() (304) or store() (full response).
  struct StaleLookup {
    std::shared_ptr<const CachedValue> value;  // null on true miss
    bool fresh = false;
    std::optional<std::chrono::seconds> last_modified;
    /// How far past expiry the entry is (zero when fresh or missing), so
    /// stale-if-error graces compare against real staleness, not guesses.
    util::Duration staleness{0};
  };
  StaleLookup lookup_for_revalidation(const CacheKey& key);

  /// Degraded-mode lookup (stale-if-error): same exposure of expired
  /// entries as lookup_for_revalidation but with NO side effects — no
  /// hit/miss accounting, no LRU refresh, and crucially no expiry
  /// eviction, so the fallback entry a failing wire call needs cannot be
  /// destroyed by the lookup that finds it.  The fresh-only lookup()
  /// semantics are unchanged.  Callers report the outcome themselves
  /// (CacheStats::on_stale_serve for a degraded read).
  StaleLookup lookup_allow_stale(const CacheKey& key) const;

  /// Give an existing (possibly expired) entry a new lease after a 304.
  /// Returns false if the entry vanished meanwhile.
  bool refresh(const CacheKey& key, std::chrono::milliseconds ttl);

  /// Remove one entry; true if it existed.
  bool invalidate(const CacheKey& key);

  /// Drop everything (administrative flush).
  void clear();

  /// Drop expired entries eagerly (periodic maintenance; lookup() already
  /// lazily expires).  Returns the number removed.
  std::size_t purge_expired();

  /// Entry count and byte footprint, read together: each shard's pair is
  /// taken under that shard's lock in ONE pass, so entries and bytes can
  /// never disagree with each other (the old two-pass
  /// entry_count()+bytes_used() snapshot could interleave with writers and
  /// tear).
  struct Footprint {
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  Footprint footprint() const;

  std::size_t entry_count() const { return footprint().entries; }
  std::size_t bytes_used() const { return footprint().bytes; }
  StatsSnapshot stats() const;
  CacheStats& counters() noexcept { return stats_; }

 private:
  struct Entry {
    std::shared_ptr<const CachedValue> value;
    util::TimePoint expiry;
    std::optional<std::chrono::seconds> last_modified;
    std::size_t bytes = 0;
    std::list<CacheKey>::iterator lru_it;
  };

  using Map = std::unordered_map<CacheKey, Entry, CacheKey::Hasher>;

  struct Shard {
    mutable std::mutex mu;
    Map map;
    std::list<CacheKey> lru;  // front = most recently used
    std::size_t bytes = 0;
  };

  Shard& shard_for(const CacheKey& key);
  void erase_locked(Shard& shard, Map::iterator it);
  void evict_for_budget_locked(Shard& shard);

  Config config_;
  std::size_t per_shard_entries_;
  std::size_t per_shard_bytes_;
  const util::Clock* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  CacheStats stats_;
};

}  // namespace wsc::cache
