// Cache instrumentation counters (thread-safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace wsc::cache {

/// Point-in-time snapshot, cheap to copy into reports.
struct StatsSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t expirations = 0;   // entries found expired on lookup
  std::uint64_t evictions = 0;     // LRU / byte-budget removals
  std::uint64_t invalidations = 0; // explicit invalidate()/clear()
  std::uint64_t revalidations = 0; // stale entries refreshed via 304
  std::uint64_t uncacheable = 0;   // calls bypassing the cache per policy
  std::uint64_t entries = 0;       // current entry count
  std::uint64_t bytes = 0;         // current approximate footprint

  double hit_ratio() const {
    std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  std::string to_string() const;
};

class CacheStats {
 public:
  void on_hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void on_store() { stores_.fetch_add(1, std::memory_order_relaxed); }
  void on_expiration() { expirations_.fetch_add(1, std::memory_order_relaxed); }
  void on_eviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  void on_invalidation() { invalidations_.fetch_add(1, std::memory_order_relaxed); }
  void on_revalidation() { revalidations_.fetch_add(1, std::memory_order_relaxed); }
  void on_uncacheable() { uncacheable_.fetch_add(1, std::memory_order_relaxed); }

  StatsSnapshot snapshot(std::uint64_t entries, std::uint64_t bytes) const;

 private:
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, stores_{0},
      expirations_{0}, evictions_{0}, invalidations_{0}, revalidations_{0},
      uncacheable_{0};
};

}  // namespace wsc::cache
