// Cache instrumentation counters (thread-safe).
//
// Layout matters here: these counters are bumped from the cache's
// contention-free hit path, where a single shared cache line would undo
// the shared_mutex work — every hit on every core would still ping-pong
// one line of atomics ("false sharing").  The write-hot counters (hits,
// misses, stores, expirations, evictions) therefore each own a 64-byte
// cache line via alignas; the cold administrative counters share one.
// All increments and snapshot loads use relaxed ordering consistently —
// they are monotonic tallies, not synchronization points.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <string>

namespace wsc::cache {

/// Point-in-time snapshot, cheap to copy into reports.
struct StatsSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t rejected_stores = 0;  // store() with a non-positive TTL
  std::uint64_t expirations = 0;   // entries found expired on lookup
  std::uint64_t evictions = 0;     // CLOCK / byte-budget removals
  std::uint64_t clock_sweeps = 0;  // ring slots the eviction hand examined
  std::uint64_t second_chances = 0;  // marked entries spared by the hand
  std::uint64_t invalidations = 0; // explicit invalidate()/clear()
  std::uint64_t revalidations = 0; // stale entries refreshed via 304
  std::uint64_t uncacheable = 0;   // calls bypassing the cache per policy
  // Degraded-mode / fault-tolerance counters (ISSUE 3):
  std::uint64_t stale_serves = 0;      // expired entries served on wire failure
  std::uint64_t transport_retries = 0; // wire attempts beyond the first
  std::uint64_t breaker_opens = 0;     // circuit breaker closed/half-open -> open
  std::uint64_t breaker_probes = 0;    // half-open recovery trial calls
  std::uint64_t deadline_hits = 0;     // per-call deadlines exceeded
  // Single-flight / anti-herd counters (ISSUE 8):
  std::uint64_t coalesced_waits = 0;       // followers parked on a leader's call
  std::uint64_t coalesced_failures = 0;    // followers that observed the one broadcast failure
  std::uint64_t stale_while_revalidate_served = 0;  // stale served while a refresh ran
  std::uint64_t refresh_ahead_triggered = 0;        // soft-TTL async refreshes kicked off
  std::uint64_t entries = 0;       // current entry count
  std::uint64_t bytes = 0;         // current approximate footprint

  double hit_ratio() const {
    std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  std::string to_string() const;
};

/// Flat JSON object carrying every snapshot counter verbatim (the /stats
/// admin endpoint's body).
std::string stats_json(const StatsSnapshot& snapshot);

class CacheStats {
 public:
  void on_hit() { hits_.v.fetch_add(1, std::memory_order_relaxed); }
  void on_miss() { misses_.v.fetch_add(1, std::memory_order_relaxed); }
  void on_store() { stores_.v.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_store() { rejected_stores_.fetch_add(1, std::memory_order_relaxed); }
  void on_expiration() { expirations_.v.fetch_add(1, std::memory_order_relaxed); }
  void on_eviction() { evictions_.v.fetch_add(1, std::memory_order_relaxed); }
  void on_clock_sweep() { clock_sweeps_.fetch_add(1, std::memory_order_relaxed); }
  void on_second_chance() { second_chances_.fetch_add(1, std::memory_order_relaxed); }
  void on_invalidation() { invalidations_.fetch_add(1, std::memory_order_relaxed); }
  void on_revalidation() { revalidations_.fetch_add(1, std::memory_order_relaxed); }
  void on_uncacheable() { uncacheable_.fetch_add(1, std::memory_order_relaxed); }
  void on_stale_serve() { stale_serves_.fetch_add(1, std::memory_order_relaxed); }
  void on_transport_retry() { transport_retries_.fetch_add(1, std::memory_order_relaxed); }
  void on_breaker_open() { breaker_opens_.fetch_add(1, std::memory_order_relaxed); }
  void on_breaker_probe() { breaker_probes_.fetch_add(1, std::memory_order_relaxed); }
  void on_deadline_hit() { deadline_hits_.fetch_add(1, std::memory_order_relaxed); }
  void on_coalesced_wait() { coalesced_waits_.fetch_add(1, std::memory_order_relaxed); }
  void on_coalesced_failure() { coalesced_failures_.fetch_add(1, std::memory_order_relaxed); }
  void on_swr_serve() { swr_served_.fetch_add(1, std::memory_order_relaxed); }
  void on_refresh_ahead() { refresh_ahead_.fetch_add(1, std::memory_order_relaxed); }

  StatsSnapshot snapshot(std::uint64_t entries, std::uint64_t bytes) const;

 private:
  /// One counter alone on its cache line.  (Not
  /// hardware_destructive_interference_size: GCC warns it is ABI-unstable
  /// across -mtune; 64 is right for every deployment target we have.)
  struct alignas(64) Padded {
    std::atomic<std::uint64_t> v{0};
  };

  // Write-hot (bumped per lookup/store on the fast path): padded.
  Padded hits_, misses_, stores_, expirations_, evictions_;
  // Cold (eviction sweeps, admin ops, fault handling): packed together is
  // fine — they are never bumped from the contention-free hit path.
  std::atomic<std::uint64_t> rejected_stores_{0}, clock_sweeps_{0},
      second_chances_{0}, invalidations_{0}, revalidations_{0},
      uncacheable_{0}, stale_serves_{0}, transport_retries_{0},
      breaker_opens_{0}, breaker_probes_{0}, deadline_hits_{0},
      coalesced_waits_{0}, coalesced_failures_{0}, swr_served_{0},
      refresh_ahead_{0};
};

}  // namespace wsc::cache
