#include "core/adaptive_policy.hpp"

#include <algorithm>
#include <cstdio>

#include "core/response_cache.hpp"
#include "obs/events.hpp"
#include "obs/profiles.hpp"
#include "util/json.hpp"

namespace wsc::cache {

namespace {

/// FNV-1a: deterministic across platforms (std::hash is not guaranteed
/// to be), so one Config::seed reproduces per-operation sample streams
/// everywhere.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string_view adaptive_objective_name(AdaptiveObjective o) {
  switch (o) {
    case AdaptiveObjective::Latency: return "latency";
    case AdaptiveObjective::Bytes: return "bytes";
    case AdaptiveObjective::Weighted: return "weighted";
  }
  return "?";
}

AdaptivePolicy::AdaptivePolicy(std::shared_ptr<obs::CostProfiles> profiles)
    : AdaptivePolicy(std::move(profiles), Config{}) {}

AdaptivePolicy::AdaptivePolicy(std::shared_ptr<obs::CostProfiles> profiles,
                               Config config, const util::Clock& clock)
    : config_(config),
      profiles_(std::move(profiles)),
      clock_(&clock),
      budget_bytes_(config.budget_bytes) {}

void AdaptivePolicy::bind_cache(std::shared_ptr<const ResponseCache> cache) {
  if (!cache) return;
  std::lock_guard lock(mu_);
  if (bytes_fn_) return;  // first signal wins
  cache_ = std::move(cache);
  const ResponseCache* raw = cache_.get();
  bytes_fn_ = [raw] {
    return static_cast<std::uint64_t>(raw->footprint().bytes);
  };
  if (budget_bytes_ == 0) budget_bytes_ = cache_->max_bytes();
}

void AdaptivePolicy::set_bytes_signal(std::function<std::uint64_t()> bytes_fn,
                                      std::size_t budget_bytes) {
  std::lock_guard lock(mu_);
  if (bytes_fn_) return;  // first signal wins
  bytes_fn_ = std::move(bytes_fn);
  if (budget_bytes > 0) budget_bytes_ = budget_bytes;
}

AdaptivePolicy::OpState& AdaptivePolicy::op_locked(
    std::string_view service, std::string_view operation,
    Representation static_choice,
    const std::vector<Representation>& applicable) {
  auto it = ops_.find(operation);
  if (it != ops_.end()) return it->second;
  OpState op;
  op.service.assign(service);
  op.static_choice = static_choice;
  op.current = static_choice;
  op.applicable.reserve(applicable.size());
  for (Representation r : applicable)
    if (r != Representation::Auto) op.applicable.push_back(r);
  op.rng = util::Rng(config_.seed ^ fnv1a(operation));
  return ops_.emplace(std::string(operation), std::move(op)).first->second;
}

AdaptivePolicy::Choice AdaptivePolicy::choose(
    std::string_view service, std::string_view operation,
    Representation static_choice,
    const std::vector<Representation>& applicable) {
  std::lock_guard lock(mu_);
  OpState& op = op_locked(service, operation, static_choice, applicable);
  maybe_decide_locked();
  Choice choice;
  choice.representation = op.current;
  // Always draw, even when no probe can result: the per-operation stream
  // position then depends only on how many stores the operation has seen,
  // never on the current representation — reproducibility survives
  // switches.
  const double draw = op.rng.next_double();
  if (op.applicable.size() > 1 && draw < config_.sample_fraction) {
    // Round-robin the alternatives so every candidate accrues evidence
    // at the same rate.
    for (std::size_t i = 0; i < op.applicable.size(); ++i) {
      const Representation r =
          op.applicable[op.probe_cursor++ % op.applicable.size()];
      if (r != op.current) {
        choice.probe = r;
        op.probes += 1;
        explore_stores_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  return choice;
}

Representation AdaptivePolicy::current(std::string_view operation) const {
  std::lock_guard lock(mu_);
  auto it = ops_.find(operation);
  return it == ops_.end() ? Representation::Auto : it->second.current;
}

void AdaptivePolicy::decide_now() {
  std::lock_guard lock(mu_);
  decide_locked();
}

std::size_t AdaptivePolicy::operation_count() const {
  std::lock_guard lock(mu_);
  return ops_.size();
}

void AdaptivePolicy::maybe_decide_locked() {
  const util::TimePoint now = clock_->now();
  if (last_decision_ == util::TimePoint{}) {
    last_decision_ = now;  // first store arms the interval
    return;
  }
  if (now - last_decision_ >= config_.decision_interval) decide_locked();
}

void AdaptivePolicy::refresh_models_locked() {
  if (!profiles_) return;
  // Fold this epoch's per-(operation, representation) deltas of the
  // lifetime profile sums into the EWMA models.  Deltas of exact sums —
  // not windowed means — so no sample is ever double-counted or lost
  // between decision passes.
  const std::vector<obs::CostProfiles::Row> rows = profiles_->snapshot();
  for (const obs::CostProfiles::Row& row : rows) {
    auto it = ops_.find(row.operation);
    if (it == ops_.end() || it->second.service != row.service) continue;
    OpState& op = it->second;
    const auto rep = representation_from_name(row.representation);
    if (!rep || *rep == Representation::Auto) continue;
    RepModel& m = op.models[static_cast<std::size_t>(*rep)];

    const std::uint64_t dhc = row.hit_ns.count - m.last_hit_count;
    const std::uint64_t dhs = row.hit_ns.sum_ns - m.last_hit_sum;
    if (dhc > 0) {
      const double epoch = static_cast<double>(dhs) / static_cast<double>(dhc);
      m.hit_ewma = m.last_hit_count
                       ? config_.ewma_alpha * epoch +
                             (1 - config_.ewma_alpha) * m.hit_ewma
                       : epoch;
    }
    m.last_hit_count = row.hit_ns.count;
    m.last_hit_sum = row.hit_ns.sum_ns;
    m.samples = row.hit_ns.count;

    const std::uint64_t dsc = row.store_ns.count - m.last_store_count;
    const std::uint64_t dss = row.store_ns.sum_ns - m.last_store_sum;
    if (dsc > 0) {
      const double epoch = static_cast<double>(dss) / static_cast<double>(dsc);
      m.store_ewma = m.last_store_count
                         ? config_.ewma_alpha * epoch +
                               (1 - config_.ewma_alpha) * m.store_ewma
                         : epoch;
    }
    m.last_store_count = row.store_ns.count;
    m.last_store_sum = row.store_ns.sum_ns;

    const std::uint64_t dec = row.stored_entries - m.last_entries;
    const std::uint64_t dby = row.bytes_sum - m.last_bytes;
    if (dec > 0) {
      const double epoch = static_cast<double>(dby) / static_cast<double>(dec);
      m.bytes_ewma = m.last_entries
                         ? config_.ewma_alpha * epoch +
                               (1 - config_.ewma_alpha) * m.bytes_ewma
                         : epoch;
    }
    m.last_entries = row.stored_entries;
    m.last_bytes = row.bytes_sum;
    // "Seen" means ANY data: a serving representation in an all-miss
    // workload has store/bytes feeds but no hit samples, and must still
    // be scoreable under the bytes objective.
    if (dhc > 0 || dsc > 0 || dec > 0) m.seen = true;
  }
  // Operation-level miss ratio: hits/misses land only on the SERVING
  // representation's row (probes never touch counters), so aggregating
  // the per-representation rows per operation tracks real traffic.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>, std::less<>>
      totals;
  for (const obs::CostProfiles::Row& row : rows) {
    auto it = ops_.find(row.operation);
    if (it == ops_.end() || it->second.service != row.service) continue;
    auto& t = totals[row.operation];
    t.first += row.hits;
    t.second += row.misses;
  }
  for (auto& [operation, t] : totals) {
    OpState& op = ops_.find(operation)->second;
    const std::uint64_t dh = t.first - op.last_hits;
    const std::uint64_t dm = t.second - op.last_misses;
    if (dh + dm > 0) {
      const double epoch =
          static_cast<double>(dm) / static_cast<double>(dh + dm);
      op.miss_ratio_ewma = op.miss_ratio_seen
                               ? config_.ewma_alpha * epoch +
                                     (1 - config_.ewma_alpha) *
                                         op.miss_ratio_ewma
                               : epoch;
      op.miss_ratio_seen = true;
    }
    op.last_hits = t.first;
    op.last_misses = t.second;
  }
}

void AdaptivePolicy::update_pressure_locked() {
  if (!bytes_fn_ || budget_bytes_ == 0) return;
  const double bytes = static_cast<double>(bytes_fn_());
  const double budget = static_cast<double>(budget_bytes_);
  if (!pressure_flag_ && bytes > config_.high_watermark * budget) {
    pressure_flag_ = true;
    pressure_.store(true, std::memory_order_relaxed);
    pressure_transitions_.fetch_add(1, std::memory_order_relaxed);
    obs::event_log().emit(
        obs::EventKind::MemoryPressure, "adaptive",
        "cache bytes over high watermark; objective forced to bytes",
        static_cast<std::uint64_t>(bytes));
  } else if (pressure_flag_ && bytes < config_.low_watermark * budget) {
    pressure_flag_ = false;
    pressure_.store(false, std::memory_order_relaxed);
    pressure_transitions_.fetch_add(1, std::memory_order_relaxed);
    obs::event_log().emit(
        obs::EventKind::MemoryPressure, "adaptive",
        "cache bytes back under low watermark; objective restored",
        static_cast<std::uint64_t>(bytes));
  }
}

double AdaptivePolicy::score_locked(const OpState& op, Representation r,
                                    AdaptiveObjective objective) const {
  const RepModel& m = op.models[static_cast<std::size_t>(r)];
  if (!m.seen) return -1;
  // Bytes needs no latency confidence: entry sizes are near-deterministic
  // and the incumbent's come from real stores.  Critically, an all-miss
  // churn workload (exactly where memory pressure arises) produces NO hit
  // samples for the serving representation — gating bytes on the latency
  // sample floor would deadlock the pressure escape hatch.
  if (objective == AdaptiveObjective::Bytes)
    return m.bytes_ewma > 0 ? m.bytes_ewma : -1;
  if (m.samples < config_.min_samples) return -1;
  // Unknown miss ratio weighs stores fully (conservative) — it becomes
  // real as soon as the first decision epoch sees traffic.
  const double miss_ratio = op.miss_ratio_seen ? op.miss_ratio_ewma : 1.0;
  const double latency = m.hit_ewma + miss_ratio * m.store_ewma;
  switch (objective) {
    case AdaptiveObjective::Latency:
      return latency;
    case AdaptiveObjective::Bytes:
      break;  // handled above
    case AdaptiveObjective::Weighted:
      if (m.bytes_ewma <= 0) return -1;
      return config_.alpha * latency + config_.beta * m.bytes_ewma;
  }
  return -1;
}

void AdaptivePolicy::decide_locked() {
  last_decision_ = clock_->now();
  decisions_.fetch_add(1, std::memory_order_relaxed);
  refresh_models_locked();
  update_pressure_locked();
  const AdaptiveObjective objective = effective_objective_locked();
  for (auto& [operation, op] : ops_) {
    op.current_score = score_locked(op, op.current, objective);
    if (op.current_score < 0) continue;  // incumbent unmeasured: hold
    Representation best = op.current;
    double best_score = op.current_score;
    for (Representation r : op.applicable) {
      if (r == op.current) continue;
      const double s = score_locked(op, r, objective);
      if (s >= 0 && s < best_score) {
        best = r;
        best_score = s;
      }
    }
    if (best != op.current &&
        best_score < op.current_score * (1 - config_.min_improvement)) {
      const Representation from = op.current;
      op.current = best;
      op.switches += 1;
      switches_.fetch_add(1, std::memory_order_relaxed);
      std::string detail;
      detail.reserve(96);
      detail.append(representation_name(from));
      detail.append(" -> ");
      detail.append(representation_name(best));
      detail.append(" (");
      detail.append(adaptive_objective_name(objective));
      detail.append(" ");
      detail.append(num(op.current_score));
      detail.append(" -> ");
      detail.append(num(best_score));
      detail.append(")");
      obs::event_log().emit(obs::EventKind::AdaptiveSwitch,
                            op.service + "." + operation, detail,
                            static_cast<std::uint64_t>(best_score));
      op.current_score = best_score;
    }
  }
}

std::vector<AdaptivePolicy::OperationState> AdaptivePolicy::snapshot() const {
  std::lock_guard lock(mu_);
  const AdaptiveObjective objective = effective_objective_locked();
  std::vector<OperationState> out;
  out.reserve(ops_.size());
  for (const auto& [operation, op] : ops_) {
    OperationState s;
    s.service = op.service;
    s.operation = operation;
    s.representation = op.current;
    s.static_choice = op.static_choice;
    s.effective_objective = objective;
    s.current_score = op.current_score;
    s.switches = op.switches;
    s.probes = op.probes;
    s.candidates.reserve(op.applicable.size());
    for (Representation r : op.applicable) {
      const RepModel& m = op.models[static_cast<std::size_t>(r)];
      OperationState::RepScore rs;
      rs.representation = r;
      rs.score = score_locked(op, r, objective);
      rs.hit_ns = m.hit_ewma;
      rs.store_ns = m.store_ewma;
      rs.bytes_per_entry = m.bytes_ewma;
      rs.samples = m.samples;
      s.candidates.push_back(rs);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string AdaptivePolicy::json() const {
  std::vector<OperationState> ops = snapshot();
  std::string out = "{\n  \"objective\": \"";
  out += adaptive_objective_name(config_.objective);
  out += "\",\n  \"alpha\": " + num(config_.alpha) +
         ",\n  \"beta\": " + num(config_.beta) +
         ",\n  \"sample_fraction\": " + num(config_.sample_fraction) +
         ",\n  \"seed\": " + std::to_string(config_.seed) +
         ",\n  \"decision_interval_ms\": " +
         std::to_string(config_.decision_interval.count()) +
         ",\n  \"memory_pressure\": " +
         (memory_pressure() ? "true" : "false") +
         ",\n  \"pressure_transitions\": " +
         std::to_string(pressure_transitions()) +
         ",\n  \"decisions\": " + std::to_string(decisions()) +
         ",\n  \"switches\": " + std::to_string(switches()) +
         ",\n  \"explore_stores\": " + std::to_string(explore_stores()) +
         ",\n  \"operations\": [";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const OperationState& s = ops[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"service\": \"" + util::json::escape(s.service) +
           "\", \"operation\": \"" + util::json::escape(s.operation) +
           "\", \"representation\": \"" +
           std::string(representation_name(s.representation)) +
           "\", \"static_choice\": \"" +
           std::string(representation_name(s.static_choice)) +
           "\", \"effective_objective\": \"" +
           std::string(adaptive_objective_name(s.effective_objective)) +
           "\", \"score\": " + num(s.current_score) +
           ", \"switches\": " + std::to_string(s.switches) +
           ", \"probes\": " + std::to_string(s.probes) +
           ", \"candidates\": [";
    for (std::size_t j = 0; j < s.candidates.size(); ++j) {
      const OperationState::RepScore& rs = s.candidates[j];
      out += j ? ", " : "";
      out += "{\"representation\": \"" +
             std::string(representation_name(rs.representation)) +
             "\", \"score\": " + num(rs.score) +
             ", \"hit_ns\": " + num(rs.hit_ns) +
             ", \"store_ns\": " + num(rs.store_ns) +
             ", \"bytes_per_entry\": " + num(rs.bytes_per_entry) +
             ", \"samples\": " + std::to_string(rs.samples) + "}";
    }
    out += "]}";
  }
  out += ops.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace wsc::cache
