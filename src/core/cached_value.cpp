#include "core/cached_value.hpp"

#include "reflect/algorithms.hpp"
#include "reflect/serialize.hpp"
#include "soap/deserializer.hpp"
#include "util/error.hpp"

namespace wsc::cache {

// --- XmlMessageValue ---------------------------------------------------------

reflect::Object XmlMessageValue::retrieve() const {
  // Full pipeline on every hit: tokenize + namespace-process + deserialize.
  return soap::read_response(source_, *op_);
}

std::size_t XmlMessageValue::memory_size() const {
  return sizeof(*this) + source_.text().capacity();
}

// --- SaxEventsValue ----------------------------------------------------------

reflect::Object SaxEventsValue::retrieve() const {
  // Replay events into the same ResponseReader the live parser feeds; only
  // the tokenizer is skipped (§4.2.2).
  return soap::read_response(events_, *op_);
}

std::size_t SaxEventsValue::memory_size() const {
  return sizeof(*this) - sizeof(xml::EventSequence) + events_.memory_size();
}

// --- CompactSaxEventsValue ---------------------------------------------------

reflect::Object CompactSaxEventsValue::retrieve() const {
  // Identical replay path to SaxEventsValue — the deserializer cannot tell
  // the sources apart — but the walk is over flat records and the views it
  // hands out point into the arena: zero allocations per event.
  return soap::read_response(events_, *op_);
}

std::size_t CompactSaxEventsValue::memory_size() const {
  return sizeof(*this) - sizeof(xml::CompactEventSequence) +
         events_.memory_size();
}

// --- SerializedValue ---------------------------------------------------------

SerializedValue::SerializedValue(const reflect::Object& response)
    : bytes_(reflect::serialize(response)) {}

reflect::Object SerializedValue::retrieve() const {
  return reflect::deserialize(bytes_);
}

std::size_t SerializedValue::memory_size() const {
  return sizeof(*this) + bytes_.capacity();
}

// --- ReflectionCopyValue -----------------------------------------------------

ReflectionCopyValue::ReflectionCopyValue(const reflect::Object& response) {
  if (response && !reflect::supports_reflection_copy(response.type()))
    throw SerializationError("copy by reflection: type '" +
                             response.type().name +
                             "' is neither bean-type nor array-type");
  stored_ = reflect::deep_copy(response);  // copy on store (§3.1)
}

reflect::Object ReflectionCopyValue::retrieve() const {
  return reflect::deep_copy(stored_);  // copy on every hit (§3.1)
}

std::size_t ReflectionCopyValue::memory_size() const {
  return sizeof(*this) + reflect::memory_size(stored_);
}

// --- CloneCopyValue ----------------------------------------------------------

CloneCopyValue::CloneCopyValue(const reflect::Object& response)
    : stored_(reflect::clone(response)) {}

reflect::Object CloneCopyValue::retrieve() const {
  return reflect::clone(stored_);
}

std::size_t CloneCopyValue::memory_size() const {
  return sizeof(*this) + reflect::memory_size(stored_);
}

// --- ReferenceValue ----------------------------------------------------------

std::size_t ReferenceValue::memory_size() const {
  return sizeof(*this) + reflect::memory_size(stored_);
}

// --- factory -----------------------------------------------------------------

std::unique_ptr<CachedValue> make_cached_value(Representation representation,
                                               ResponseCapture& capture) {
  switch (representation) {
    case Representation::XmlMessage:
      if (!capture.response_xml || !capture.op)
        throw Error("XmlMessageValue needs the response document");
      return std::make_unique<XmlMessageValue>(*capture.response_xml,
                                               capture.op);
    case Representation::SaxEvents:
      if (!capture.events || !capture.op)
        throw Error("SaxEventsValue needs recorded parse events");
      return std::make_unique<SaxEventsValue>(std::move(*capture.events),
                                              capture.op);
    case Representation::SaxEventsCompact:
      if (!capture.compact_events || !capture.op)
        throw Error(
            "CompactSaxEventsValue needs a compact parse recording");
      return std::make_unique<CompactSaxEventsValue>(
          std::move(*capture.compact_events), capture.op);
    case Representation::Serialized:
      return std::make_unique<SerializedValue>(capture.object);
    case Representation::ReflectionCopy:
      return std::make_unique<ReflectionCopyValue>(capture.object);
    case Representation::CloneCopy:
      return std::make_unique<CloneCopyValue>(capture.object);
    case Representation::Reference:
      return std::make_unique<ReferenceValue>(capture.object);
    case Representation::Auto:
      throw Error("make_cached_value: Auto must be resolved by the caller");
  }
  throw Error("make_cached_value: bad representation");
}

}  // namespace wsc::cache
