// Cache policy: which operations are cacheable, for how long, and in which
// representation (paper section 3.2).
//
// "We suggest that these cache policies are configured by a client
// application administrator or deployer" — this header is that
// configuration surface.  Policies are per-operation; the default for an
// unconfigured operation is UNCACHEABLE, the safe choice for unknown
// (possibly state-changing) operations like Amazon's cart calls.
#pragma once

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/representation.hpp"
#include "http/cache_headers.hpp"

namespace wsc::cache {

/// Degraded-mode knobs (the availability side of §3.2's "consistency is
/// the administrator's policy decision").  Mirrors the per-operation
/// cacheability table: operations whose results tolerate staleness under
/// failure opt in; everything else keeps fail-fast semantics.
struct StalenessPolicy {
  /// stale-if-error grace (RFC 5861 analogue): when the wire call fails
  /// after retries — breaker open, deadline exceeded, truncated/corrupt
  /// response — an entry expired by at most this much may be served
  /// instead of surfacing the error.  Zero disables stale serving.
  std::chrono::milliseconds stale_if_error{0};
  /// stale-while-revalidate grace (the other RFC 5861 directive): an entry
  /// expired by at most this much is served *immediately* while ONE
  /// background refresh revalidates it — a TTL-expiry storm on a hot key
  /// never blocks callers on the wire.  Zero disables it.
  std::chrono::milliseconds stale_while_revalidate{0};
};

struct OperationPolicy {
  bool cacheable = false;
  /// Entry lifetime; "short enough to avoid consistency problems" is a
  /// service-semantics judgement the administrator makes (e.g. one hour for
  /// Google operations).
  std::chrono::milliseconds ttl{std::chrono::hours(1)};
  /// Representation, Auto = section-6 runtime classification.
  Representation representation = Representation::Auto;
  /// §4.2.4: the administrator asserts the client never mutates the
  /// returned object, enabling pass-by-reference for mutable types.
  bool read_only = false;
  /// Auto mode: prefer the generated clone over reflection when available.
  bool prefer_clone = false;
  /// After TTL expiry, try an If-Modified-Since revalidation before a full
  /// refetch (needs a server that sends Last-Modified; §3.2's HTTP hook).
  /// A 304 renews the entry's lease without reparsing or re-storing.
  bool revalidate = false;
  /// Degraded-mode behaviour when the origin is unreachable.
  StalenessPolicy staleness;
  /// Soft-TTL refresh-ahead: after this fraction of the TTL has elapsed,
  /// the FIRST hit triggers one asynchronous background refresh, so a hot
  /// key's entry is renewed before it ever expires (no stall at expiry).
  /// 0 disables; meaningful values are in (0, 1), e.g. 0.8.
  double refresh_ahead = 0.0;
};

class CachePolicy {
 public:
  /// Configure one operation.
  CachePolicy& set(const std::string& operation, OperationPolicy policy);

  /// Shorthand: mark cacheable with a TTL and default Auto representation.
  CachePolicy& cacheable(const std::string& operation,
                         std::chrono::milliseconds ttl = std::chrono::hours(1),
                         Representation representation = Representation::Auto);

  /// Explicitly uncacheable (documents intent; same as not configuring).
  CachePolicy& uncacheable(const std::string& operation);

  /// Grant an already-configured operation a stale-if-error grace (see
  /// StalenessPolicy).  Creates the entry if absent, but note a grace on
  /// an operation that is not cacheable has no effect.
  CachePolicy& stale_if_error(const std::string& operation,
                              std::chrono::milliseconds grace);

  /// Grant an already-configured operation a stale-while-revalidate grace
  /// (see StalenessPolicy); same caveats as stale_if_error().
  CachePolicy& stale_while_revalidate(const std::string& operation,
                                      std::chrono::milliseconds grace);

  /// Enable soft-TTL refresh-ahead for an operation (see
  /// OperationPolicy::refresh_ahead); same caveats as stale_if_error().
  CachePolicy& refresh_ahead(const std::string& operation, double fraction);

  /// Policy lookup; unconfigured operations return the uncacheable default.
  const OperationPolicy& lookup(std::string_view operation) const;

  /// When true (default), a server Cache-Control response header tightens
  /// the administrator's configuration: no-store/no-cache suppresses
  /// storing, max-age lowers the TTL.  The server can only make caching
  /// more conservative, never enable it (§3.2: policy responsibility stays
  /// with the client administrator).
  CachePolicy& honor_server_directives(bool honor);
  bool honors_server_directives() const noexcept { return honor_server_; }

  /// Effective TTL after applying server directives to the configured
  /// policy; nullopt means "do not store at all".
  std::optional<std::chrono::milliseconds> effective_ttl(
      const OperationPolicy& policy,
      const http::CacheDirectives& directives) const;

 private:
  std::map<std::string, OperationPolicy, std::less<>> policies_;
  OperationPolicy default_policy_{};  // uncacheable
  bool honor_server_ = true;
};

}  // namespace wsc::cache
