#include "core/response_cache.hpp"

#include <bit>
#include <condition_variable>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/events.hpp"

namespace wsc::cache {

namespace {
/// One store() evicting at least this many live entries is an eviction
/// burst — worth a structured event, not just a counter tick.
constexpr std::size_t kEvictionBurstThreshold = 8;
}  // namespace

/// One in-flight backend call.  Owns a copy of the key material (joiners
/// arrive with borrowed KeyScratch views that die when their caller's stack
/// unwinds) and the usual monitor state.  The table entry is erased when
/// the leader finishes, but waiters hold shared_ptrs, so a slow follower
/// can still read the published outcome afterwards.
class ResponseCache::Flight {
 public:
  Flight(std::string material, std::uint64_t h)
      : key_material(std::move(material)), hash(h) {}

  const std::string key_material;
  const std::uint64_t hash;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;                     // outcome published, cv notified
  FlightWait outcome = FlightWait::Shutdown;
  std::shared_ptr<const CachedValue> value;
  std::exception_ptr error;
  std::size_t waiters = 0;  // currently parked followers (event detail)
};

/// string_view keys point into each Flight's owned key_material, so the
/// map allocates nothing per probe and nothing beyond the Flight per miss.
struct ResponseCache::FlightTable {
  std::mutex mu;
  std::unordered_map<std::string_view, std::shared_ptr<Flight>> map;
};

ResponseCache::Shard::Shard() : flights(std::make_unique<FlightTable>()) {}
ResponseCache::Shard::~Shard() = default;

std::size_t default_shard_count() noexcept {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;  // the standard allows "unknown"
  return std::bit_ceil(std::min<std::size_t>(hw, 64));
}

ResponseCache::ResponseCache(Config config, const util::Clock& clock)
    : config_(config), clock_(&clock) {
  if (config_.shards == 0) config_.shards = 1;
  config_.shards = std::bit_ceil(config_.shards);  // mask-selectable
  shard_mask_ = config_.shards - 1;
  per_shard_entries_ =
      std::max<std::size_t>(1, config_.max_entries / config_.shards);
  per_shard_bytes_ =
      std::max<std::size_t>(1, config_.max_bytes / config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResponseCache::~ResponseCache() { shutdown_flights(); }

template <typename KeyLike>
std::shared_ptr<const CachedValue> ResponseCache::lookup_impl(
    const KeyLike& key) {
  Shard& shard = shard_for_hash(CacheKey::Hasher{}(key));
  maybe_track_hot_key(shard, key);
  const Tick now = tick(clock_->now());
  {
    // Fast path: shared lock only.  A hit reads the map, checks the atomic
    // expiry tick, sets the CLOCK mark (relaxed — it is a recency hint,
    // not a synchronization point) and copies the shared_ptr.  No list
    // splice, no allocation, no exclusive section: concurrent hits on one
    // shard proceed fully in parallel.
    std::shared_lock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      stats_.on_miss();
      return nullptr;
    }
    if (now < it->second.expiry.load(std::memory_order_acquire)) {
      it->second.mark.store(true, std::memory_order_relaxed);
      stats_.on_hit();
      return it->second.value;
    }
  }
  // Rare path: the entry expired.  Re-find under the unique lock (it may
  // have been refreshed, replaced, or erased since we dropped the shared
  // lock) and lazily remove it if it is still dead.
  std::unique_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    stats_.on_miss();
    return nullptr;
  }
  if (tick(clock_->now()) <
      it->second.expiry.load(std::memory_order_acquire)) {
    // Raced with a concurrent store/refresh that revived the entry.
    it->second.mark.store(true, std::memory_order_relaxed);
    stats_.on_hit();
    return it->second.value;
  }
  erase_locked(shard, it);
  stats_.on_expiration();
  stats_.on_miss();
  return nullptr;
}

std::shared_ptr<const CachedValue> ResponseCache::lookup(const CacheKey& key) {
  return lookup_impl(key);
}

std::shared_ptr<const CachedValue> ResponseCache::lookup(
    const CacheKeyRef& key) {
  return lookup_impl(key);
}

void ResponseCache::store(const CacheKey& key,
                          std::shared_ptr<const CachedValue> value,
                          std::chrono::milliseconds ttl,
                          std::optional<std::chrono::seconds> last_modified,
                          std::chrono::milliseconds soft_ttl) {
  if (ttl <= std::chrono::milliseconds::zero()) {
    stats_.on_rejected_store();
    return;
  }
  std::size_t bytes = key.memory_size() + value->memory_size();
  Shard& shard = shard_for_hash(key.hash());
  const util::TimePoint now = clock_->now();
  std::size_t evicted = 0;
  {
    std::unique_lock lock(shard.mu);
    // One hash lookup for both the insert and the replace case: replacing an
    // entry updates it in place (and reuses its ring slot) instead of the
    // old erase-then-reinsert, which hashed the key twice.
    auto [it, inserted] = shard.map.try_emplace(key);
    Entry& entry = it->second;
    if (inserted) {
      entry.key = &it->first;
      // Splice just behind the hand: the sweep reaches the newcomer last
      // (second-chance FIFO).  New entries enter with the mark CLEAR: CLOCK
      // earns its second chance from a hit, not from mere admission
      // (otherwise one sweep pass can never distinguish a hot entry from a
      // cold newcomer).
      if (shard.hand == nullptr) {
        entry.ring_prev = entry.ring_next = &entry;
        shard.hand = &entry;
      } else {
        Entry* hand = shard.hand;
        entry.ring_prev = hand->ring_prev;
        entry.ring_next = hand;
        hand->ring_prev->ring_next = &entry;
        hand->ring_prev = &entry;
      }
    } else {
      shard.bytes -= entry.bytes;
      // A replace is a use: spare the entry on the next sweep.
      entry.mark.store(true, std::memory_order_relaxed);
    }
    entry.value = std::move(value);
    entry.expiry.store(tick(now + ttl), std::memory_order_release);
    // Arm (or disarm) the one-shot refresh-ahead claim.  A soft TTL at or
    // past the hard TTL is meaningless — expiry handling owns that case.
    entry.soft_expiry.store(
        (soft_ttl > std::chrono::milliseconds::zero() && soft_ttl < ttl)
            ? tick(now + soft_ttl)
            : Tick{0},
        std::memory_order_relaxed);
    entry.last_modified = last_modified;
    entry.bytes = bytes;
    shard.bytes += bytes;
    stats_.on_store();
    evicted = evict_for_budget_locked(shard, now);
  }
  // Emit outside the shard lock: the event log has its own mutex and the
  // detail string formatting should not extend the exclusive section.
  if (evicted >= kEvictionBurstThreshold) {
    obs::event_log().emit(
        obs::EventKind::EvictionBurst, "cache",
        "one store evicted " + std::to_string(evicted) + " live entries",
        evicted);
  }
}

template <typename KeyLike>
ResponseCache::StaleLookup ResponseCache::lookup_for_revalidation_impl(
    const KeyLike& key) {
  Shard& shard = shard_for_hash(CacheKey::Hasher{}(key));
  maybe_track_hot_key(shard, key);
  // Shared lock throughout: the fresh path only marks + counts, and the
  // stale path deliberately leaves the entry alone (its outcome — refresh
  // vs re-store vs drop — is the caller's).
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    stats_.on_miss();
    return {};
  }
  StaleLookup out;
  out.value = it->second.value;
  out.last_modified = it->second.last_modified;
  const Tick now = tick(clock_->now());
  const Tick expiry = it->second.expiry.load(std::memory_order_acquire);
  out.fresh = now < expiry;
  if (out.fresh) {
    it->second.mark.store(true, std::memory_order_relaxed);
    stats_.on_hit();
    // Soft-TTL refresh-ahead: past the soft expiry, exactly one hit wins
    // the claim (CAS to the 0 sentinel) and owes a background refresh.
    Tick soft = it->second.soft_expiry.load(std::memory_order_relaxed);
    if (soft != Tick{0} && now >= soft &&
        it->second.soft_expiry.compare_exchange_strong(
            soft, Tick{0}, std::memory_order_relaxed))
      out.refresh_ahead = true;
  } else {
    out.staleness = util::Duration(now - expiry);
  }
  return out;
}

ResponseCache::StaleLookup ResponseCache::lookup_for_revalidation(
    const CacheKey& key) {
  return lookup_for_revalidation_impl(key);
}

ResponseCache::StaleLookup ResponseCache::lookup_for_revalidation(
    const CacheKeyRef& key) {
  return lookup_for_revalidation_impl(key);
}

ResponseCache::StaleLookup ResponseCache::lookup_allow_stale(
    const CacheKey& key) const {
  const Shard& shard = shard_for_hash(key.hash());
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return {};
  StaleLookup out;
  out.value = it->second.value;
  out.last_modified = it->second.last_modified;
  const Tick now = tick(clock_->now());
  const Tick expiry = it->second.expiry.load(std::memory_order_acquire);
  out.fresh = now < expiry;
  if (!out.fresh) out.staleness = util::Duration(now - expiry);
  return out;
}

bool ResponseCache::refresh(const CacheKey& key, std::chrono::milliseconds ttl,
                            std::chrono::milliseconds soft_ttl) {
  Shard& shard = shard_for_hash(key.hash());
  // Renewing a lease mutates only the atomic expiry tick and the CLOCK
  // mark, so a shared lock suffices — revalidation storms do not serialize
  // against the hit path.
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  const util::TimePoint now = clock_->now();
  it->second.expiry.store(tick(now + ttl), std::memory_order_release);
  it->second.soft_expiry.store(
      (soft_ttl > std::chrono::milliseconds::zero() && soft_ttl < ttl)
          ? tick(now + soft_ttl)
          : Tick{0},
      std::memory_order_relaxed);
  it->second.mark.store(true, std::memory_order_relaxed);
  stats_.on_revalidation();
  return true;
}

ResponseCache::FlightHandle ResponseCache::join_flight(const CacheKeyRef& key) {
  if (flights_down_.load(std::memory_order_acquire)) return {};
  FlightTable& table = *shard_for_hash(key.hash).flights;
  std::lock_guard lock(table.mu);
  // Re-check under the table mutex: shutdown_flights() drains each table
  // under this lock, so a join that sees the flag clear here is ordered
  // before the drain and its flight WILL be woken.
  if (flights_down_.load(std::memory_order_acquire)) return {};
  auto it = table.map.find(key.material);
  if (it != table.map.end()) return {it->second, /*leader=*/false};
  auto flight = std::make_shared<Flight>(std::string(key.material), key.hash);
  table.map.emplace(std::string_view(flight->key_material), flight);
  return {std::move(flight), /*leader=*/true};
}

ResponseCache::FlightResult ResponseCache::wait_flight(
    const FlightHandle& handle, std::chrono::milliseconds timeout) {
  FlightResult out;  // defaults to Shutdown
  if (!handle.flight || handle.leader) return out;
  Flight& flight = *handle.flight;
  stats_.on_coalesced_wait();
  std::unique_lock lock(flight.mu);
  ++flight.waiters;
  const bool finished =
      flight.cv.wait_for(lock, timeout, [&] { return flight.done; });
  --flight.waiters;
  if (!finished) {
    out.outcome = FlightWait::Timeout;
    return out;
  }
  out.outcome = flight.outcome;
  out.value = flight.value;
  out.error = flight.error;
  if (out.outcome == FlightWait::Error) stats_.on_coalesced_failure();
  return out;
}

void ResponseCache::finish_flight(const FlightHandle& handle,
                                  FlightWait outcome,
                                  std::shared_ptr<const CachedValue> value,
                                  std::exception_ptr error) {
  if (!handle.flight || !handle.leader) return;
  Flight& flight = *handle.flight;
  {
    // Retire the table entry first so a racing join opens a NEW flight
    // instead of boarding one that is already landing.
    FlightTable& table = *shard_for_hash(flight.hash).flights;
    std::lock_guard lock(table.mu);
    auto it = table.map.find(std::string_view(flight.key_material));
    if (it != table.map.end() && it->second == handle.flight)
      table.map.erase(it);
  }
  std::size_t parked = 0;
  {
    std::lock_guard lock(flight.mu);
    if (flight.done) return;  // shutdown_flights() already published
    flight.outcome = outcome;
    flight.value = std::move(value);
    flight.error = std::move(error);
    flight.done = true;
    parked = flight.waiters;
    flight.cv.notify_all();
  }
  // The one broadcast failure is an operational event: N callers saw ONE
  // error where an uncoalesced herd would have produced N backend calls
  // and N errors.  Emit outside both locks.
  if (outcome == FlightWait::Error)
    obs::event_log().emit(obs::EventKind::LeaderFailure, "cache",
                          "coalesced leader failed; one error broadcast to " +
                              std::to_string(parked) + " waiter(s)",
                          parked);
}

void ResponseCache::complete_flight(const FlightHandle& handle,
                                    std::shared_ptr<const CachedValue> value) {
  const FlightWait outcome =
      value ? FlightWait::Value : FlightWait::NoValue;
  finish_flight(handle, outcome, std::move(value), nullptr);
}

void ResponseCache::fail_flight(const FlightHandle& handle,
                                std::exception_ptr error) {
  finish_flight(handle, FlightWait::Error, nullptr, std::move(error));
}

void ResponseCache::shutdown_flights() {
  // Flag first (join_flight re-checks it under each table mutex), then
  // drain every table and wake the orphans.  Leaders that finish later
  // find their table entry gone and the outcome already published — their
  // complete/fail becomes a no-op.
  flights_down_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Flight>> orphans;
  for (auto& shard : shards_) {
    FlightTable& table = *shard->flights;
    std::lock_guard lock(table.mu);
    for (auto& [material, flight] : table.map)
      orphans.push_back(std::move(flight));
    table.map.clear();
  }
  for (auto& flight : orphans) {
    std::lock_guard lock(flight->mu);
    if (flight->done) continue;
    flight->outcome = FlightWait::Shutdown;
    flight->done = true;
    flight->cv.notify_all();
  }
}

bool ResponseCache::invalidate(const CacheKey& key) {
  Shard& shard = shard_for_hash(key.hash());
  std::unique_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  erase_locked(shard, it);
  stats_.on_invalidation();
  return true;
}

void ResponseCache::clear() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mu);
    std::size_t n = shard->map.size();
    shard->map.clear();
    shard->hand = nullptr;
    shard->bytes = 0;
    for (std::size_t i = 0; i < n; ++i) stats_.on_invalidation();
  }
}

std::size_t ResponseCache::purge_expired() {
  const Tick now = tick(clock_->now());
  std::size_t removed = 0;
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (now >= it->second.expiry.load(std::memory_order_acquire)) {
        auto victim = it++;
        erase_locked(*shard, victim);
        stats_.on_expiration();
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

ResponseCache::Footprint ResponseCache::footprint() const {
  Footprint f;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    f.entries += shard->map.size();
    f.bytes += shard->bytes;
  }
  return f;
}

StatsSnapshot ResponseCache::stats() const {
  Footprint f = footprint();
  return stats_.snapshot(f.entries, f.bytes);
}

void ResponseCache::erase_locked(Shard& shard, Map::iterator it) {
  Entry& entry = it->second;
  shard.bytes -= entry.bytes;
  if (entry.ring_next == &entry) {
    shard.hand = nullptr;  // last node
  } else {
    entry.ring_prev->ring_next = entry.ring_next;
    entry.ring_next->ring_prev = entry.ring_prev;
    if (shard.hand == &entry) shard.hand = entry.ring_next;
  }
  shard.map.erase(it);
}

std::size_t ResponseCache::evict_for_budget_locked(Shard& shard,
                                                   util::TimePoint now_tp) {
  const Tick now = tick(now_tp);
  std::size_t evicted = 0;
  while (shard.map.size() > per_shard_entries_ ||
         (shard.bytes > per_shard_bytes_ && shard.map.size() > 1)) {
    // CLOCK sweep: advance the hand until it finds an entry without a
    // reference mark (clearing marks as it passes — the "second chance").
    // Terminates because every pass over a marked entry clears its mark.
    Entry* victim = shard.hand;
    stats_.on_clock_sweep();
    if (now >= victim->expiry.load(std::memory_order_acquire)) {
      // Dead anyway: reclaim it as an expiration, not an eviction.
      erase_locked(shard, shard.map.find(*victim->key));
      stats_.on_expiration();
      continue;
    }
    if (victim->mark.load(std::memory_order_relaxed)) {
      victim->mark.store(false, std::memory_order_relaxed);
      stats_.on_second_chance();
      shard.hand = victim->ring_next;
      continue;
    }
    erase_locked(shard, shard.map.find(*victim->key));
    stats_.on_eviction();
    ++evicted;
  }
  return evicted;
}

void ResponseCache::enable_hot_key_tracking(HotKeyOptions options) {
  if (hot_enabled_.load(std::memory_order_acquire)) return;
  if (options.sample_every == 0) options.sample_every = 1;
  hot_options_ = options;
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mu);
    if (!shard->hot)
      shard->hot = std::make_unique<HotShard>(hot_options_.capacity);
  }
  // Release AFTER the sketches exist: a lookup that sees the flag can
  // dereference shard.hot unconditionally.
  hot_enabled_.store(true, std::memory_order_release);
}

void ResponseCache::offer_hot_key(Shard& shard, std::string_view material) {
  // Per-thread sampling: only every sample_every-th lookup pays the sketch
  // mutex + scan; the offer weight keeps estimates unbiased.
  thread_local std::uint32_t tick = 0;
  if (++tick < hot_options_.sample_every) return;
  tick = 0;
  std::lock_guard lock(shard.hot->mu);
  shard.hot->sketch.offer(material, hot_options_.sample_every);
}

std::vector<obs::TopKSketch::HotKey> ResponseCache::hot_keys(
    std::size_t limit) const {
  if (!hot_enabled_.load(std::memory_order_acquire)) return {};
  std::vector<std::vector<obs::TopKSketch::HotKey>> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->hot->mu);
    parts.push_back(shard->hot->sketch.entries());
  }
  return obs::merge_topk(std::move(parts), limit);
}

}  // namespace wsc::cache
