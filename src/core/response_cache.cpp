#include "core/response_cache.hpp"

namespace wsc::cache {

ResponseCache::ResponseCache(Config config, const util::Clock& clock)
    : config_(config), clock_(&clock) {
  if (config_.shards == 0) config_.shards = 1;
  per_shard_entries_ =
      std::max<std::size_t>(1, config_.max_entries / config_.shards);
  per_shard_bytes_ =
      std::max<std::size_t>(1, config_.max_bytes / config_.shards);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ResponseCache::Shard& ResponseCache::shard_for(const CacheKey& key) {
  // The table index uses the low hash bits; pick shards from the high ones
  // so the two partitions stay independent.
  return *shards_[(key.hash() >> 48) % shards_.size()];
}

std::shared_ptr<const CachedValue> ResponseCache::lookup(const CacheKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    stats_.on_miss();
    return nullptr;
  }
  if (clock_->now() >= it->second.expiry) {
    erase_locked(shard, it);
    stats_.on_expiration();
    stats_.on_miss();
    return nullptr;
  }
  // Refresh LRU position.  A repeated hot key is already at the front —
  // the common case under zipfian traffic — and splice-to-self, while a
  // no-op, still costs pointer chasing under the shard lock; skip it.
  if (it->second.lru_it != shard.lru.begin())
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  stats_.on_hit();
  return it->second.value;
}

void ResponseCache::store(const CacheKey& key,
                          std::shared_ptr<const CachedValue> value,
                          std::chrono::milliseconds ttl,
                          std::optional<std::chrono::seconds> last_modified) {
  if (ttl <= std::chrono::milliseconds::zero()) {
    stats_.on_rejected_store();
    return;
  }
  std::size_t bytes = key.memory_size() + value->memory_size();
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  // One hash lookup for both the insert and the replace case: replacing an
  // entry updates it in place (and reuses its LRU node) instead of the old
  // erase-then-reinsert, which hashed the key twice and reallocated the
  // node.
  auto [it, inserted] = shard.map.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    shard.lru.push_front(key);
    entry.lru_it = shard.lru.begin();
  } else {
    shard.bytes -= entry.bytes;
    if (entry.lru_it != shard.lru.begin())
      shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
  }
  entry.value = std::move(value);
  entry.expiry = clock_->now() + ttl;
  entry.last_modified = last_modified;
  entry.bytes = bytes;
  shard.bytes += bytes;
  stats_.on_store();
  evict_for_budget_locked(shard);
}

ResponseCache::StaleLookup ResponseCache::lookup_for_revalidation(
    const CacheKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    stats_.on_miss();
    return {};
  }
  StaleLookup out;
  out.value = it->second.value;
  util::TimePoint now = clock_->now();
  out.fresh = now < it->second.expiry;
  out.last_modified = it->second.last_modified;
  if (!out.fresh) out.staleness = now - it->second.expiry;
  if (out.fresh) {
    if (it->second.lru_it != shard.lru.begin())
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    stats_.on_hit();
  }
  // Stale entries: outcome (refresh vs re-store vs drop) is the caller's.
  return out;
}

ResponseCache::StaleLookup ResponseCache::lookup_allow_stale(
    const CacheKey& key) const {
  const Shard& shard = *shards_[(key.hash() >> 48) % shards_.size()];
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return {};
  StaleLookup out;
  out.value = it->second.value;
  out.last_modified = it->second.last_modified;
  util::TimePoint now = clock_->now();
  out.fresh = now < it->second.expiry;
  if (!out.fresh) out.staleness = now - it->second.expiry;
  return out;
}

bool ResponseCache::refresh(const CacheKey& key, std::chrono::milliseconds ttl) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  it->second.expiry = clock_->now() + ttl;
  if (it->second.lru_it != shard.lru.begin())
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  stats_.on_revalidation();
  return true;
}

bool ResponseCache::invalidate(const CacheKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  erase_locked(shard, it);
  stats_.on_invalidation();
  return true;
}

void ResponseCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    std::size_t n = shard->map.size();
    shard->map.clear();
    shard->lru.clear();
    shard->bytes = 0;
    for (std::size_t i = 0; i < n; ++i) stats_.on_invalidation();
  }
}

std::size_t ResponseCache::purge_expired() {
  util::TimePoint now = clock_->now();
  std::size_t removed = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    for (auto it = shard->map.begin(); it != shard->map.end();) {
      if (now >= it->second.expiry) {
        auto victim = it++;
        erase_locked(*shard, victim);
        stats_.on_expiration();
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

ResponseCache::Footprint ResponseCache::footprint() const {
  Footprint f;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    f.entries += shard->map.size();
    f.bytes += shard->bytes;
  }
  return f;
}

StatsSnapshot ResponseCache::stats() const {
  Footprint f = footprint();
  return stats_.snapshot(f.entries, f.bytes);
}

void ResponseCache::erase_locked(Shard& shard, Map::iterator it) {
  shard.bytes -= it->second.bytes;
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
}

void ResponseCache::evict_for_budget_locked(Shard& shard) {
  while (shard.map.size() > per_shard_entries_ ||
         (shard.bytes > per_shard_bytes_ && shard.map.size() > 1)) {
    // Evict the least recently used entry (back of the list).
    auto it = shard.map.find(shard.lru.back());
    erase_locked(shard, it);
    stats_.on_eviction();
  }
}

}  // namespace wsc::cache
