// The six cache-value representations of Table 3 and the three key methods
// of Table 2, plus applicability rules and the section-6 auto-selector.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "reflect/type_info.hpp"

namespace wsc::cache {

/// How a response is stored in the cache (Table 3, fastest-retrieval last).
enum class Representation : std::uint8_t {
  XmlMessage,        // the response XML document; reparse on every hit
  SaxEvents,         // recorded parse events; replay into the deserializer
  SaxEventsCompact,  // arena-interned parse events; zero-copy replay
  Serialized,        // binary-serialized object; deserialize on hit
  ReflectionCopy,    // deep copy via metadata, copy again on hit
  CloneCopy,         // generated deep clone, clone again on hit
  Reference,         // share the object (read-only / immutable only)
  Auto,              // let the middleware pick per section 6
};

/// How cache keys are generated from requests (Table 2).
enum class KeyMethod : std::uint8_t {
  XmlMessage,     // serialize the request to XML each lookup
  Serialization,  // binary-serialize the parameter objects
  ToString,       // concatenate endpoint/operation/parameter strings
};

std::string_view representation_name(Representation r);
std::string_view key_method_name(KeyMethod m);

/// Inverse of representation_name(): parse a representation from its
/// display name (exact match, every enum value round-trips).  nullopt for
/// anything else, so portal/bench/config surfaces can reject typos instead
/// of silently defaulting.
std::optional<Representation> representation_from_name(std::string_view name);

/// The number of concrete (storable) representations — every enum value
/// except the Auto sentinel, which resolves to one of these.
inline constexpr std::size_t kConcreteRepresentationCount = 7;

/// Can `r` store a response of static type `type`?  `read_only` is the
/// client administrator's §4.2.4 declaration that the application will not
/// mutate returned objects.  Mirrors Table 3's "Limitation" column.
bool applicable(Representation r, const reflect::TypeInfo& type,
                bool read_only);

/// Section 6 optimal configuration:
///   a) immutable (or declared read-only)     -> Reference
///   b) bean-type / array-type                -> ReflectionCopy
///   c) serializable                          -> Serialized
///   d) anything else                         -> SaxEventsCompact
/// With `prefer_clone`, cloneable types take CloneCopy before rule (b) —
/// the paper's "should be easy for the WSDL compiler to add a proper deep
/// clone" extension, measured in the ablation bench.
///
/// Rule (d) re-derived for the compact representation: it dominates the
/// legacy SaxEvents on both axes Tables 7/9 measure (replay latency and
/// bytes/entry), so the universal fallback is always the compact form;
/// legacy SaxEvents stays selectable explicitly for comparison benches.
Representation auto_select(const reflect::TypeInfo& type, bool read_only,
                           bool prefer_clone = false);

/// Every concrete representation applicable to `type` (Table 3's
/// Limitation column), in enum order — the candidate set the adaptive
/// policy samples from.  Never contains Auto; never empty (the SAX forms
/// have no limitation).
std::vector<Representation> applicable_representations(
    const reflect::TypeInfo& type, bool read_only);

}  // namespace wsc::cache
