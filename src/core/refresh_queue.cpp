#include "core/refresh_queue.hpp"

#include <utility>

namespace wsc::cache {

bool RefreshQueue::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    if (stopped_ || jobs_.size() >= max_pending_) return false;
    jobs_.push_back(std::move(job));
    if (!started_) {
      worker_ = std::thread([this] { run(); });
      started_ = true;
    }
  }
  cv_.notify_one();
  return true;
}

void RefreshQueue::stop() {
  std::thread worker;
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    worker = std::move(worker_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  // Destroy abandoned jobs AFTER the join: their destructors may fail
  // single-flight guards, and doing that with no worker racing keeps the
  // shutdown order obvious.
  std::deque<std::function<void()>> abandoned;
  {
    std::lock_guard lock(mu_);
    abandoned.swap(jobs_);
  }
}

std::size_t RefreshQueue::pending() const {
  std::lock_guard lock(mu_);
  return jobs_.size();
}

void RefreshQueue::run() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !jobs_.empty(); });
      if (stopped_) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    // Jobs own their error handling (background_refresh catches
    // everything and fails its flight); a throw here would terminate.
    job();
  }
}

}  // namespace wsc::cache
