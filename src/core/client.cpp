#include "core/client.hpp"

#include "core/adaptive_policy.hpp"
#include "obs/events.hpp"
#include "soap/deserializer.hpp"
#include "soap/serializer.hpp"
#include "transport/retry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::cache {

namespace {

/// Leader-side RAII over a single-flight handle: the flight is finished
/// exactly once no matter how the leader's frame exits.  An armed guard
/// destroyed without an explicit outcome FAILS the flight (rather than
/// strand followers until their timeouts) — that covers abandoned
/// background-refresh closures and any unwinding path the typed handlers
/// below do not catch.
class FlightGuard {
 public:
  FlightGuard(ResponseCache& cache, ResponseCache::FlightHandle handle)
      : cache_(&cache), handle_(std::move(handle)) {}
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;
  ~FlightGuard() {
    if (!armed_) return;
    cache_->fail_flight(handle_,
                        std::make_exception_ptr(TransportError(
                            "coalesced leader abandoned its call",
                            /*retryable=*/false)));
  }
  void complete(std::shared_ptr<const CachedValue> value) {
    if (armed_) cache_->complete_flight(handle_, std::move(value));
    armed_ = false;
  }
  void fail(std::exception_ptr error) {
    if (armed_) cache_->fail_flight(handle_, std::move(error));
    armed_ = false;
  }

 private:
  ResponseCache* cache_;
  ResponseCache::FlightHandle handle_;
  bool armed_ = true;
};

/// The soft TTL store()/refresh() arm for an operation: the configured
/// fraction of the hard TTL, or zero (disabled) outside (0, 1).
std::chrono::milliseconds soft_ttl_for(const OperationPolicy& policy) {
  if (policy.refresh_ahead <= 0.0 || policy.refresh_ahead >= 1.0)
    return std::chrono::milliseconds(0);
  return std::chrono::milliseconds(static_cast<std::chrono::milliseconds::rep>(
      static_cast<double>(policy.ttl.count()) * policy.refresh_ahead));
}

}  // namespace

void bind_transport_stats(transport::RetryingTransport& transport,
                          std::shared_ptr<ResponseCache> cache) {
  if (!cache) throw Error("bind_transport_stats: null cache");
  transport::RetryingTransport::Listener listener;
  // Each closure co-owns the cache: a transport that outlives the cache's
  // other owners keeps the counters it writes to alive.
  listener.on_retry = [cache] { cache->counters().on_transport_retry(); };
  // Breaker transitions and deadline hits are rare, load-bearing state
  // changes: counted AND logged as structured events.
  listener.on_breaker_open = [cache] {
    cache->counters().on_breaker_open();
    obs::event_log().emit(obs::EventKind::BreakerOpen, "transport",
                          "circuit breaker opened after repeated failures");
  };
  listener.on_breaker_probe = [cache] {
    cache->counters().on_breaker_probe();
    obs::event_log().emit(obs::EventKind::BreakerProbe, "transport",
                          "half-open probe call admitted");
  };
  listener.on_deadline_hit = [cache] {
    cache->counters().on_deadline_hit();
    obs::event_log().emit(obs::EventKind::DeadlineHit, "transport",
                          "per-call deadline exceeded");
  };
  transport.set_listener(std::move(listener));
}

CachingServiceClient::CachingServiceClient(
    std::shared_ptr<transport::Transport> transport,
    std::shared_ptr<const wsdl::ServiceDescription> description,
    std::string endpoint_url, std::shared_ptr<ResponseCache> cache,
    Options options)
    : transport_(std::move(transport)),
      description_(std::move(description)),
      endpoint_url_(std::move(endpoint_url)),
      endpoint_(util::Uri::parse(endpoint_url_)),
      cache_(std::move(cache)),
      options_(std::move(options)),
      keygen_(make_key_generator(options_.key_method)) {
  if (!transport_) throw Error("CachingServiceClient: null transport");
  if (!description_) throw Error("CachingServiceClient: null description");
  if (!cache_) throw Error("CachingServiceClient: null cache");
  if (options_.adaptive) {
    // The loop needs a feed: share the policy's profile registry unless
    // the caller wired an explicit one, and give the policy the cache's
    // live byte footprint as its memory-pressure signal.
    if (!options_.profiles) options_.profiles = options_.adaptive->profiles();
    options_.adaptive->bind_cache(cache_);
  }
}

CachingServiceClient::~CachingServiceClient() {
  // Explicit (though refresh_queue_ is also declared last): join the
  // background worker before any member a pending job references dies.
  // Never-run jobs are destroyed, which fails their flights via the
  // FlightGuards the closures co-own.
  refresh_queue_.stop();
}

soap::RpcRequest CachingServiceClient::build_request(
    const std::string& operation, std::vector<soap::Parameter> params) const {
  soap::RpcRequest request;
  request.endpoint = endpoint_url_;
  request.ns = description_->target_namespace();
  request.operation = operation;
  request.params = std::move(params);
  return request;
}

std::shared_ptr<const wsdl::OperationInfo> CachingServiceClient::share_op(
    const wsdl::OperationInfo& op) const {
  // Aliasing share: co-owns the ServiceDescription, points at one op.
  return std::shared_ptr<const wsdl::OperationInfo>(description_, &op);
}

CacheKey CachingServiceClient::key_for(
    const std::string& operation,
    const std::vector<soap::Parameter>& params) const {
  return keygen_->generate(build_request(operation, params));
}

bool CachingServiceClient::invalidate(
    const std::string& operation, const std::vector<soap::Parameter>& params) {
  return cache_->invalidate(key_for(operation, params));
}

reflect::Object CachingServiceClient::invoke(
    const std::string& operation, std::vector<soap::Parameter> params) {
  const wsdl::OperationInfo& op = description_->require_operation(operation);
  if (params.size() != op.params.size())
    throw Error("operation '" + operation + "' expects " +
                std::to_string(op.params.size()) + " parameters, got " +
                std::to_string(params.size()));

  // Inactive (a branch on a relaxed load) unless obs::tracer() is enabled.
  obs::CallTrace trace(description_->name(), operation);

  soap::RpcRequest request = build_request(operation, std::move(params));
  const OperationPolicy& policy = options_.policy.lookup(operation);

  if (!options_.caching_enabled || !policy.cacheable) {
    cache_->counters().on_uncacheable();
    trace.set_outcome(obs::Outcome::Uncacheable);
    return remote_call(trace, request, op, RecordMode::None).object;
  }

  // Cost-profile hit sampling: every profile_sample_every-th cacheable
  // call per thread takes a timestamp BEFORE keygen, so a sampled hit's
  // recorded latency covers keygen + lookup + retrieve — the full Table 7
  // hit cost.  Unsampled hits pay one thread_local increment and branch.
  obs::CostProfiles* const profiles = options_.profiles.get();
  bool profile_hit_sample = false;
  std::uint64_t hit_t0 = 0;
  if (profiles) [[unlikely]] {
    thread_local std::uint32_t profile_tick = 0;
    if (++profile_tick >= options_.profile_sample_every) {
      profile_tick = 0;
      profile_hit_sample = true;
      hit_t0 = obs::now_ns();
    }
  }
  const auto record_profile_hit = [&](const CachedValue& value) {
    if (profile_hit_sample) [[unlikely]]
      profiles->record_hit(
          description_->name(), operation,
          representation_name(value.representation()),
          obs::now_ns() - hit_t0,
          options_.profile_sample_every ? options_.profile_sample_every : 1);
  };

  // Zero-allocation keygen fast path: the key material is built into a
  // per-thread reusable scratch (no owned CacheKey, no heap traffic once
  // the buffer capacity has warmed up), and the cache is probed with the
  // borrowed ref.  The owned key is only materialized on the slow paths
  // (miss/store/stale handling), where a wire round trip dwarfs the copy.
  // thread_local rather than a member so one client shared by concurrent
  // callers (integration/concurrency_test) stays race-free.
  thread_local KeyScratch scratch;
  {
    obs::StageTimer timer(trace, obs::Stage::KeyGen);
    keygen_->generate_into(request, scratch);
  }
  const bool allow_stale = policy.staleness.stale_if_error.count() > 0;
  const bool swr_on = policy.staleness.stale_while_revalidate.count() > 0;
  const bool refresh_ahead_on = policy.refresh_ahead > 0.0;
  // Revalidation (§3.2 HTTP hook): a stale entry with a Last-Modified may
  // be renewed by a conditional request instead of refetched.  A
  // stale-if-error grace needs the same stale-exposing lookup: the plain
  // lookup() eagerly evicts an expired entry, which would destroy the
  // degraded-mode fallback before the wire call gets a chance to fail.
  // stale-while-revalidate needs it for the same reason, and refresh-ahead
  // needs it because only this lookup can win the soft-TTL claim.
  std::optional<std::chrono::seconds> revalidate_since;
  bool had_stale_entry = false;
  if (policy.revalidate || allow_stale || swr_on || refresh_ahead_on) {
    ResponseCache::StaleLookup stale = [&] {
      obs::StageTimer timer(trace, obs::Stage::Lookup);
      return cache_->lookup_for_revalidation(scratch.ref());
    }();
    if (stale.fresh) {
      trace.set_representation(
          representation_name(stale.value->representation()));
      trace.set_outcome(obs::Outcome::Hit);
      reflect::Object object = [&] {
        obs::StageTimer timer(trace, obs::Stage::Retrieve);
        return stale.value->retrieve();
      }();
      record_profile_hit(*stale.value);
      if (stale.refresh_ahead) {
        // This hit won the entry's one-shot soft-TTL claim: renew the
        // entry in the background before it ever expires.  If scheduling
        // fails (queue saturated, flights down), nothing is lost — the
        // entry simply expires and the next miss fetches synchronously.
        cache_->counters().on_refresh_ahead();
        obs::event_log().emit(
            obs::EventKind::RefreshAhead,
            description_->name() + "." + operation,
            "soft TTL elapsed; refreshing ahead of expiry");
        schedule_refresh(operation, request, op, policy, scratch.to_key());
      }
      return object;
    }
    if (stale.value) {
      had_stale_entry = true;
      if (swr_on &&
          stale.staleness <= policy.staleness.stale_while_revalidate) {
        // RFC 5861 stale-while-revalidate: the entry expired within the
        // grace, so serve it NOW and let one background refresh renew it —
        // a TTL-expiry storm on a hot key never parks callers on the wire.
        if (schedule_refresh(operation, request, op, policy,
                             scratch.to_key())) {
          cache_->counters().on_swr_serve();
          if (profiles) [[unlikely]]
            profiles->record_stale(
                description_->name(), operation,
                representation_name(stale.value->representation()));
          trace.set_representation(
              representation_name(stale.value->representation()));
          trace.set_outcome(obs::Outcome::StaleRevalidate);
          obs::StageTimer timer(trace, obs::Stage::Retrieve);
          return stale.value->retrieve();
        }
        // No refresh will run: fall through to the synchronous miss path.
      }
      if (policy.revalidate) revalidate_since = stale.last_modified;
    }
  } else {
    std::shared_ptr<const CachedValue> value = [&] {
      obs::StageTimer timer(trace, obs::Stage::Lookup);
      return cache_->lookup(scratch.ref());
    }();
    if (value) {
      trace.set_representation(representation_name(value->representation()));
      trace.set_outcome(obs::Outcome::Hit);
      reflect::Object object = [&] {
        obs::StageTimer timer(trace, obs::Stage::Retrieve);
        return value->retrieve();
      }();
      record_profile_hit(*value);
      return object;
    }
  }

  // Miss path from here on: materialize the owned key once.
  CacheKey key = scratch.to_key();

  // Resolve the representation — static WSDL traits, steered by the
  // adaptive policy when wired — so the miss path knows before parsing
  // whether to tee the events.
  const ResolvedRepresentation resolved =
      resolve_representation(policy, op, operation);
  const Representation rep = resolved.representation;
  trace.set_representation(representation_name(rep));

  // Single-flight: join (or open) this key's in-flight call.  First joiner
  // leads and makes the wire call below; everyone else parks here.
  ResponseCache::FlightHandle flight;
  if (options_.coalesce_misses) flight = cache_->join_flight(key.ref());
  if (flight && !flight.leader) {
    ResponseCache::FlightResult led =
        cache_->wait_flight(flight, options_.coalesce_wait);
    switch (led.outcome) {
      case ResponseCache::FlightWait::Value: {
        // The leader stored a fresh entry and handed it over directly.
        if (had_stale_entry) cache_->counters().on_miss();
        trace.set_representation(
            representation_name(led.value->representation()));
        trace.set_outcome(obs::Outcome::Coalesced);
        obs::StageTimer timer(trace, obs::Stage::Retrieve);
        return led.value->retrieve();
      }
      case ResponseCache::FlightWait::Error:
        // The ONE broadcast failure.  Each follower makes its own
        // degraded-mode decision, exactly as if it had called and failed.
        if (std::optional<reflect::Object> fallback =
                serve_stale_on_error(trace, operation, key, policy))
          return *fallback;
        std::rethrow_exception(led.error);
      case ResponseCache::FlightWait::Timeout:
        // Our deadline, not the leader's: the leader may still succeed for
        // everyone else.  Degrade if the policy allows, else time out.
        if (std::optional<reflect::Object> fallback =
                serve_stale_on_error(trace, operation, key, policy))
          return *fallback;
        throw TimeoutError("timed out waiting for the in-flight call to '" +
                           operation + "'");
      case ResponseCache::FlightWait::Shutdown:
        throw Error("cache shut down while waiting for in-flight call to '" +
                    operation + "'");
      case ResponseCache::FlightWait::NoValue:
        break;  // leader's answer was not storable — make our own call
    }
    flight = {};  // NoValue: proceed uncoalesced
  }

  std::optional<FlightGuard> guard;
  if (flight && flight.leader) {
    // Close the lookup->join window: a previous leader may have completed
    // and stored between our miss and our winning leadership.  Probe
    // side-effect-free so the race check never pollutes hit/miss counts.
    ResponseCache::StaleLookup raced = cache_->lookup_allow_stale(key);
    if (raced.fresh) {
      cache_->complete_flight(flight, raced.value);
      if (had_stale_entry) cache_->counters().on_miss();
      trace.set_representation(
          representation_name(raced.value->representation()));
      trace.set_outcome(obs::Outcome::Coalesced);
      obs::StageTimer timer(trace, obs::Stage::Retrieve);
      return raced.value->retrieve();
    }
    guard.emplace(*cache_, std::move(flight));
  }

  const std::uint64_t miss_t0 =
      options_.slow_call_threshold_ns ? obs::now_ns() : 0;

  CallResult result;
  try {
    result =
        remote_call(trace, request, op, record_mode_for(rep), revalidate_since);

    if (result.not_modified) {
      // 304: the stale representation is still current — renew its lease
      // and serve from it (no reparse, no re-store).
      if (cache_->refresh(key, policy.ttl, soft_ttl_for(policy))) {
        if (std::shared_ptr<const CachedValue> value = cache_->lookup(key)) {
          if (guard) guard->complete(value);
          trace.set_outcome(obs::Outcome::Revalidated);
          obs::StageTimer timer(trace, obs::Stage::Retrieve);
          return value->retrieve();
        }
      }
      // The entry was evicted while we revalidated: refetch unconditionally.
      result = remote_call(trace, request, op, record_mode_for(rep));
    }
  } catch (const HttpError& error) {
    // Broadcast the failure BEFORE degrading locally: followers wake with
    // the one error and make their own stale-if-error decisions.
    if (guard) guard->fail(std::current_exception());
    // 5xx without a SOAP fault envelope: the origin itself is failing.
    if (error.status() >= 500)
      if (std::optional<reflect::Object> stale =
              serve_stale_on_error(trace, operation, key, policy))
        return *stale;
    throw;
  } catch (const TransportError&) {
    // Retries, deadline, and breaker are all below us (RetryingTransport);
    // reaching here means the wire call failed for good.
    if (guard) guard->fail(std::current_exception());
    if (std::optional<reflect::Object> stale =
            serve_stale_on_error(trace, operation, key, policy))
      return *stale;
    throw;
  } catch (const ParseError&) {
    // The origin answered, but with a document we cannot parse (truncated
    // or corrupt XML from a degrading server) — an availability failure
    // from the application's point of view, same as no answer at all.
    if (guard) guard->fail(std::current_exception());
    if (std::optional<reflect::Object> stale =
            serve_stale_on_error(trace, operation, key, policy))
      return *stale;
    throw;
  } catch (...) {
    // SoapFault and everything else: still exactly one broadcast.
    if (guard) guard->fail(std::current_exception());
    throw;
  }
  if (had_stale_entry) cache_->counters().on_miss();  // stale + changed
  trace.set_outcome(obs::Outcome::Miss);

  std::optional<std::chrono::milliseconds> ttl =
      options_.policy.effective_ttl(policy, result.directives);
  if (ttl) {
    obs::StageTimer timer(trace, obs::Stage::Store);
    ResponseCapture capture;
    capture.response_xml = &result.response_xml;
    capture.events = &result.events;
    capture.compact_events = &result.compact_events;
    capture.object = result.object;
    capture.op = share_op(op);
    // Store cost for the profile = representation capture + cache insert
    // (the Table 8 store-side cost of the chosen representation).
    const std::uint64_t store_t0 = profiles ? obs::now_ns() : 0;
    std::shared_ptr<const CachedValue> value = make_cached_value(rep, capture);
    const std::uint64_t entry_bytes =
        profiles ? key.memory_size() + value->memory_size() : 0;
    cache_->store(key, value, *ttl, result.last_modified,
                  soft_ttl_for(policy));
    // Wake followers AFTER the store, with the stored value itself: they
    // retrieve() directly, no second lookup, no window to miss in.
    if (guard) guard->complete(std::move(value));
    if (profiles) [[unlikely]]
      profiles->record_miss(description_->name(), operation,
                            representation_name(rep), result.deserialize_ns,
                            obs::now_ns() - store_t0, entry_bytes);
    // Adaptive exploration: a sampled store also shadow-probes one
    // alternative representation from the same captured response.  After
    // the store and the flight completion, so probing never delays the
    // answer or any parked follower.
    if (resolved.probe != Representation::Auto) [[unlikely]]
      run_probe(op, operation, resolved.probe, result, key);
  } else {
    util::log(util::LogLevel::Debug, "server directives suppressed caching of ",
              operation);
    // Nothing stored: followers wake with NoValue and call on their own.
    if (guard) guard->complete(nullptr);
    if (profiles) [[unlikely]]
      profiles->record_miss(description_->name(), operation,
                            representation_name(rep), result.deserialize_ns,
                            /*store_ns=*/0, /*bytes=*/0);
  }
  if (options_.slow_call_threshold_ns) [[unlikely]] {
    const std::uint64_t elapsed = obs::now_ns() - miss_t0;
    if (elapsed > options_.slow_call_threshold_ns)
      obs::event_log().emit(obs::EventKind::SlowCall,
                            description_->name() + "." + operation,
                            "miss path exceeded slow-call threshold", elapsed);
  }
  return result.object;
}

CachingServiceClient::ResolvedRepresentation
CachingServiceClient::resolve_representation(
    const OperationPolicy& policy, const wsdl::OperationInfo& op,
    const std::string& operation) const {
  Representation rep = policy.representation;
  if (rep == Representation::Auto) {
    if (!op.result_type)
      return {Representation::Reference, Representation::Auto};  // void: null
    rep = auto_select(*op.result_type, policy.read_only, policy.prefer_clone);
    if (options_.adaptive) {
      // The adaptive policy only ever steers within Auto: an explicit
      // administrator choice below is binding, exactly as in the paper.
      AdaptivePolicy::Choice choice = options_.adaptive->choose(
          description_->name(), operation, rep,
          applicable_representations(*op.result_type, policy.read_only));
      return {choice.representation, choice.probe};
    }
    return {rep, Representation::Auto};
  }
  if (op.result_type && !applicable(rep, *op.result_type, policy.read_only)) {
    // Table 3's Limitation column: the administrator configured a
    // representation this operation's type cannot support.
    throw SerializationError(
        std::string("representation '") +
        std::string(representation_name(rep)) +
        "' is not applicable to result type '" + op.result_type->name +
        "' of operation '" + operation + "'");
  }
  return {rep, Representation::Auto};
}

void CachingServiceClient::run_probe(const wsdl::OperationInfo& op,
                                     const std::string& operation,
                                     Representation probe,
                                     const CallResult& result,
                                     const CacheKey& key) {
  obs::CostProfiles* const profiles = options_.profiles.get();
  if (!profiles) return;
  try {
    // The serving store may have CONSUMED the teed event sequences
    // (ResponseCapture moves from them), and a SAX probe under a
    // non-SAX serving representation never had them — so SAX probes
    // re-record from the kept response text.  The re-parse is untimed:
    // the serving path's store cost does not include its tee either
    // (recording rides the Parse stage there), so probe and serving
    // samples stay comparable.
    xml::EventSequence events;
    xml::CompactEventSequence compact_events;
    if (probe == Representation::SaxEvents) {
      xml::EventRecorder recorder;
      xml::SaxParser{}.parse(result.response_xml, recorder);
      events = recorder.take();
    } else if (probe == Representation::SaxEventsCompact) {
      xml::CompactEventRecorder recorder;
      xml::SaxParser{}.parse(result.response_xml, recorder);
      compact_events = recorder.take();
    }
    ResponseCapture capture;
    capture.response_xml = &result.response_xml;
    capture.events = &events;
    capture.compact_events = &compact_events;
    capture.object = result.object;
    capture.op = share_op(op);
    // What a store of this representation would cost...
    const std::uint64_t store_t0 = obs::now_ns();
    std::shared_ptr<const CachedValue> value = make_cached_value(probe, capture);
    const std::uint64_t store_ns = obs::now_ns() - store_t0;
    // ...and what a hit from it would cost (retrieve; keygen + lookup
    // are representation-independent and cancel in every comparison).
    const std::uint64_t hit_t0 = obs::now_ns();
    (void)value->retrieve();
    const std::uint64_t hit_ns = obs::now_ns() - hit_t0;
    profiles->record_probe(description_->name(), operation,
                           representation_name(probe), hit_ns, store_ns,
                           key.memory_size() + value->memory_size());
  } catch (...) {
    // A probe must never fail the call it rides on; a failed probe is
    // simply a missing sample (the candidate scores as "no data").
  }
}

bool CachingServiceClient::schedule_refresh(const std::string& operation,
                                            const soap::RpcRequest& request,
                                            const wsdl::OperationInfo& op,
                                            const OperationPolicy& policy,
                                            const CacheKey& key) {
  // The in-flight table deduplicates refreshes the same way it coalesces
  // misses: only the joiner that LEADS enqueues work, so a storm of SWR
  // hits on one key costs one background wire call.
  ResponseCache::FlightHandle handle = cache_->join_flight(key.ref());
  if (!handle) return false;        // flights shut down: no background work
  if (!handle.leader) return true;  // a refresh is already in flight
  // std::function requires a copyable closure, so the RAII guard rides in
  // a shared_ptr; whichever copy dies last (queue slot, worker frame, or
  // this frame) settles the flight if nothing else did.
  auto guard = std::make_shared<FlightGuard>(*cache_, std::move(handle));
  auto job = [this, guard, operation, request, shared = share_op(op), policy,
              key]() {
    try {
      guard->complete(perform_refresh(operation, request, *shared, policy, key));
    } catch (...) {
      guard->fail(std::current_exception());
    }
  };
  if (refresh_queue_.submit(std::move(job))) return true;
  // Queue saturated or stopping: nobody will refresh.  Settle the flight
  // so any followers fall back to their own synchronous calls.
  guard->complete(nullptr);
  return false;
}

std::shared_ptr<const CachedValue> CachingServiceClient::perform_refresh(
    const std::string& operation, const soap::RpcRequest& request,
    const wsdl::OperationInfo& op, const OperationPolicy& policy,
    const CacheKey& key) {
  // Background refreshes trace like any call (they show up in /trace and
  // the slow-call log) but deliberately touch NO hit/miss counters: the
  // foreground caller already accounted for this request.
  obs::CallTrace trace(description_->name(), operation);
  const ResolvedRepresentation resolved =
      resolve_representation(policy, op, operation);
  const Representation rep = resolved.representation;
  trace.set_representation(representation_name(rep));
  std::optional<std::chrono::seconds> since;
  if (policy.revalidate)
    since = cache_->lookup_allow_stale(key).last_modified;

  CallResult result = remote_call(trace, request, op, record_mode_for(rep),
                                  since);
  if (result.not_modified) {
    // 304: renew the lease (re-arming the soft TTL) and hand the still-
    // current value to any flight followers.
    if (cache_->refresh(key, policy.ttl, soft_ttl_for(policy))) {
      trace.set_outcome(obs::Outcome::Revalidated);
      return cache_->lookup_allow_stale(key).value;
    }
    result = remote_call(trace, request, op, record_mode_for(rep));
  }

  trace.set_outcome(obs::Outcome::Miss);
  std::optional<std::chrono::milliseconds> ttl =
      options_.policy.effective_ttl(policy, result.directives);
  if (!ttl) return nullptr;  // directives suppressed the store

  obs::StageTimer timer(trace, obs::Stage::Store);
  ResponseCapture capture;
  capture.response_xml = &result.response_xml;
  capture.events = &result.events;
  capture.compact_events = &result.compact_events;
  capture.object = result.object;
  capture.op = share_op(op);
  obs::CostProfiles* const profiles = options_.profiles.get();
  const std::uint64_t store_t0 = profiles ? obs::now_ns() : 0;
  std::shared_ptr<const CachedValue> value = make_cached_value(rep, capture);
  const std::uint64_t entry_bytes =
      profiles ? key.memory_size() + value->memory_size() : 0;
  cache_->store(key, value, *ttl, result.last_modified, soft_ttl_for(policy));
  if (profiles) [[unlikely]]
    profiles->record_miss(description_->name(), operation,
                          representation_name(rep), result.deserialize_ns,
                          obs::now_ns() - store_t0, entry_bytes);
  if (resolved.probe != Representation::Auto) [[unlikely]]
    run_probe(op, operation, resolved.probe, result, key);
  return value;
}

std::optional<reflect::Object> CachingServiceClient::serve_stale_on_error(
    obs::CallTrace& trace, const std::string& operation, const CacheKey& key,
    const OperationPolicy& policy) {
  if (policy.staleness.stale_if_error.count() <= 0) return std::nullopt;
  // Re-read at failure time, not from the pre-call lookup: the entry may
  // have been refreshed by a concurrent caller (serve that), and the
  // staleness must be measured now — retries and backoff took time.
  ResponseCache::StaleLookup entry = cache_->lookup_allow_stale(key);
  if (!entry.value) return std::nullopt;
  if (!entry.fresh && entry.staleness > policy.staleness.stale_if_error)
    return std::nullopt;  // too stale even for degraded mode
  cache_->counters().on_stale_serve();
  if (obs::CostProfiles* profiles = options_.profiles.get())
    profiles->record_stale(description_->name(), operation,
                           representation_name(entry.value->representation()));
  obs::event_log().emit(obs::EventKind::StaleServe,
                        description_->name() + "." + operation,
                        "origin failing; served stale entry within grace",
                        static_cast<std::uint64_t>(entry.staleness.count()));
  util::log(util::LogLevel::Debug,
            "origin unavailable: serving stale cache entry within "
            "stale_if_error grace");
  trace.set_outcome(obs::Outcome::StaleServe);
  obs::StageTimer timer(trace, obs::Stage::Retrieve);
  return entry.value->retrieve();
}

CachingServiceClient::CallResult CachingServiceClient::remote_call(
    obs::CallTrace& trace, const soap::RpcRequest& request,
    const wsdl::OperationInfo& op, RecordMode record,
    std::optional<std::chrono::seconds> if_modified_since) {
  CallResult out;
  transport::WireRequest wire_request;
  wire_request.body = soap::serialize_request(request);
  wire_request.soap_action = request.ns + "#" + request.operation;
  wire_request.if_modified_since = if_modified_since;
  // Wire time is the transport round trip MINUS any backoff sleeps the
  // retry layer recorded inside it, so the Wire and Backoff stages never
  // overlap and the per-call stage sum stays an honest decomposition of
  // the end-to-end latency.
  transport::WireResponse wire = [&] {
    if (!trace.active()) return transport_->post(endpoint_, wire_request);
    const std::uint64_t backoff_before = trace.stage_ns(obs::Stage::Backoff);
    const std::uint64_t wire_start = obs::now_ns();
    struct WireStage {
      obs::CallTrace& trace;
      std::uint64_t backoff_before;
      std::uint64_t wire_start;
      ~WireStage() {
        if (!trace.active()) return;
        const std::uint64_t elapsed = obs::now_ns() - wire_start;
        const std::uint64_t slept =
            trace.stage_ns(obs::Stage::Backoff) - backoff_before;
        trace.add_stage(obs::Stage::Wire,
                        elapsed > slept ? elapsed - slept : 0);
      }
    } stage{trace, backoff_before, wire_start};
    return transport_->post(endpoint_, wire_request);
  }();
  out.directives = wire.directives;
  out.response_xml = std::move(wire.body);
  out.last_modified = wire.last_modified;
  if (wire.not_modified) {
    out.not_modified = true;
    return out;  // empty body by definition of 304
  }

  soap::ResponseReader reader(op);
  {
    obs::StageTimer timer(trace, obs::Stage::Parse);
    if (record == RecordMode::Legacy) {
      // One parse feeds both the deserializer and the recorder (miss path
      // of the SAX representations never tokenizes twice).
      xml::EventRecorder recorder;
      xml::TeeHandler tee(reader, recorder);
      xml::SaxParser{}.parse(out.response_xml, tee);
      out.events = recorder.take();
    } else if (record == RecordMode::Compact) {
      xml::CompactEventRecorder recorder;
      xml::TeeHandler tee(reader, recorder);
      xml::SaxParser{}.parse(out.response_xml, tee);
      out.compact_events = recorder.take();
    } else {
      xml::SaxParser{}.parse(out.response_xml, reader);
    }
  }
  {
    obs::StageTimer timer(trace, obs::Stage::Deserialize);
    const bool profiling = static_cast<bool>(options_.profiles);
    const std::uint64_t t0 = profiling ? obs::now_ns() : 0;
    out.object = reader.take();  // throws SoapFault if the body was a fault
    if (profiling) out.deserialize_ns = obs::now_ns() - t0;
  }
  return out;
}

}  // namespace wsc::cache
