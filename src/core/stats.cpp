#include "core/stats.hpp"

#include <cstdio>

namespace wsc::cache {

std::string StatsSnapshot::to_string() const {
  char buf[832];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu (ratio %.1f%%) stores=%llu "
                "rejected_stores=%llu "
                "expired=%llu evicted=%llu clock_sweeps=%llu "
                "second_chances=%llu revalidated=%llu uncacheable=%llu "
                "stale_serves=%llu retries=%llu breaker_opens=%llu "
                "breaker_probes=%llu deadline_hits=%llu "
                "coalesced_waits=%llu coalesced_failures=%llu "
                "swr_served=%llu refresh_ahead=%llu "
                "entries=%llu bytes=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), hit_ratio() * 100.0,
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(rejected_stores),
                static_cast<unsigned long long>(expirations),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(clock_sweeps),
                static_cast<unsigned long long>(second_chances),
                static_cast<unsigned long long>(revalidations),
                static_cast<unsigned long long>(uncacheable),
                static_cast<unsigned long long>(stale_serves),
                static_cast<unsigned long long>(transport_retries),
                static_cast<unsigned long long>(breaker_opens),
                static_cast<unsigned long long>(breaker_probes),
                static_cast<unsigned long long>(deadline_hits),
                static_cast<unsigned long long>(coalesced_waits),
                static_cast<unsigned long long>(coalesced_failures),
                static_cast<unsigned long long>(stale_while_revalidate_served),
                static_cast<unsigned long long>(refresh_ahead_triggered),
                static_cast<unsigned long long>(entries),
                static_cast<unsigned long long>(bytes));
  return buf;
}

std::string stats_json(const StatsSnapshot& s) {
  std::string out = "{";
  bool first = true;
  auto field = [&](const char* name, std::uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", first ? "" : ", ", name,
                  static_cast<unsigned long long>(value));
    out += buf;
    first = false;
  };
  field("hits", s.hits);
  field("misses", s.misses);
  field("stores", s.stores);
  field("rejected_stores", s.rejected_stores);
  field("expirations", s.expirations);
  field("evictions", s.evictions);
  field("clock_sweeps", s.clock_sweeps);
  field("second_chances", s.second_chances);
  field("invalidations", s.invalidations);
  field("revalidations", s.revalidations);
  field("uncacheable", s.uncacheable);
  field("stale_serves", s.stale_serves);
  field("transport_retries", s.transport_retries);
  field("breaker_opens", s.breaker_opens);
  field("breaker_probes", s.breaker_probes);
  field("deadline_hits", s.deadline_hits);
  field("coalesced_waits", s.coalesced_waits);
  field("coalesced_failures", s.coalesced_failures);
  field("stale_while_revalidate_served", s.stale_while_revalidate_served);
  field("refresh_ahead_triggered", s.refresh_ahead_triggered);
  field("entries", s.entries);
  field("bytes", s.bytes);
  char ratio[48];
  std::snprintf(ratio, sizeof(ratio), ", \"hit_ratio\": %.6f", s.hit_ratio());
  out += ratio;
  out += "}";
  return out;
}

StatsSnapshot CacheStats::snapshot(std::uint64_t entries,
                                   std::uint64_t bytes) const {
  StatsSnapshot s;
  s.hits = hits_.v.load(std::memory_order_relaxed);
  s.misses = misses_.v.load(std::memory_order_relaxed);
  s.stores = stores_.v.load(std::memory_order_relaxed);
  s.rejected_stores = rejected_stores_.load(std::memory_order_relaxed);
  s.expirations = expirations_.v.load(std::memory_order_relaxed);
  s.evictions = evictions_.v.load(std::memory_order_relaxed);
  s.clock_sweeps = clock_sweeps_.load(std::memory_order_relaxed);
  s.second_chances = second_chances_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.revalidations = revalidations_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  s.stale_serves = stale_serves_.load(std::memory_order_relaxed);
  s.transport_retries = transport_retries_.load(std::memory_order_relaxed);
  s.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  s.breaker_probes = breaker_probes_.load(std::memory_order_relaxed);
  s.deadline_hits = deadline_hits_.load(std::memory_order_relaxed);
  s.coalesced_waits = coalesced_waits_.load(std::memory_order_relaxed);
  s.coalesced_failures = coalesced_failures_.load(std::memory_order_relaxed);
  s.stale_while_revalidate_served = swr_served_.load(std::memory_order_relaxed);
  s.refresh_ahead_triggered = refresh_ahead_.load(std::memory_order_relaxed);
  s.entries = entries;
  s.bytes = bytes;
  return s;
}

}  // namespace wsc::cache
