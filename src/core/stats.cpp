#include "core/stats.hpp"

#include <cstdio>

namespace wsc::cache {

std::string StatsSnapshot::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu (ratio %.1f%%) stores=%llu "
                "expired=%llu evicted=%llu revalidated=%llu uncacheable=%llu "
                "entries=%llu bytes=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), hit_ratio() * 100.0,
                static_cast<unsigned long long>(stores),
                static_cast<unsigned long long>(expirations),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(revalidations),
                static_cast<unsigned long long>(uncacheable),
                static_cast<unsigned long long>(entries),
                static_cast<unsigned long long>(bytes));
  return buf;
}

StatsSnapshot CacheStats::snapshot(std::uint64_t entries,
                                   std::uint64_t bytes) const {
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.expirations = expirations_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.revalidations = revalidations_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  s.entries = entries;
  s.bytes = bytes;
  return s;
}

}  // namespace wsc::cache
