// Cache key generation (paper section 4.1, Tables 2/6/8).
//
// A key identifies (endpoint URL, operation, all parameter names+values).
// Three generators trade generality for speed:
//   XmlMessageKeyGenerator    - serialize the whole request envelope (works
//                               for any type, pays serialization per lookup)
//   SerializationKeyGenerator - binary-serialize the parameters (needs
//                               serializable parameter types, ~10x faster)
//   ToStringKeyGenerator      - concatenate parameter strings (needs usable
//                               toString, fastest; "optimal in many cases")
#pragma once

#include <cstdint>
#include <string>

#include "core/representation.hpp"
#include "soap/message.hpp"

namespace wsc::cache {

/// Immutable key: opaque bytes + precomputed hash.
class CacheKey {
 public:
  CacheKey() = default;
  explicit CacheKey(std::string material);

  const std::string& material() const noexcept { return material_; }
  std::uint64_t hash() const noexcept { return hash_; }

  /// Bytes held in the cache table per entry for this key (Table 8).
  std::size_t memory_size() const noexcept {
    return material_.capacity() + sizeof(CacheKey);
  }

  bool operator==(const CacheKey& other) const noexcept {
    return hash_ == other.hash_ && material_ == other.material_;
  }

  struct Hasher {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash());
    }
  };

 private:
  std::string material_;
  std::uint64_t hash_ = 0;
};

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;

  /// Build the key for a request.  Throws wsc::SerializationError when the
  /// method cannot handle a parameter type (Table 2's Limitation column).
  virtual CacheKey generate(const soap::RpcRequest& request) const = 0;

  virtual KeyMethod method() const = 0;
};

class XmlMessageKeyGenerator final : public KeyGenerator {
 public:
  CacheKey generate(const soap::RpcRequest& request) const override;
  KeyMethod method() const override { return KeyMethod::XmlMessage; }
};

class SerializationKeyGenerator final : public KeyGenerator {
 public:
  CacheKey generate(const soap::RpcRequest& request) const override;
  KeyMethod method() const override { return KeyMethod::Serialization; }
};

class ToStringKeyGenerator final : public KeyGenerator {
 public:
  CacheKey generate(const soap::RpcRequest& request) const override;
  KeyMethod method() const override { return KeyMethod::ToString; }
};

/// Factory for a method enum.
std::unique_ptr<KeyGenerator> make_key_generator(KeyMethod method);

}  // namespace wsc::cache
