// Cache key generation (paper section 4.1, Tables 2/6/8).
//
// A key identifies (endpoint URL, operation, all parameter names+values).
// Three generators trade generality for speed:
//   XmlMessageKeyGenerator    - serialize the whole request envelope (works
//                               for any type, pays serialization per lookup)
//   SerializationKeyGenerator - binary-serialize the parameters (needs
//                               serializable parameter types, ~10x faster)
//   ToStringKeyGenerator      - concatenate parameter strings (needs usable
//                               toString, fastest; "optimal in many cases")
//
// The Table-6 claim is that key generation is the per-hit cost that decides
// whether caching pays off, so the fast generator must not allocate on the
// hit path: generate_into() builds the key material in a caller-owned
// KeyScratch (a reusable buffer with an incrementally maintained 64-bit
// FNV-1a hash), and the cache accepts the resulting borrowed CacheKeyRef
// for lookups — the owned, heap-allocated CacheKey is only materialized on
// the miss path, where a wire round trip dwarfs one allocation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/representation.hpp"
#include "soap/message.hpp"
#include "util/hash.hpp"

namespace wsc::cache {

/// Borrowed key material + its precomputed hash: what the zero-allocation
/// hit path passes to ResponseCache::lookup().  Valid only while the
/// KeyScratch (or string) it views is alive and unmodified.
struct CacheKeyRef {
  std::string_view material;
  std::uint64_t hash = 0;
};

/// Immutable owned key: opaque bytes + precomputed hash.
class CacheKey {
 public:
  CacheKey() = default;
  explicit CacheKey(std::string material);

  /// Adopt material whose FNV-1a hash the caller already computed (a
  /// KeyScratch's to_key()); trusts, in debug builds verifies, the hash.
  static CacheKey with_hash(std::string material, std::uint64_t hash);

  const std::string& material() const noexcept { return material_; }
  std::uint64_t hash() const noexcept { return hash_; }
  CacheKeyRef ref() const noexcept { return {material_, hash_}; }

  /// Bytes held in the cache table per entry for this key (Table 8).
  std::size_t memory_size() const noexcept {
    return material_.capacity() + sizeof(CacheKey);
  }

  bool operator==(const CacheKey& other) const noexcept {
    return hash_ == other.hash_ && material_ == other.material_;
  }

  /// Transparent hash/equality so the cache table can be probed with a
  /// borrowed CacheKeyRef without constructing an owned key (C++20
  /// heterogeneous unordered lookup).
  struct Hasher {
    using is_transparent = void;
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash());
    }
    std::size_t operator()(const CacheKeyRef& r) const noexcept {
      return static_cast<std::size_t>(r.hash);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(const CacheKey& a, const CacheKey& b) const noexcept {
      return a == b;
    }
    bool operator()(const CacheKey& a, const CacheKeyRef& b) const noexcept {
      return a.hash() == b.hash && a.material() == b.material;
    }
    bool operator()(const CacheKeyRef& a, const CacheKey& b) const noexcept {
      return (*this)(b, a);
    }
    bool operator()(const CacheKeyRef& a, const CacheKeyRef& b) const noexcept {
      return a.hash == b.hash && a.material == b.material;
    }
  };

 private:
  std::string material_;
  std::uint64_t hash_ = 0;
};

/// Reusable key-material buffer for the zero-allocation fast path.  The
/// caller keeps one per thread (or per call site); after the first few
/// calls the buffer's capacity reaches the workload's steady state and
/// generate_into() performs no heap allocation at all.
///
/// Usage:
///   scratch.reset();
///   ...append material to scratch.buffer()...
///   scratch.finish();                 // incremental FNV over new bytes
///   cache.lookup(scratch.ref());      // zero-alloc probe
///   CacheKey key = scratch.to_key();  // owned copy (miss path only)
class KeyScratch {
 public:
  /// The material buffer; generators append directly (capacity is kept
  /// across reset(), which is what makes the steady state allocation-free).
  std::string& buffer() noexcept { return buf_; }

  void reset() noexcept {
    buf_.clear();
    hash_ = util::kFnvOffset;
    hashed_ = 0;
  }

  /// Fold bytes appended since the last finish() into the running hash —
  /// incremental, so no byte of the material is scanned twice and no
  /// temporary is created.  Returns the hash over the whole buffer.
  std::uint64_t finish() noexcept {
    hash_ = util::fnv1a(
        std::string_view(buf_).substr(hashed_), hash_);
    hashed_ = buf_.size();
    return hash_;
  }

  /// Borrowed view for lookups.  finish() must have been called after the
  /// last append.
  CacheKeyRef ref() const noexcept { return {buf_, hash_}; }

  /// Owned key (allocates a copy of the material; miss/store path).
  CacheKey to_key() const { return CacheKey::with_hash(buf_, hash_); }

  /// Adopt an already-built key (fallback for generators without an
  /// append-style implementation).
  void assign(const CacheKey& key) {
    buf_.assign(key.material());
    hash_ = key.hash();
    hashed_ = buf_.size();
  }

 private:
  std::string buf_;
  std::uint64_t hash_ = util::kFnvOffset;
  std::size_t hashed_ = 0;  // prefix of buf_ already folded into hash_
};

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;

  /// Build the key for a request.  Throws wsc::SerializationError when the
  /// method cannot handle a parameter type (Table 2's Limitation column).
  virtual CacheKey generate(const soap::RpcRequest& request) const = 0;

  /// Build the key material into `scratch` (resets it first).  The default
  /// delegates to generate() and copies; ToStringKeyGenerator overrides it
  /// with a true zero-allocation implementation.  Both paths produce
  /// byte-identical material, so refs and owned keys always agree.
  virtual void generate_into(const soap::RpcRequest& request,
                             KeyScratch& scratch) const {
    scratch.assign(generate(request));
  }

  virtual KeyMethod method() const = 0;
};

class XmlMessageKeyGenerator final : public KeyGenerator {
 public:
  CacheKey generate(const soap::RpcRequest& request) const override;
  KeyMethod method() const override { return KeyMethod::XmlMessage; }
};

class SerializationKeyGenerator final : public KeyGenerator {
 public:
  CacheKey generate(const soap::RpcRequest& request) const override;
  KeyMethod method() const override { return KeyMethod::Serialization; }
};

class ToStringKeyGenerator final : public KeyGenerator {
 public:
  CacheKey generate(const soap::RpcRequest& request) const override;
  void generate_into(const soap::RpcRequest& request,
                     KeyScratch& scratch) const override;
  KeyMethod method() const override { return KeyMethod::ToString; }
};

/// Factory for a method enum.
std::unique_ptr<KeyGenerator> make_key_generator(KeyMethod method);

}  // namespace wsc::cache
