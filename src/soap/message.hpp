// SOAP 1.1 message model: RPC requests/responses and faults.
//
// Figure 1 of the paper: the client application exchanges *application
// objects* with the middleware; this header is the boundary type.  A request
// is (endpoint, operation, named parameter objects); a response is one
// result object.  Everything below this layer is XML.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "reflect/object.hpp"
#include "util/error.hpp"

namespace wsc::soap {

// SOAP 1.1 namespace constants.
inline constexpr const char* kEnvelopeNs =
    "http://schemas.xmlsoap.org/soap/envelope/";
inline constexpr const char* kEncodingNs =
    "http://schemas.xmlsoap.org/soap/encoding/";
inline constexpr const char* kXsdNs = "http://www.w3.org/2001/XMLSchema";
inline constexpr const char* kXsiNs =
    "http://www.w3.org/2001/XMLSchema-instance";

struct Parameter {
  std::string name;
  reflect::Object value;
};

/// A client-side RPC invocation before serialization.
struct RpcRequest {
  std::string endpoint;   // service URL, part of every cache key
  std::string ns;         // target namespace of the service
  std::string operation;  // operation (= body element) name
  std::vector<Parameter> params;
};

/// The deserialized result of an invocation.
struct RpcResponse {
  reflect::Object result;  // null for void operations
};

/// SOAP Fault, thrown by the client stub when the server responds with one.
class SoapFault : public Error {
 public:
  SoapFault(std::string faultcode, std::string faultstring)
      : Error("SOAP fault [" + faultcode + "]: " + faultstring),
        faultcode_(std::move(faultcode)),
        faultstring_(std::move(faultstring)) {}

  const std::string& faultcode() const noexcept { return faultcode_; }
  const std::string& faultstring() const noexcept { return faultstring_; }

 private:
  std::string faultcode_;
  std::string faultstring_;
};

}  // namespace wsc::soap
