// Object -> XML: the serializer half of the Figure-1 pipeline.
//
// Emits SOAP 1.1 rpc/encoded messages in the style of Apache Axis 1.1
// (xsi:type on every value, soapenc:arrayType on arrays) so message sizes
// are realistic for the Table 8/9 reproductions.
#pragma once

#include <string>

#include "reflect/object.hpp"
#include "soap/message.hpp"
#include "wsdl/description.hpp"
#include "xml/writer.hpp"

namespace wsc::soap {

/// Serialize a request envelope.
std::string serialize_request(const RpcRequest& request);

/// Serialize a response envelope for `op`:
///   <ns1:{op}Response><return ...>...</return></ns1:{op}Response>
std::string serialize_response(const wsdl::OperationInfo& op,
                               const std::string& service_ns,
                               const reflect::Object& result);

/// Serialize a response in Axis 1.1 multiRef style: non-primitive values
/// become <return href="#id0"/> sites with independent
/// <multiRef id="id0">...</multiRef> elements in the Body.  The on-wire
/// form real Google Web APIs responses used; our decoder accepts both.
std::string serialize_response_multiref(const wsdl::OperationInfo& op,
                                        const std::string& service_ns,
                                        const reflect::Object& result);

/// Serialize a fault envelope.
std::string serialize_fault(const std::string& faultcode,
                            const std::string& faultstring);

/// Encode one typed value as an element (used by both directions and by
/// tests).  `elem_name` is written verbatim.
void write_value(xml::Writer& w, const std::string& elem_name,
                 const reflect::TypeInfo& type, const void* value);

}  // namespace wsc::soap
