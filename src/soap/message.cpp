#include "soap/message.hpp"

// Message types are header-only; this TU anchors the module.
namespace wsc::soap {}
