#include "soap/deserializer.hpp"

#include <set>

#include "reflect/algorithms.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::soap {

namespace {

/// Routes SAX events into a ValueReader (which is not itself a handler so
/// it can signal completion through end_element's return value).
class ValueReaderHandler final : public xml::ContentHandler {
 public:
  explicit ValueReaderHandler(ValueReader& reader) : reader_(reader) {}
  void start_element(const xml::QName& n, const xml::Attributes& a) override {
    reader_.start_element(n, a);
  }
  void end_element(const xml::QName& n) override { reader_.end_element(n); }
  void characters(std::string_view t) override { reader_.characters(t); }

 private:
  ValueReader& reader_;
};

/// Resolves href ids against the captured multiRef subtrees, recursively.
class MultirefResolver final : public RefResolver {
 public:
  explicit MultirefResolver(
      const std::map<std::string, xml::CompactEventSequence>& refs)
      : refs_(refs) {}

  void fill(const reflect::TypeInfo& type, void* target,
            std::string_view id) override {
    auto it = refs_.find(std::string(id));
    if (it == refs_.end())
      throw ParseError("SOAP: unresolved multiRef id '#" + std::string(id) + "'");
    if (!in_progress_.insert(std::string(id)).second)
      throw ParseError("SOAP: multiRef reference cycle at '#" +
                       std::string(id) + "'");
    ValueReader reader(type);
    ValueReaderHandler handler(reader);
    it->second.deliver(handler);
    reader.finish_root();
    reader.resolve_pending(*this);  // nested hrefs recurse through here
    reflect::Object obj = reader.take();
    reflect::deep_assign(type, obj.data(), target);
    in_progress_.erase(std::string(id));
  }

 private:
  const std::map<std::string, xml::CompactEventSequence>& refs_;
  std::set<std::string> in_progress_;
};

bool is_multiref_element(const xml::QName& n) {
  return n.local == "multiRef" || n.local == "multiref";
}

std::string multiref_id(const xml::Attributes& attrs) {
  for (const xml::Attribute& a : attrs) {
    if (a.name.local == "id") return a.value;
  }
  throw ParseError("SOAP: multiRef element without id attribute");
}

bool is_envelope_ns(const xml::QName& n) { return n.uri == kEnvelopeNs; }

void require(bool cond, const std::string& msg) {
  if (!cond) throw ParseError("SOAP: " + msg);
}

bool all_ws(std::string_view text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

}  // namespace

// --- ResponseReader ---------------------------------------------------------

void ResponseReader::start_element(const xml::QName& name,
                                   const xml::Attributes& attrs) {
  switch (state_) {
    case State::Start:
      require(is_envelope_ns(name) && name.local == "Envelope",
              "expected soapenv:Envelope, got <" + name.raw + ">");
      state_ = State::InEnvelope;
      return;
    case State::InEnvelope:
      if (is_envelope_ns(name) && name.local == "Header") {
        // Headers are allowed; we have none to process.  Treat like a value
        // subtree we skip by counting depth via the fault machinery.
        state_ = State::InFault;  // reuse the depth-skip; fields ignored
        fault_depth_ = 1;
        fault_field_.clear();
        skipping_header_ = true;
        return;
      }
      require(is_envelope_ns(name) && name.local == "Body",
              "expected soapenv:Body, got <" + name.raw + ">");
      state_ = State::InBody;
      return;
    case State::InBody:
      if (is_envelope_ns(name) && name.local == "Fault") {
        state_ = State::InFault;
        fault_depth_ = 1;
        skipping_header_ = false;
        return;
      }
      if (is_multiref_element(name)) {
        mr_id_ = multiref_id(attrs);
        mr_recorder_.emplace();
        mr_depth_ = 1;
        state_ = State::InMultiRef;
        return;
      }
      require(name.local == op_->response_element(),
              "expected <" + op_->response_element() + ">, got <" + name.raw + ">");
      state_ = State::InWrapper;
      return;
    case State::InWrapper:
      require(op_->result_type != nullptr,
              "unexpected result element for void operation '" + op_->name + "'");
      require(!value_done_ && !value_,
              "multiple result elements in response");
      // Axis accepts any element name here ("return" by convention).
      value_.emplace(*op_->result_type);
      value_->begin(attrs);
      state_ = State::InValue;
      return;
    case State::InValue:
      value_->start_element(name, attrs);
      return;
    case State::InMultiRef:
      ++mr_depth_;
      mr_recorder_->start_element(name, attrs);
      return;
    case State::InFault:
      ++fault_depth_;
      fault_field_ = name.local;
      return;
    case State::Done:
      throw ParseError("SOAP: element after envelope end");
  }
}

void ResponseReader::end_element(const xml::QName& name) {
  switch (state_) {
    case State::InValue:
      if (value_->end_element(name)) {
        value_done_ = true;  // take()/resolution deferred until take()
        state_ = State::InWrapper;
      }
      return;
    case State::InMultiRef:
      --mr_depth_;
      if (mr_depth_ == 0) {
        multirefs_[mr_id_] = mr_recorder_->take();
        mr_recorder_.reset();
        state_ = State::InBody;
      } else {
        mr_recorder_->end_element(name);
      }
      return;
    case State::InWrapper:
      state_ = State::InBody;
      return;
    case State::InBody:
      state_ = State::InEnvelope;
      return;
    case State::InEnvelope:
      state_ = State::Done;
      return;
    case State::InFault:
      --fault_depth_;
      fault_field_.clear();
      if (fault_depth_ == 0)
        state_ = skipping_header_ ? State::InEnvelope : State::InBody;
      return;
    default:
      throw ParseError("SOAP: unbalanced end element </" + name.raw + ">");
  }
}

void ResponseReader::characters(std::string_view text) {
  switch (state_) {
    case State::InValue:
      value_->characters(text);
      return;
    case State::InMultiRef:
      mr_recorder_->characters(text);
      return;
    case State::InFault:
      if (skipping_header_) return;
      if (fault_field_ == "faultcode") faultcode_.append(text);
      else if (fault_field_ == "faultstring") faultstring_.append(text);
      return;
    default:
      require(all_ws(text), "unexpected character data in envelope");
  }
}

reflect::Object ResponseReader::take() {
  require(state_ == State::Done, "incomplete SOAP response document");
  if (!faultcode_.empty() || !faultstring_.empty())
    throw SoapFault(std::string(util::trim(faultcode_)),
                    std::string(util::trim(faultstring_)));
  if (op_->result_type && !value_done_)
    throw ParseError("SOAP: response for '" + op_->name + "' carried no result");
  if (!value_) return {};  // void operation
  if (value_->has_pending()) {
    MultirefResolver resolver(multirefs_);
    value_->resolve_pending(resolver);
  }
  reflect::Object result = value_->take();
  value_.reset();
  return result;
}

// --- RequestReader -----------------------------------------------------------

void RequestReader::start_element(const xml::QName& name,
                                  const xml::Attributes& attrs) {
  switch (state_) {
    case State::Start:
      require(is_envelope_ns(name) && name.local == "Envelope",
              "expected soapenv:Envelope, got <" + name.raw + ">");
      state_ = State::InEnvelope;
      return;
    case State::InEnvelope:
      require(is_envelope_ns(name) && name.local == "Body",
              "expected soapenv:Body, got <" + name.raw + ">");
      state_ = State::InBody;
      return;
    case State::InBody: {
      op_ = service_->operation(name.local);
      require(op_ != nullptr, "unknown operation '" + name.local + "'");
      request_.operation = name.local;
      request_.ns = name.uri;
      state_ = State::InOperation;
      return;
    }
    case State::InOperation: {
      const wsdl::ParamSpec* spec = op_->param(name.local);
      require(spec != nullptr, "operation '" + op_->name +
                                   "' has no parameter '" + name.local + "'");
      for (const Parameter& p : request_.params)
        require(p.name != name.local,
                "duplicate parameter '" + name.local + "'");
      pending_param_ = name.local;
      value_.emplace(*spec->type);
      value_->begin(attrs);
      state_ = State::InParam;
      return;
    }
    case State::InParam:
      value_->start_element(name, attrs);
      return;
    case State::Done:
      throw ParseError("SOAP: element after envelope end");
  }
}

void RequestReader::end_element(const xml::QName& name) {
  switch (state_) {
    case State::InParam:
      if (value_->end_element(name)) {
        // Server-side decoding keeps the common inline form only.
        if (value_->has_pending())
          throw ParseError(
              "SOAP: multiRef-encoded requests are not supported");
        request_.params.push_back({pending_param_, value_->take()});
        value_.reset();
        state_ = State::InOperation;
      }
      return;
    case State::InOperation:
      state_ = State::InBody;
      return;
    case State::InBody:
      state_ = State::InEnvelope;
      return;
    case State::InEnvelope:
      state_ = State::Done;
      return;
    default:
      throw ParseError("SOAP: unbalanced end element </" + name.raw + ">");
  }
}

void RequestReader::characters(std::string_view text) {
  if (state_ == State::InParam) {
    value_->characters(text);
    return;
  }
  require(all_ws(text), "unexpected character data in envelope");
}

RpcRequest RequestReader::take() {
  require(state_ == State::Done, "incomplete SOAP request document");
  require(op_ != nullptr, "request carried no operation element");
  require(request_.params.size() == op_->params.size(),
          "operation '" + op_->name + "' expects " +
              std::to_string(op_->params.size()) + " parameters, got " +
              std::to_string(request_.params.size()));
  return std::move(request_);
}

// --- conveniences ------------------------------------------------------------

reflect::Object read_response(const xml::EventSource& source,
                              const wsdl::OperationInfo& op) {
  ResponseReader reader(op);
  source.deliver(reader);
  return reader.take();
}

RpcRequest read_request(std::string_view xml_text,
                        const wsdl::ServiceDescription& service) {
  RequestReader reader(service);
  xml::SaxParser{}.parse(xml_text, reader);
  return reader.take();
}

}  // namespace wsc::soap
