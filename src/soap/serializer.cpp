#include "soap/serializer.hpp"

#include <cstdint>
#include <deque>
#include <vector>

#include "util/base64.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "wsdl/wsdl_writer.hpp"

namespace wsc::soap {

using reflect::Kind;
using reflect::TypeInfo;

namespace {

std::string primitive_text(const TypeInfo& t, const void* v) {
  switch (t.kind) {
    case Kind::Bool:
      return *static_cast<const bool*>(v) ? "true" : "false";
    case Kind::Int32:
      return std::to_string(*static_cast<const std::int32_t*>(v));
    case Kind::Int64:
      return std::to_string(*static_cast<const std::int64_t*>(v));
    case Kind::Double:
      return util::format_double(*static_cast<const double*>(v));
    case Kind::String:
      return *static_cast<const std::string*>(v);
    case Kind::Bytes:
      return util::base64_encode(
          *static_cast<const std::vector<std::uint8_t>*>(v));
    default:
      throw ReflectionError("primitive_text on non-primitive");
  }
}

void open_envelope(xml::Writer& w) {
  w.start_element("soapenv:Envelope")
      .attribute("xmlns:soapenv", kEnvelopeNs)
      .attribute("xmlns:xsd", kXsdNs)
      .attribute("xmlns:xsi", kXsiNs)
      .attribute("xmlns:soapenc", kEncodingNs);
  w.start_element("soapenv:Body");
}

std::string close_envelope(xml::Writer& w) {
  w.end_element();  // Body
  w.end_element();  // Envelope
  return w.finish();
}

}  // namespace

namespace {

/// Encode one value.  `typed` controls the xsi:type attribute: top-level
/// parameters/results and polymorphic positions (array items, nested
/// structs) carry it; primitive struct members rely on the schema, which
/// keeps message sizes near the paper's Table 8/9 measurements.
void write_value_impl(xml::Writer& w, const std::string& elem_name,
                      const TypeInfo& t, const void* value, bool typed) {
  w.start_element(elem_name);
  switch (t.kind) {
    case Kind::Struct:
      w.attribute("xsi:type", "ns1:" + t.name);
      for (const reflect::FieldInfo& f : t.fields)
        write_value_impl(w, f.name, *f.type, f.cptr(value),
                         /*typed=*/!f.type->is_primitive());
      break;
    case Kind::Array: {
      std::size_t n = t.array_size(value);
      w.attribute("xsi:type", "soapenc:Array");
      w.attribute("soapenc:arrayType",
                  wsdl::xsd_qname(*t.element, "ns1") + "[" + std::to_string(n) + "]");
      for (std::size_t i = 0; i < n; ++i) {
        write_value_impl(w, "item", *t.element,
                         t.array_at(const_cast<void*>(value), i),
                         /*typed=*/true);
      }
      break;
    }
    case Kind::Bytes:
      if (typed) w.attribute("xsi:type", "xsd:base64Binary");
      // Base64 output never needs XML escaping.
      w.raw(primitive_text(t, value));
      break;
    default:
      if (typed) w.attribute("xsi:type", wsdl::xsd_qname(t));
      w.text(primitive_text(t, value));
      break;
  }
  w.end_element();
}

}  // namespace

void write_value(xml::Writer& w, const std::string& elem_name,
                 const TypeInfo& t, const void* value) {
  write_value_impl(w, elem_name, t, value, /*typed=*/true);
}

std::string serialize_request(const RpcRequest& request) {
  xml::Writer w;
  open_envelope(w);
  w.start_element("ns1:" + request.operation)
      .attribute("soapenv:encodingStyle", kEncodingNs)
      .attribute("xmlns:ns1", request.ns);
  for (const Parameter& p : request.params) {
    if (p.value.is_null())
      throw SerializationError("parameter '" + p.name + "' is null");
    write_value(w, p.name, p.value.type(), p.value.data());
  }
  w.end_element();
  return close_envelope(w);
}

std::string serialize_response(const wsdl::OperationInfo& op,
                               const std::string& service_ns,
                               const reflect::Object& result) {
  xml::Writer w;
  open_envelope(w);
  w.start_element("ns1:" + op.response_element())
      .attribute("soapenv:encodingStyle", kEncodingNs)
      .attribute("xmlns:ns1", service_ns);
  if (op.result_type) {
    if (result.is_null())
      throw SerializationError("operation '" + op.name +
                               "': null result for non-void operation");
    if (&result.type() != op.result_type)
      throw SerializationError("operation '" + op.name + "': result type '" +
                               result.type().name + "' does not match WSDL '" +
                               op.result_type->name + "'");
    write_value(w, op.result_name, result.type(), result.data());
  }
  w.end_element();
  return close_envelope(w);
}

namespace {

/// Work queue entry for multiRef emission.
struct MultirefJob {
  const TypeInfo* type;
  const void* value;
  int id;
};

class MultirefWriter {
 public:
  explicit MultirefWriter(xml::Writer& w) : w_(w) {}

  /// Emit one value element: primitives inline, everything else as an
  /// href site whose target is queued.
  void write_site(const std::string& elem_name, const TypeInfo& t,
                  const void* value, bool typed) {
    if (t.is_primitive()) {
      w_.start_element(elem_name);
      if (typed) w_.attribute("xsi:type", wsdl::xsd_qname(t));
      if (t.kind == Kind::Bytes) {
        w_.raw(util::base64_encode(
            *static_cast<const std::vector<std::uint8_t>*>(value)));
      } else {
        w_.text(primitive_text_of(t, value));
      }
      w_.end_element();
      return;
    }
    int id = next_id_++;
    queue_.push_back({&t, value, id});
    w_.start_element(elem_name)
        .attribute("href", "#id" + std::to_string(id))
        .end_element();
  }

  /// Drain the queue as Body-level multiRef elements (Axis order: after
  /// the RPC wrapper).  Nested non-primitive members enqueue more jobs.
  void emit_multirefs() {
    while (!queue_.empty()) {
      MultirefJob job = queue_.front();
      queue_.pop_front();
      w_.start_element("multiRef")
          .attribute("id", "id" + std::to_string(job.id))
          .attribute("soapenc:root", "0")
          .attribute("soapenv:encodingStyle", kEncodingNs);
      const TypeInfo& t = *job.type;
      if (t.is_struct()) {
        w_.attribute("xsi:type", "ns1:" + t.name);
        for (const reflect::FieldInfo& f : t.fields)
          write_site(f.name, *f.type, f.cptr(job.value),
                     /*typed=*/false);
      } else {  // array
        std::size_t n = t.array_size(job.value);
        w_.attribute("xsi:type", "soapenc:Array");
        w_.attribute("soapenc:arrayType", wsdl::xsd_qname(*t.element, "ns1") +
                                              "[" + std::to_string(n) + "]");
        for (std::size_t i = 0; i < n; ++i) {
          write_site("item", *t.element,
                     t.array_at(const_cast<void*>(job.value), i),
                     /*typed=*/true);
        }
      }
      w_.end_element();
    }
  }

 private:
  static std::string primitive_text_of(const TypeInfo& t, const void* v) {
    return primitive_text(t, v);
  }

  xml::Writer& w_;
  std::deque<MultirefJob> queue_;
  int next_id_ = 0;
};

}  // namespace

std::string serialize_response_multiref(const wsdl::OperationInfo& op,
                                        const std::string& service_ns,
                                        const reflect::Object& result) {
  xml::Writer w;
  open_envelope(w);
  MultirefWriter multiref(w);
  w.start_element("ns1:" + op.response_element())
      .attribute("soapenv:encodingStyle", kEncodingNs)
      .attribute("xmlns:ns1", service_ns);
  if (op.result_type) {
    if (result.is_null())
      throw SerializationError("operation '" + op.name +
                               "': null result for non-void operation");
    if (&result.type() != op.result_type)
      throw SerializationError("operation '" + op.name + "': result type '" +
                               result.type().name + "' does not match WSDL '" +
                               op.result_type->name + "'");
    multiref.write_site(op.result_name, result.type(), result.data(),
                        /*typed=*/true);
  }
  w.end_element();          // wrapper
  multiref.emit_multirefs();  // Body-level multiRef elements
  return close_envelope(w);
}

std::string serialize_fault(const std::string& faultcode,
                            const std::string& faultstring) {
  xml::Writer w;
  open_envelope(w);
  w.start_element("soapenv:Fault");
  w.text_element("faultcode", "soapenv:" + faultcode);
  w.text_element("faultstring", faultstring);
  w.end_element();
  return close_envelope(w);
}

}  // namespace wsc::soap
