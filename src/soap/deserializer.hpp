// Envelope-level deserialization: SAX handlers that walk
// Envelope/Body/{wrapper} and delegate the payload to ValueReader.
//
// `ResponseReader` is the handler a *client* attaches to either the live
// parser (cache miss) or a replayed EventSequence (cache hit on the
// SAX-events representation) — one code path, two event sources, exactly
// the Axis arrangement the paper instruments.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "soap/message.hpp"
#include "soap/value_reader.hpp"
#include "wsdl/description.hpp"
#include "xml/compact_event_sequence.hpp"
#include "xml/sax.hpp"

namespace wsc::soap {

/// Client side: reads a response (or fault) for a known operation.
/// Understands both inline values and Axis-style multiRef encoding
/// (href="#id" sites resolved against multiRef elements in the Body).
class ResponseReader final : public xml::ContentHandler {
 public:
  explicit ResponseReader(const wsdl::OperationInfo& op) : op_(&op) {}

  void start_element(const xml::QName& name, const xml::Attributes& attrs) override;
  void end_element(const xml::QName& name) override;
  void characters(std::string_view text) override;

  /// The result object (null for void ops).  Throws SoapFault if the body
  /// carried a fault, ParseError if the document was not a valid response.
  reflect::Object take();

 private:
  enum class State {
    Start, InEnvelope, InBody, InWrapper, InValue, InMultiRef, InFault, Done
  };

  const wsdl::OperationInfo* op_;
  State state_ = State::Start;
  std::optional<ValueReader> value_;
  bool value_done_ = false;

  // multiRef capture: id -> recorded children events (compact arena form —
  // href graphs repeat the same element names per entry, and the capture
  // lives only for the parse, so cheap recording matters more than reuse).
  std::map<std::string, xml::CompactEventSequence> multirefs_;
  std::optional<xml::CompactEventRecorder> mr_recorder_;
  std::string mr_id_;
  int mr_depth_ = 0;

  // Fault collection; the same depth counter also skips soapenv:Header
  // subtrees (skipping_header_ distinguishes the two uses).
  bool skipping_header_ = false;
  int fault_depth_ = 0;
  std::string fault_field_;
  std::string faultcode_, faultstring_;
};

/// Server side: reads an incoming request against a service contract.
class RequestReader final : public xml::ContentHandler {
 public:
  explicit RequestReader(const wsdl::ServiceDescription& service)
      : service_(&service) {}

  void start_element(const xml::QName& name, const xml::Attributes& attrs) override;
  void end_element(const xml::QName& name) override;
  void characters(std::string_view text) override;

  /// The decoded request.  Throws ParseError on malformed input or unknown
  /// operations/parameters.
  RpcRequest take();

 private:
  enum class State { Start, InEnvelope, InBody, InOperation, InParam, Done };

  const wsdl::ServiceDescription* service_;
  const wsdl::OperationInfo* op_ = nullptr;
  State state_ = State::Start;
  std::optional<ValueReader> value_;
  std::string pending_param_;
  RpcRequest request_;
};

/// Parse a response delivered by any event source (live XML text or a
/// recorded sequence).  This is THE cache-hit retrieval path for the
/// XML-message and SAX-events representations.
reflect::Object read_response(const xml::EventSource& source,
                              const wsdl::OperationInfo& op);

/// Parse a request document (server dispatch).
RpcRequest read_request(std::string_view xml_text,
                        const wsdl::ServiceDescription& service);

}  // namespace wsc::soap
