#include "soap/value_reader.hpp"

#include <cstdint>

#include "util/base64.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wsc::soap {

using reflect::Kind;
using reflect::TypeInfo;

namespace {

bool all_ws(std::string_view text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\r' && c != '\n') return false;
  }
  return true;
}

}  // namespace

ValueReader::ValueReader(const TypeInfo& type) : root_type_(&type) {
  if (!type.construct)
    throw SerializationError("deserialize: type '" + type.name +
                             "' is not constructible");
  root_storage_ = type.construct();
  frames_.push_back({&type, root_storage_.get(), 0, {}, {}});
}

std::string ValueReader::href_of(const xml::Attributes& attrs) {
  for (const xml::Attribute& a : attrs) {
    if (a.name.local == "href") {
      if (a.value.empty() || a.value[0] != '#')
        throw ParseError("deserialize: only local href fragments supported");
      return a.value.substr(1);
    }
  }
  return {};
}

void ValueReader::begin(const xml::Attributes& attrs) {
  std::string ref = href_of(attrs);
  if (!ref.empty()) frames_.back().pending_ref = std::move(ref);
}

void ValueReader::start_element(const xml::QName& name,
                                const xml::Attributes& attrs) {
  // xsi:type is ignored (the WSDL signature is authoritative); href makes
  // the element an indirection into the multiRef table.
  if (done_) throw ParseError("value reader: element after value completed");
  Frame& top = frames_.back();
  if (!top.pending_ref.empty())
    throw ParseError("deserialize: href element <" + name.raw +
                     "> must be empty");
  switch (top.type->kind) {
    case Kind::Struct: {
      const reflect::FieldInfo* f = top.type->field(name.local);
      if (!f)
        throw ParseError("deserialize: type '" + top.type->name +
                         "' has no field '" + name.local + "'");
      std::size_t index =
          static_cast<std::size_t>(f - top.type->fields.data());
      frames_.push_back({f->type, f->ptr(top.target), index, {}, {}});
      break;
    }
    case Kind::Array: {
      // Axis names encoded array members "item"; accept any child name, as
      // real decoders do (the position, not the name, carries meaning).
      std::size_t n = top.type->array_size(top.target);
      top.type->array_resize(top.target, n + 1);
      frames_.push_back(
          {top.type->element, top.type->array_at(top.target, n), n, {}, {}});
      break;
    }
    default:
      throw ParseError("deserialize: unexpected child element <" + name.raw +
                       "> inside " +
                       std::string(reflect::kind_name(top.type->kind)) +
                       " value");
  }
  // The just-opened child may itself be an href indirection.
  std::string ref = href_of(attrs);
  if (!ref.empty()) frames_.back().pending_ref = std::move(ref);
}

void ValueReader::characters(std::string_view text) {
  if (done_) throw ParseError("value reader: text after value completed");
  Frame& top = frames_.back();
  if (!top.pending_ref.empty()) {
    if (!all_ws(text))
      throw ParseError("deserialize: content inside href element");
    return;
  }
  if (top.type->is_primitive()) {
    top.text.append(text);
    return;
  }
  // Whitespace between child elements is tolerated (pretty-printing).
  if (!all_ws(text))
    throw ParseError("deserialize: unexpected character data in " +
                     top.type->name);
}

bool ValueReader::end_element(const xml::QName&) {
  if (done_) throw ParseError("value reader: end element after completion");
  finish_frame();
  frames_.pop_back();
  if (frames_.empty()) done_ = true;
  return done_;
}

void ValueReader::finish_root() {
  if (frames_.size() != 1)
    throw ParseError("value reader: finish_root with open children");
  finish_frame();
  frames_.pop_back();
  done_ = true;
}

void ValueReader::finish_frame() {
  Frame& top = frames_.back();
  if (!top.pending_ref.empty()) {
    // Record a root-relative path: array slots move on reallocation, so
    // raw pointers must not outlive the parse.
    PendingRef pending;
    pending.type = top.type;
    pending.id = std::move(top.pending_ref);
    for (std::size_t i = 1; i < frames_.size(); ++i)
      pending.path.push_back(frames_[i].step);
    pending_.push_back(std::move(pending));
    return;
  }
  switch (top.type->kind) {
    case Kind::Bool:
      *static_cast<bool*>(top.target) = util::parse_bool(top.text);
      break;
    case Kind::Int32:
      *static_cast<std::int32_t*>(top.target) = util::parse_i32(top.text);
      break;
    case Kind::Int64:
      *static_cast<std::int64_t*>(top.target) = util::parse_i64(top.text);
      break;
    case Kind::Double:
      *static_cast<double*>(top.target) = util::parse_double(top.text);
      break;
    case Kind::String:
      *static_cast<std::string*>(top.target) = std::move(top.text);
      break;
    case Kind::Bytes:
      *static_cast<std::vector<std::uint8_t>*>(top.target) =
          util::base64_decode(top.text);
      break;
    case Kind::Struct:
    case Kind::Array:
      break;  // children already materialized in place
  }
}

void ValueReader::resolve_pending(RefResolver& resolver) {
  if (!done_) throw ParseError("value reader: resolve before completion");
  for (const PendingRef& pending : pending_) {
    // Walk the path from the root to the (now stable) slot.
    const TypeInfo* t = root_type_;
    void* target = root_storage_.get();
    for (std::size_t step : pending.path) {
      if (t->is_struct()) {
        const reflect::FieldInfo& f = t->fields.at(step);
        target = f.ptr(target);
        t = f.type;
      } else if (t->is_array()) {
        if (step >= t->array_size(target))
          throw ParseError("deserialize: pending reference path corrupt");
        target = t->array_at(target, step);
        t = t->element;
      } else {
        throw ParseError("deserialize: pending reference path corrupt");
      }
    }
    resolver.fill(*pending.type, target, pending.id);
  }
  pending_.clear();
}

reflect::Object ValueReader::take() {
  if (!done_) throw ParseError("value reader: take() before completion");
  if (!pending_.empty())
    throw ParseError("deserialize: unresolved href references remain");
  return reflect::Object(std::move(root_storage_), root_type_);
}

}  // namespace wsc::soap
