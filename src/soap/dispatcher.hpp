// Server-side SOAP dispatch: request XML in, response/fault XML out.
//
// This is the Axis server engine equivalent hosting the dummy Google and
// Amazon services.  Operation handlers receive decoded parameter objects
// and return the result object; all XML handling stays in the middleware,
// as in Figure 1.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "soap/message.hpp"
#include "wsdl/description.hpp"

namespace wsc::soap {

class SoapService {
 public:
  using OpHandler =
      std::function<reflect::Object(const std::vector<Parameter>& params)>;

  explicit SoapService(wsdl::ServiceDescription description)
      : description_(std::move(description)) {}

  const wsdl::ServiceDescription& description() const noexcept {
    return description_;
  }

  /// Attach the implementation of one WSDL operation.  Throws wsc::Error if
  /// the operation is not in the contract.
  void bind(const std::string& operation, OpHandler handler);

  struct HandleResult {
    std::string xml;        // response or fault envelope
    std::string operation;  // decoded operation name ("" if undecodable)
    bool fault = false;
  };

  /// Decode, dispatch, encode.  Never throws: malformed requests, unknown
  /// operations and handler exceptions all become SOAP faults, matching
  /// server-engine behaviour.
  HandleResult handle(std::string_view request_xml) const;

  /// Emit responses in Axis 1.1 multiRef style (default: inline values).
  void set_multiref_responses(bool multiref) { multiref_ = multiref; }
  bool multiref_responses() const noexcept { return multiref_; }

 private:
  wsdl::ServiceDescription description_;
  std::map<std::string, OpHandler> handlers_;
  bool multiref_ = false;
};

/// Cheaply extract the operation name (first Body child's local name)
/// without decoding parameters — used by transports to answer conditional
/// requests (If-Modified-Since) before full dispatch.  Returns "" when the
/// document is not a SOAP request.
std::string peek_operation(std::string_view request_xml);

}  // namespace wsc::soap
