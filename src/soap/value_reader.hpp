// SAX -> application object: the deserializer core of the Figure-1 pipeline.
//
// A ValueReader is fed the SAX events *inside* a value element and
// materializes an instance of the expected (WSDL-declared) type.  It is
// deliberately SAX-driven, not DOM-driven: the whole point of the paper's
// second representation (4.2.2) is that a recorded event sequence replays
// through this exact component, so cache hits skip only the parser, never a
// different code path.
//
// SOAP-encoded messages (Axis rpc/encoded) may replace any value element
// with an href="#id" indirection whose target is a multiRef element later
// in the Body.  Since targets arrive after the referring site, hrefs are
// collected as *pending references* (root-relative paths) and resolved
// after the parse via resolve_pending().
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "reflect/object.hpp"
#include "xml/sax.hpp"

namespace wsc::soap {

/// Fills a value slot from an out-of-band source, used for SOAP-encoded
/// href="#id" references (Axis multiRef elements).  Implementations own
/// the id -> recorded-subtree map and recurse through nested references.
class RefResolver {
 public:
  virtual ~RefResolver() = default;
  /// Materialize the object identified by `id` into `target` (of `type`).
  /// Throws ParseError for unknown ids or reference cycles.
  virtual void fill(const reflect::TypeInfo& type, void* target,
                    std::string_view id) = 0;
};

class ValueReader {
 public:
  /// Start reading a value of `type`.  The caller has just seen the value's
  /// opening element; subsequent events are routed here until done().
  explicit ValueReader(const reflect::TypeInfo& type);

  /// Inspect the attrs of the value's own opening element (it may carry an
  /// href); call once right after construction, before any events.
  void begin(const xml::Attributes& attrs);

  void start_element(const xml::QName& name, const xml::Attributes& attrs);

  /// Returns true when this end_element closed the value's root element.
  bool end_element(const xml::QName& name);

  void characters(std::string_view text);

  bool done() const noexcept { return done_; }

  /// Force-complete a reader that was fed a *children-only* event stream
  /// (multiRef bodies): closes the root frame as if its end tag was seen.
  void finish_root();

  /// True if the value contains unresolved href references.
  bool has_pending() const noexcept { return !pending_.empty(); }

  /// Resolve all pending references (call once, after done()).  Paths are
  /// root-relative, so this is safe even though arrays may have
  /// reallocated during parsing.
  void resolve_pending(RefResolver& resolver);

  /// The finished object; valid once done() (and, when has_pending(),
  /// after resolve_pending()).
  reflect::Object take();

 private:
  struct Frame {
    const reflect::TypeInfo* type;
    void* target;
    std::size_t step;         // index within parent (field # or array #)
    std::string text;
    std::string pending_ref;  // href id recorded at end_element
  };

  struct PendingRef {
    const reflect::TypeInfo* type;
    std::vector<std::size_t> path;  // root-relative steps
    std::string id;
  };

  void finish_frame();
  static std::string href_of(const xml::Attributes& attrs);

  std::shared_ptr<void> root_storage_;
  const reflect::TypeInfo* root_type_;
  std::vector<Frame> frames_;
  std::vector<PendingRef> pending_;
  bool done_ = false;
};

}  // namespace wsc::soap
