#include "soap/dispatcher.hpp"

#include "soap/deserializer.hpp"
#include "soap/serializer.hpp"
#include "util/error.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::soap {

namespace {

/// Thrown to abort the SAX parse as soon as the operation name is known.
struct FoundOperation {
  std::string name;
};

class PeekHandler final : public xml::ContentHandler {
 public:
  void start_element(const xml::QName& name, const xml::Attributes&) override {
    ++depth_;
    if (depth_ == 1 &&
        (name.uri != kEnvelopeNs || name.local != "Envelope")) {
      throw FoundOperation{""};  // not SOAP at all
    }
    if (depth_ == 3 && in_body_) throw FoundOperation{name.local};
    if (depth_ == 2) in_body_ = name.uri == kEnvelopeNs && name.local == "Body";
  }
  void end_element(const xml::QName&) override { --depth_; }

 private:
  int depth_ = 0;
  bool in_body_ = false;
};

}  // namespace

std::string peek_operation(std::string_view request_xml) {
  PeekHandler handler;
  try {
    xml::SaxParser{}.parse(request_xml, handler);
  } catch (const FoundOperation& found) {
    return found.name;
  } catch (const Error&) {
    return "";
  }
  return "";  // well-formed but no Body child
}

void SoapService::bind(const std::string& operation, OpHandler handler) {
  description_.require_operation(operation);  // throws if unknown
  handlers_[operation] = std::move(handler);
}

SoapService::HandleResult SoapService::handle(std::string_view request_xml) const {
  RpcRequest request;
  try {
    request = read_request(request_xml, description_);
  } catch (const Error& e) {
    return {serialize_fault("Client", e.what()), "", true};
  }

  auto it = handlers_.find(request.operation);
  if (it == handlers_.end()) {
    return {serialize_fault("Server",
                            "operation '" + request.operation + "' not bound"),
            request.operation, true};
  }

  const wsdl::OperationInfo& op = description_.require_operation(request.operation);
  try {
    reflect::Object result = it->second(request.params);
    std::string xml =
        multiref_
            ? serialize_response_multiref(op, description_.target_namespace(),
                                          result)
            : serialize_response(op, description_.target_namespace(), result);
    return {std::move(xml), request.operation, false};
  } catch (const std::exception& e) {
    return {serialize_fault("Server", e.what()), request.operation, true};
  }
}

}  // namespace wsc::soap
