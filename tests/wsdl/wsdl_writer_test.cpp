#include "wsdl/wsdl_writer.hpp"

#include <gtest/gtest.h>

#include "services/amazon/service.hpp"
#include "services/google/service.hpp"
#include "tests/reflect/test_types.hpp"
#include "xml/dom.hpp"

namespace wsc::wsdl {
namespace {

using reflect::testing::ensure_test_types;

TEST(XsdQnameTest, MapsAllKinds) {
  ensure_test_types();
  EXPECT_EQ(xsd_qname(reflect::type_of<bool>()), "xsd:boolean");
  EXPECT_EQ(xsd_qname(reflect::type_of<std::int32_t>()), "xsd:int");
  EXPECT_EQ(xsd_qname(reflect::type_of<std::int64_t>()), "xsd:long");
  EXPECT_EQ(xsd_qname(reflect::type_of<double>()), "xsd:double");
  EXPECT_EQ(xsd_qname(reflect::type_of<std::string>()), "xsd:string");
  EXPECT_EQ(xsd_qname(reflect::type_of<std::vector<std::uint8_t>>()),
            "xsd:base64Binary");
  EXPECT_EQ(xsd_qname(reflect::type_of<reflect::testing::Point>()),
            "typens:test.Point");
  EXPECT_EQ(xsd_qname(reflect::type_of<reflect::testing::Point>(), "ns1"),
            "ns1:test.Point");
}

TEST(WsdlWriterTest, GoogleWsdlIsWellFormed) {
  std::string doc = to_wsdl_xml(*services::google::google_description(),
                                "http://api.example/soap");
  xml::Document parsed = xml::parse_document(doc);
  EXPECT_EQ(parsed.root->name().local, "definitions");
  EXPECT_EQ(parsed.root->name().uri, "http://schemas.xmlsoap.org/wsdl/");
}

TEST(WsdlWriterTest, GoogleWsdlDeclaresAllSections) {
  std::string doc = to_wsdl_xml(*services::google::google_description(),
                                "http://api.example/soap");
  xml::Document parsed = xml::parse_document(doc);
  EXPECT_NE(parsed.root->child("types"), nullptr);
  EXPECT_EQ(parsed.root->children_named("message").size(), 6u);  // 3 ops x in/out
  EXPECT_NE(parsed.root->child("portType"), nullptr);
  EXPECT_NE(parsed.root->child("binding"), nullptr);
  EXPECT_NE(parsed.root->child("service"), nullptr);
}

TEST(WsdlWriterTest, ComplexTypesIncludeTransitiveClosure) {
  std::string doc = to_wsdl_xml(*services::google::google_description(),
                                "http://api.example/soap");
  // GoogleSearchResult pulls in ResultElement, DirectoryCategory and both
  // array wrappers.
  for (const char* name :
       {"GoogleSearchResult", "ResultElement", "DirectoryCategory",
        "ArrayOfResultElement", "ArrayOfDirectoryCategory"}) {
    EXPECT_NE(doc.find("\"" + std::string(name) + "\""), std::string::npos) << name;
  }
}

TEST(WsdlWriterTest, BindingIsRpcEncoded) {
  std::string doc = to_wsdl_xml(*services::google::google_description(),
                                "http://api.example/soap");
  EXPECT_NE(doc.find("style=\"rpc\""), std::string::npos);
  EXPECT_NE(doc.find("use=\"encoded\""), std::string::npos);
  EXPECT_NE(doc.find("soapAction=\"urn:GoogleSearch#doGoogleSearch\""),
            std::string::npos);
}

TEST(WsdlWriterTest, EndpointAddressEmbedded) {
  std::string doc = to_wsdl_xml(*services::google::google_description(),
                                "http://host:1234/svc");
  EXPECT_NE(doc.find("location=\"http://host:1234/svc\""), std::string::npos);
}

TEST(WsdlWriterTest, AmazonWsdlCoversAllTable1Operations) {
  std::string doc = to_wsdl_xml(*services::amazon::amazon_description(),
                                "http://aws.example/soap");
  xml::Document parsed = xml::parse_document(doc);
  // 20 search + 6 cart operations, each with request+response message.
  EXPECT_EQ(parsed.root->children_named("message").size(), 52u);
  for (const std::string& op : services::amazon::search_operations())
    EXPECT_NE(doc.find(op), std::string::npos) << op;
  for (const std::string& op : services::amazon::cart_operations())
    EXPECT_NE(doc.find(op), std::string::npos) << op;
}

}  // namespace
}  // namespace wsc::wsdl
