#include "wsdl/description.hpp"

#include <gtest/gtest.h>

#include "tests/reflect/test_types.hpp"
#include "util/error.hpp"

namespace wsc::wsdl {
namespace {

using reflect::testing::ensure_test_types;

ServiceDescription make_service() {
  ensure_test_types();
  ServiceDescription d("Svc", "urn:Svc");
  OperationInfo op;
  op.name = "doIt";
  op.params = {{"a", &reflect::type_of<std::string>()},
               {"b", &reflect::type_of<std::int32_t>()}};
  op.result_type = &reflect::type_of<std::string>();
  d.add_operation(std::move(op));
  return d;
}

TEST(DescriptionTest, BasicAccessors) {
  ServiceDescription d = make_service();
  EXPECT_EQ(d.name(), "Svc");
  EXPECT_EQ(d.target_namespace(), "urn:Svc");
  EXPECT_EQ(d.operations().size(), 1u);
}

TEST(DescriptionTest, OperationLookup) {
  ServiceDescription d = make_service();
  EXPECT_NE(d.operation("doIt"), nullptr);
  EXPECT_EQ(d.operation("nope"), nullptr);
  EXPECT_EQ(&d.require_operation("doIt"), d.operation("doIt"));
  EXPECT_THROW(d.require_operation("nope"), Error);
}

TEST(DescriptionTest, ParamLookup) {
  ServiceDescription d = make_service();
  const OperationInfo& op = d.require_operation("doIt");
  ASSERT_NE(op.param("a"), nullptr);
  EXPECT_EQ(op.param("a")->type, &reflect::type_of<std::string>());
  EXPECT_EQ(op.param("zz"), nullptr);
}

TEST(DescriptionTest, ResponseElementNaming) {
  ServiceDescription d = make_service();
  EXPECT_EQ(d.require_operation("doIt").response_element(), "doItResponse");
}

TEST(DescriptionTest, DuplicateOperationRejected) {
  ServiceDescription d = make_service();
  OperationInfo dup;
  dup.name = "doIt";
  EXPECT_THROW(d.add_operation(std::move(dup)), Error);
}

TEST(DescriptionTest, UntypedParameterRejected) {
  ServiceDescription d("S", "urn:S");
  OperationInfo op;
  op.name = "bad";
  op.params = {{"p", nullptr}};
  EXPECT_THROW(d.add_operation(std::move(op)), Error);
}

TEST(DescriptionTest, VoidOperationAllowed) {
  ServiceDescription d("S", "urn:S");
  OperationInfo op;
  op.name = "fireAndForget";
  op.result_type = nullptr;
  d.add_operation(std::move(op));
  EXPECT_EQ(d.require_operation("fireAndForget").result_type, nullptr);
}

}  // namespace
}  // namespace wsc::wsdl
