// CachingServiceClient middleware behaviour over the in-process transport.
#include "core/client.hpp"

#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"
#include "util/error.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using soap::Parameter;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/test";

/// Counts calls that actually reach the service (i.e. cache misses).
class CountingService {
 public:
  CountingService() {
    transport_ = std::make_shared<transport::InProcessTransport>();
    auto service = make_test_service();
    // Wrap echoString to count invocations.
    service->bind("echoString", [this](const std::vector<Parameter>& p) {
      ++calls_;
      return Object::make("echo:" + p.at(0).value.as<std::string>());
    });
    service->bind("echoPolygon", [this](const std::vector<Parameter>& p) {
      ++calls_;
      return Object::make(p.at(0).value.as<Polygon>());
    });
    transport_->bind(kEndpoint, service);
  }

  std::shared_ptr<transport::InProcessTransport> transport() { return transport_; }
  int calls() const { return calls_; }

 private:
  std::shared_ptr<transport::InProcessTransport> transport_;
  int calls_ = 0;
};

CachingServiceClient make_client(CountingService& svc,
                                 CachingServiceClient::Options options,
                                 std::shared_ptr<ResponseCache> cache = nullptr) {
  if (!cache) cache = std::make_shared<ResponseCache>();
  return CachingServiceClient(svc.transport(), test_description(), kEndpoint,
                              std::move(cache), std::move(options));
}

std::vector<Parameter> echo_params(const std::string& s) {
  return {{"s", Object::make(s)}};
}

CachingServiceClient::Options cacheable_options(
    Representation rep = Representation::Auto,
    KeyMethod key = KeyMethod::ToString) {
  CachingServiceClient::Options o;
  o.key_method = key;
  o.policy.cacheable("echoString", std::chrono::hours(1), rep);
  o.policy.cacheable("echoPolygon", std::chrono::hours(1), rep);
  return o;
}

TEST(ClientTest, SecondIdenticalCallServedFromCache) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options());
  EXPECT_EQ(client.invoke("echoString", echo_params("x")).as<std::string>(),
            "echo:x");
  EXPECT_EQ(client.invoke("echoString", echo_params("x")).as<std::string>(),
            "echo:x");
  EXPECT_EQ(svc.calls(), 1);
  EXPECT_EQ(client.cache().stats().hits, 1u);
}

TEST(ClientTest, DifferentParamsMissSeparately) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options());
  client.invoke("echoString", echo_params("x"));
  client.invoke("echoString", echo_params("y"));
  EXPECT_EQ(svc.calls(), 2);
  EXPECT_EQ(client.cache().entry_count(), 2u);
}

TEST(ClientTest, UncacheableOperationAlwaysCallsService) {
  CountingService svc;
  CachingServiceClient::Options options;  // nothing cacheable
  auto client = make_client(svc, options);
  client.invoke("echoString", echo_params("x"));
  client.invoke("echoString", echo_params("x"));
  EXPECT_EQ(svc.calls(), 2);
  EXPECT_EQ(client.cache().stats().uncacheable, 2u);
  EXPECT_EQ(client.cache().entry_count(), 0u);
}

TEST(ClientTest, CachingCanBeDisabledAtRuntime) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options());
  client.invoke("echoString", echo_params("x"));
  client.set_caching_enabled(false);
  client.invoke("echoString", echo_params("x"));
  EXPECT_EQ(svc.calls(), 2);
  client.set_caching_enabled(true);
  client.invoke("echoString", echo_params("x"));
  EXPECT_EQ(svc.calls(), 2);  // entry still present
}

class ClientRepresentations : public ::testing::TestWithParam<Representation> {};

TEST_P(ClientRepresentations, HitReturnsEqualObject) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options(GetParam()));
  Object polygon = Object::make(reflect::testing::sample_polygon());
  Object miss = client.invoke("echoPolygon", {{"p", polygon}});
  Object hit = client.invoke("echoPolygon", {{"p", polygon}});
  EXPECT_EQ(svc.calls(), 1);
  EXPECT_TRUE(reflect::deep_equals(miss, hit));
}

INSTANTIATE_TEST_SUITE_P(
    Representations, ClientRepresentations,
    ::testing::Values(Representation::XmlMessage, Representation::SaxEvents,
                      Representation::SaxEventsCompact,
                      Representation::Serialized,
                      Representation::ReflectionCopy, Representation::CloneCopy,
                      Representation::Auto));

TEST(ClientTest, MutatingMissResultDoesNotPoisonCache) {
  CountingService svc;
  auto client =
      make_client(svc, cacheable_options(Representation::ReflectionCopy));
  Object polygon = Object::make(reflect::testing::sample_polygon());
  Object miss = client.invoke("echoPolygon", {{"p", polygon}});
  miss.as<Polygon>().name = "MUTATED AFTER MISS";
  Object hit = client.invoke("echoPolygon", {{"p", polygon}});
  EXPECT_EQ(hit.as<Polygon>().name, "triangle");
}

TEST(ClientTest, ReadOnlyDeclarationEnablesSharing) {
  CountingService svc;
  CachingServiceClient::Options options;
  OperationPolicy p;
  p.cacheable = true;
  p.read_only = true;  // administrator declares the app never mutates
  options.policy.set("echoPolygon", p);
  auto client = make_client(svc, options);

  Object polygon = Object::make(reflect::testing::sample_polygon());
  Object miss = client.invoke("echoPolygon", {{"p", polygon}});
  Object hit = client.invoke("echoPolygon", {{"p", polygon}});
  EXPECT_EQ(miss.data(), hit.data());  // same shared instance
}

TEST(ClientTest, InapplicableExplicitRepresentationThrows) {
  CountingService svc;
  // echoString returns an immutable String: reflection copy is n/a.
  auto client =
      make_client(svc, cacheable_options(Representation::ReflectionCopy));
  EXPECT_THROW(client.invoke("echoString", echo_params("x")),
               SerializationError);
  EXPECT_EQ(svc.calls(), 0);  // detected before going to the wire
}

TEST(ClientTest, ExplicitReferenceOnMutableTypeThrowsWithoutDeclaration) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options(Representation::Reference));
  EXPECT_THROW(client.invoke("echoPolygon",
                             {{"p", Object::make(reflect::testing::sample_polygon())}}),
               SerializationError);
}

TEST(ClientTest, FaultsPropagateAndAreNotCached) {
  CountingService svc;
  CachingServiceClient::Options options;
  options.policy.cacheable("failOp");
  auto client = make_client(svc, options);
  EXPECT_THROW(client.invoke("failOp", {{"msg", Object::make(std::string("m"))}}),
               soap::SoapFault);
  EXPECT_EQ(client.cache().entry_count(), 0u);
  // Second call fails again — nothing poisoned the cache.
  EXPECT_THROW(client.invoke("failOp", {{"msg", Object::make(std::string("m"))}}),
               soap::SoapFault);
}

TEST(ClientTest, VoidOperationsCacheable) {
  CountingService svc;
  CachingServiceClient::Options options;
  options.policy.cacheable("voidOp");
  auto client = make_client(svc, options);
  EXPECT_TRUE(client.invoke("voidOp", {{"x", Object::make(std::int32_t{1})}}).is_null());
  EXPECT_TRUE(client.invoke("voidOp", {{"x", Object::make(std::int32_t{1})}}).is_null());
  EXPECT_EQ(client.cache().stats().hits, 1u);
}

TEST(ClientTest, UnknownOperationRejected) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options());
  EXPECT_THROW(client.invoke("ghost", {}), Error);
}

TEST(ClientTest, WrongArityRejectedLocally) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options());
  EXPECT_THROW(client.invoke("echoString", {}), Error);
  EXPECT_EQ(svc.calls(), 0);
}

TEST(ClientTest, TtlExpiryTriggersRefetch) {
  CountingService svc;
  CachingServiceClient::Options options;
  options.policy.cacheable("echoString", std::chrono::milliseconds(0));
  auto client = make_client(svc, options);
  client.invoke("echoString", echo_params("x"));
  client.invoke("echoString", echo_params("x"));
  EXPECT_EQ(svc.calls(), 2);  // zero TTL: everything expires instantly
}

TEST(ClientTest, ExplicitInvalidation) {
  CountingService svc;
  auto client = make_client(svc, cacheable_options());
  client.invoke("echoString", echo_params("x"));
  EXPECT_TRUE(client.invalidate("echoString", echo_params("x")));
  client.invoke("echoString", echo_params("x"));
  EXPECT_EQ(svc.calls(), 2);
}

TEST(ClientTest, SharedCacheAcrossClients) {
  CountingService svc;
  auto cache = std::make_shared<ResponseCache>();
  auto a = make_client(svc, cacheable_options(), cache);
  auto b = make_client(svc, cacheable_options(), cache);
  a.invoke("echoString", echo_params("x"));
  b.invoke("echoString", echo_params("x"));
  EXPECT_EQ(svc.calls(), 1);  // b hit a's entry
}

TEST(ClientTest, KeyMethodsInteroperateWithinOneClient) {
  for (KeyMethod m : {KeyMethod::XmlMessage, KeyMethod::Serialization,
                      KeyMethod::ToString}) {
    CountingService svc;
    auto client = make_client(svc, cacheable_options(Representation::Auto, m));
    client.invoke("echoString", echo_params("q"));
    client.invoke("echoString", echo_params("q"));
    EXPECT_EQ(svc.calls(), 1) << key_method_name(m);
  }
}

TEST(ClientTest, ServerNoStoreDirectiveSuppressesStoring) {
  CountingService svc;
  http::CacheDirectives no_store;
  no_store.no_store = true;
  // Rebind at a second endpoint that advertises no-store.
  auto service = make_test_service();
  svc.transport()->bind("inproc://svc/nostore", service, no_store);

  CachingServiceClient::Options options = cacheable_options();
  auto cache = std::make_shared<ResponseCache>();
  CachingServiceClient client(svc.transport(), test_description(),
                              "inproc://svc/nostore", cache, options);
  client.invoke("echoString", echo_params("x"));
  EXPECT_EQ(cache->entry_count(), 0u);
}

TEST(ClientTest, NullDependenciesRejected) {
  CountingService svc;
  auto cache = std::make_shared<ResponseCache>();
  EXPECT_THROW(CachingServiceClient(nullptr, test_description(), kEndpoint,
                                    cache, {}),
               Error);
  EXPECT_THROW(CachingServiceClient(svc.transport(), nullptr, kEndpoint, cache, {}),
               Error);
  EXPECT_THROW(CachingServiceClient(svc.transport(), test_description(),
                                    kEndpoint, nullptr, {}),
               Error);
}

}  // namespace
}  // namespace wsc::cache
