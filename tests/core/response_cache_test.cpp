// ResponseCache table mechanics: TTL expiry (manual clock), CLOCK
// (second-chance) eviction, byte budgets, stats, thread safety.
//
// Budget-exact tests pin shards = 1: the default shard count derives from
// the host's hardware concurrency, and per-shard budget splits would make
// tiny-budget eviction counts machine-dependent.
#include "core/response_cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "reflect/object.hpp"
#include "tests/reflect/test_types.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::milliseconds;
using std::chrono::minutes;

/// Minimal stub value with a controllable footprint.
class StubValue final : public CachedValue {
 public:
  explicit StubValue(int id, std::size_t bytes = 64) : id_(id), bytes_(bytes) {}
  reflect::Object retrieve() const override {
    return Object::make(std::int32_t{id_});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return bytes_; }

 private:
  int id_;
  std::size_t bytes_;
};

CacheKey key(const std::string& s) { return CacheKey(s); }

std::shared_ptr<const CachedValue> value(int id, std::size_t bytes = 64) {
  return std::make_shared<StubValue>(id, bytes);
}

TEST(ResponseCacheTest, MissThenHit) {
  ResponseCache cache;
  EXPECT_EQ(cache.lookup(key("a")), nullptr);
  cache.store(key("a"), value(1), minutes(1));
  auto hit = cache.lookup(key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->retrieve().as<std::int32_t>(), 1);
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResponseCacheTest, StoreReplacesExisting) {
  ResponseCache cache;
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("a"), value(2), minutes(1));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.lookup(key("a"))->retrieve().as<std::int32_t>(), 2);
}

TEST(ResponseCacheTest, TtlExpiryWithManualClock) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(key("a"), value(1), milliseconds(1000));
  clock.advance(milliseconds(999));
  EXPECT_NE(cache.lookup(key("a")), nullptr);
  clock.advance(milliseconds(1));
  EXPECT_EQ(cache.lookup(key("a")), nullptr);  // expires exactly at TTL
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.expirations, 1u);
  EXPECT_EQ(s.entries, 0u);  // lazily removed on lookup
}

TEST(ResponseCacheTest, ZeroTtlNeverHits) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(key("a"), value(1), milliseconds(0));
  EXPECT_EQ(cache.lookup(key("a")), nullptr);
}

TEST(ResponseCacheTest, NonPositiveTtlStoreIsRejectedNoOp) {
  ResponseCache cache;
  cache.store(key("a"), value(1), milliseconds(0));
  cache.store(key("b"), value(2), milliseconds(-5));
  // Nothing was inserted: no entries, no bytes charged, no store counted.
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.stores, 0u);
  EXPECT_EQ(s.rejected_stores, 2u);
  EXPECT_EQ(s.expirations, 0u);  // never stored, so nothing to expire
}

TEST(ResponseCacheTest, RejectedStoreLeavesExistingEntryUntouched) {
  ResponseCache cache;
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("a"), value(2), milliseconds(0));  // rejected, not a replace
  auto hit = cache.lookup(key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->retrieve().as<std::int32_t>(), 1);
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.rejected_stores, 1u);
}

TEST(ResponseCacheTest, RejectedStoreCannotEvictLiveEntries) {
  // The old behavior charged an already-expired entry against the byte
  // budget, which could evict live entries before lazy expiry noticed it.
  ResponseCache cache(ResponseCache::Config{.max_entries = 2, .shards = 1});
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("dead"), value(3), milliseconds(0));
  EXPECT_NE(cache.lookup(key("a")), nullptr);
  EXPECT_NE(cache.lookup(key("b")), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResponseCacheTest, PerEntryTtls) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(key("short"), value(1), milliseconds(10));
  cache.store(key("long"), value(2), minutes(10));
  clock.advance(milliseconds(20));
  EXPECT_EQ(cache.lookup(key("short")), nullptr);
  EXPECT_NE(cache.lookup(key("long")), nullptr);
}

TEST(ResponseCacheTest, PurgeExpiredSweepsEagerly) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  for (int i = 0; i < 10; ++i)
    cache.store(key("k" + std::to_string(i)), value(i), milliseconds(5));
  cache.store(key("keeper"), value(99), minutes(1));
  clock.advance(milliseconds(10));
  EXPECT_EQ(cache.purge_expired(), 10u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ResponseCacheTest, ClockEvictionAtEntryCap) {
  // CLOCK second chance: a hit sets the entry's reference mark, so the
  // sweeping hand spares 'a' (clearing its mark) and evicts the first
  // unmarked entry after it — 'b', exactly what exact LRU would pick here.
  ResponseCache cache(ResponseCache::Config{.max_entries = 3, .shards = 1});
  cache.store(key("a"), value(1), minutes(1));
  cache.store(key("b"), value(2), minutes(1));
  cache.store(key("c"), value(3), minutes(1));
  cache.lookup(key("a"));  // marks a: the hand will spare it
  cache.store(key("d"), value(4), minutes(1));
  EXPECT_EQ(cache.entry_count(), 3u);
  EXPECT_EQ(cache.lookup(key("b")), nullptr);  // b evicted
  EXPECT_NE(cache.lookup(key("a")), nullptr);
  EXPECT_NE(cache.lookup(key("c")), nullptr);
  EXPECT_NE(cache.lookup(key("d")), nullptr);
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.second_chances, 1u);  // a was spared once
  EXPECT_EQ(s.clock_sweeps, 2u);    // hand examined a (spared), b (evicted)
}

TEST(ResponseCacheTest, ByteBudgetEviction) {
  ResponseCache cache(ResponseCache::Config{.max_bytes = 1000, .shards = 1});
  for (int i = 0; i < 10; ++i)
    cache.store(key("k" + std::to_string(i)), value(i, 300), minutes(1));
  EXPECT_LE(cache.bytes_used(), 1000u + 400u);  // one entry may straddle
  EXPECT_LT(cache.entry_count(), 10u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ResponseCacheTest, ByteAccountingIncludesKey) {
  ResponseCache cache;
  CacheKey big_key(std::string(10'000, 'k'));
  cache.store(big_key, value(1, 10), minutes(1));
  EXPECT_GT(cache.bytes_used(), 10'000u);
}

TEST(ResponseCacheTest, OversizedSingleEntryStillStored) {
  // A single entry above the budget must not spin the evictor forever.
  ResponseCache cache(ResponseCache::Config{.max_bytes = 100});
  cache.store(key("huge"), value(1, 100'000), minutes(1));
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ResponseCacheTest, InvalidateRemovesEntry) {
  ResponseCache cache;
  cache.store(key("a"), value(1), minutes(1));
  EXPECT_TRUE(cache.invalidate(key("a")));
  EXPECT_FALSE(cache.invalidate(key("a")));
  EXPECT_EQ(cache.lookup(key("a")), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResponseCacheTest, ClearEmptiesEverything) {
  ResponseCache cache;
  for (int i = 0; i < 5; ++i)
    cache.store(key("k" + std::to_string(i)), value(i), minutes(1));
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ResponseCacheTest, HitRatioComputed) {
  ResponseCache cache;
  cache.store(key("a"), value(1), minutes(1));
  cache.lookup(key("a"));
  cache.lookup(key("a"));
  cache.lookup(key("miss1"));
  cache.lookup(key("miss2"));
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.5);
}

TEST(ResponseCacheTest, StatsToStringHumanReadable) {
  ResponseCache cache;
  std::string s = cache.stats().to_string();
  EXPECT_NE(s.find("hits=0"), std::string::npos);
  EXPECT_NE(s.find("entries=0"), std::string::npos);
}

TEST(ResponseCacheTest, ConcurrentMixedWorkload) {
  ResponseCache cache(ResponseCache::Config{.max_entries = 64});
  std::vector<std::thread> threads;
  std::atomic<int> retrieved{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        CacheKey k("key" + std::to_string((t * 31 + i) % 40));
        if (auto v = cache.lookup(k)) {
          v->retrieve();
          retrieved.fetch_add(1);
        } else {
          cache.store(k, value(i), minutes(1));
        }
        if (i % 97 == 0) cache.invalidate(k);
      }
    });
  }
  for (auto& t : threads) t.join();
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 500u);
  EXPECT_GT(retrieved.load(), 0);
  EXPECT_LE(cache.entry_count(), 64u);
}

}  // namespace
}  // namespace wsc::cache
