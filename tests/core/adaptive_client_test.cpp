// Adaptive representation selection wired through the middleware: shadow
// probes ride real miss paths, profile rows always carry the RESOLVED
// representation (never "Auto"), switches change what new stores use,
// and an explicit administrator representation bypasses the policy.
#include <gtest/gtest.h>

#include "core/adaptive_policy.hpp"
#include "core/client.hpp"
#include "obs/profiles.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using soap::Parameter;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/adaptive-test";

struct AdaptiveClientFixture : ::testing::Test {
  AdaptiveClientFixture() {
    transport = std::make_shared<transport::InProcessTransport>();
    transport->bind(kEndpoint, make_test_service());
  }

  /// Client with an Auto policy on echoPolygon/echoString and the given
  /// adaptive policy attached (profiles ride in from the policy).
  CachingServiceClient make_client(std::shared_ptr<AdaptivePolicy> adaptive) {
    CachingServiceClient::Options options;
    options.policy.cacheable("echoPolygon", std::chrono::hours(1),
                             Representation::Auto);
    options.policy.cacheable("echoString", std::chrono::hours(1),
                             Representation::Auto);
    options.adaptive = adaptive;
    if (adaptive) {
      last_profiles = adaptive->profiles();
    } else {
      last_profiles = std::make_shared<obs::CostProfiles>();
      options.profiles = last_profiles;
      options.profile_sample_every = 1;
    }
    return CachingServiceClient(transport, test_description(), kEndpoint,
                                std::make_shared<ResponseCache>(),
                                std::move(options));
  }

  static std::shared_ptr<AdaptivePolicy> make_policy(
      double sample_fraction = 1.0) {
    AdaptivePolicy::Config config;
    config.objective = AdaptiveObjective::Latency;
    config.sample_fraction = sample_fraction;
    // Decisions only when the test says so (decide_now).
    config.decision_interval = std::chrono::hours(24);
    return std::make_shared<AdaptivePolicy>(
        std::make_shared<obs::CostProfiles>(), config);
  }

  static std::vector<Parameter> poly_params(int seed) {
    Polygon p = reflect::testing::sample_polygon();
    p.name = "poly-" + std::to_string(seed);
    return {{"p", Object::make(p)}};
  }

  std::shared_ptr<transport::InProcessTransport> transport;
  /// Registry the most recent make_client() wired into the middleware.
  std::shared_ptr<obs::CostProfiles> last_profiles;
};

TEST_F(AdaptiveClientFixture, ProbesFeedProfilesWithoutTouchingCounters) {
  auto policy = make_policy(/*sample_fraction=*/1.0);
  auto client = make_client(policy);
  for (int i = 0; i < 8; ++i)
    client.invoke("echoPolygon", poly_params(i));  // 8 distinct misses
  EXPECT_EQ(policy->explore_stores(), 8u);

  bool saw_probe_row = false, saw_serving_row = false;
  for (const obs::CostProfiles::Row& row : policy->profiles()->snapshot()) {
    if (row.operation != "echoPolygon") continue;
    if (row.representation ==
        representation_name(Representation::ReflectionCopy)) {
      // The serving (auto_select) representation: real misses.
      saw_serving_row = true;
      EXPECT_EQ(row.misses, 8u);
    } else {
      // Alternatives exist only through probes: latency/byte samples,
      // but NO traffic attribution.
      saw_probe_row = true;
      EXPECT_EQ(row.hits, 0u);
      EXPECT_EQ(row.misses, 0u);
      EXPECT_GT(row.hit_ns.count, 0u);
      EXPECT_GT(row.store_ns.count, 0u);
      EXPECT_GT(row.bytes_per_entry, 0.0);
    }
  }
  EXPECT_TRUE(saw_serving_row);
  EXPECT_TRUE(saw_probe_row);
}

TEST_F(AdaptiveClientFixture, ProfileRowsNeverSayAuto) {
  // Regression: with the policy representation configured as Auto, every
  // profile row must carry the RESOLVED representation — with and without
  // the adaptive policy attached.
  for (const bool with_adaptive : {false, true}) {
    auto policy = with_adaptive ? make_policy() : nullptr;
    auto client = make_client(policy);
    const std::shared_ptr<obs::CostProfiles> profiles = last_profiles;
    ASSERT_TRUE(profiles);
    client.invoke("echoPolygon", poly_params(1));
    client.invoke("echoPolygon", poly_params(1));  // one hit
    client.invoke("echoString", {{"s", Object::make(std::string("q"))}});
    const std::vector<obs::CostProfiles::Row> rows = profiles->snapshot();
    ASSERT_FALSE(rows.empty()) << "adaptive=" << with_adaptive;
    for (const obs::CostProfiles::Row& row : rows) {
      EXPECT_NE(row.representation, representation_name(Representation::Auto))
          << row.operation;
      EXPECT_TRUE(representation_from_name(row.representation).has_value())
          << row.representation;
    }
  }
}

TEST_F(AdaptiveClientFixture, SwitchChangesWhatNewStoresUse) {
  auto policy = make_policy(/*sample_fraction=*/0);
  auto client = make_client(policy);
  client.invoke("echoPolygon", poly_params(0));  // registers the op
  ASSERT_EQ(policy->current("echoPolygon"), Representation::ReflectionCopy);

  // Synthetic evidence: serialization is 10x cheaper on this host.
  obs::CostProfiles& profiles = *policy->profiles();
  const std::string service = client.description().name();
  for (int i = 0; i < 5; ++i) {
    profiles.record_probe(service, "echoPolygon",
                          representation_name(Representation::ReflectionCopy),
                          5000, 0, 4000);
    profiles.record_probe(service, "echoPolygon",
                          representation_name(Representation::Serialized), 500,
                          0, 2000);
  }
  policy->decide_now();
  ASSERT_EQ(policy->current("echoPolygon"), Representation::Serialized);

  // A NEW key now stores in the switched representation...
  client.invoke("echoPolygon", poly_params(1));
  const CacheKey key = client.key_for("echoPolygon", poly_params(1));
  std::shared_ptr<const CachedValue> entry = client.cache().lookup(key);
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->representation(), Representation::Serialized);
  // ...and still round-trips the object.
  Object hit = client.invoke("echoPolygon", poly_params(1));
  EXPECT_EQ(hit.as<Polygon>().name, "poly-1");

  // The pre-switch entry is untouched (representation is per-store).
  const CacheKey old_key = client.key_for("echoPolygon", poly_params(0));
  std::shared_ptr<const CachedValue> old_entry = client.cache().lookup(old_key);
  ASSERT_TRUE(old_entry);
  EXPECT_EQ(old_entry->representation(), Representation::ReflectionCopy);
}

TEST_F(AdaptiveClientFixture, NeverSelectsInapplicableRepresentation) {
  auto policy = make_policy(/*sample_fraction=*/1.0);
  auto client = make_client(policy);
  // Fabricate absurdly good rows for Pass by reference — inapplicable to
  // the mutable Polygon result, so the policy must never pick it.
  obs::CostProfiles& profiles = *policy->profiles();
  const std::string service = client.description().name();
  for (int i = 0; i < 10; ++i)
    profiles.record_probe(service, "echoPolygon",
                          representation_name(Representation::Reference), 1, 0,
                          1);
  for (int i = 0; i < 16; ++i) {
    client.invoke("echoPolygon", poly_params(i));
    if (i % 4 == 3) policy->decide_now();
  }
  EXPECT_NE(policy->current("echoPolygon"), Representation::Reference);
  // And no probe ever measured it from the client (the fabricated rows
  // above are the only Reference samples).
  for (const obs::CostProfiles::Row& row : profiles.snapshot()) {
    if (row.operation == "echoPolygon" &&
        row.representation == representation_name(Representation::Reference)) {
      EXPECT_EQ(row.hit_ns.count, 10u);
    }
  }
}

TEST_F(AdaptiveClientFixture, ExplicitRepresentationBypassesThePolicy) {
  auto policy = make_policy(/*sample_fraction=*/1.0);
  CachingServiceClient::Options options;
  options.policy.cacheable("echoPolygon", std::chrono::hours(1),
                           Representation::Serialized);  // administrator says
  options.adaptive = policy;
  CachingServiceClient client(transport, test_description(), kEndpoint,
                              std::make_shared<ResponseCache>(),
                              std::move(options));
  client.invoke("echoPolygon", poly_params(0));
  EXPECT_EQ(policy->operation_count(), 0u);  // never consulted
  EXPECT_EQ(policy->explore_stores(), 0u);   // never probed
  const CacheKey key = client.key_for("echoPolygon", poly_params(0));
  ASSERT_TRUE(client.cache().lookup(key));
  EXPECT_EQ(client.cache().lookup(key)->representation(),
            Representation::Serialized);
}

TEST_F(AdaptiveClientFixture, AdaptiveSuppliesProfilesWhenUnset) {
  auto policy = make_policy();
  auto client = make_client(policy);
  client.invoke("echoPolygon", poly_params(0));
  // The client recorded its miss into the POLICY's registry — proof the
  // ctor shared it (one feedback loop, one source of truth).
  bool saw_miss = false;
  for (const obs::CostProfiles::Row& row : policy->profiles()->snapshot())
    if (row.operation == "echoPolygon" && row.misses > 0) saw_miss = true;
  EXPECT_TRUE(saw_miss);
}

}  // namespace
}  // namespace wsc::cache
