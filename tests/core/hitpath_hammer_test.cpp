// Hit-path hammer: every public ResponseCache operation raced against
// every other on a single shard (so all threads contend on ONE
// shared_mutex and ONE clock ring), under eviction pressure and with TTLs
// short enough that entries expire mid-run.
//
// The test asserts only cheap global invariants — its real job is to give
// TSan (ctest -L hitpath under the tsan preset) a dense interleaving of:
//   shared-lock hits + relaxed mark stores   vs  unique-lock ring splices
//   lock-free expiry-tick reads              vs  refresh()'s tick stores
//   stats/footprint snapshots                vs  everything above
// Iteration counts are modest: the suite must stay fast under TSan's
// ~10x slowdown on single-core CI runners.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/response_cache.hpp"
#include "reflect/object.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::milliseconds;

class IdValue final : public CachedValue {
 public:
  explicit IdValue(int id) : id_(id) {}
  reflect::Object retrieve() const override {
    return Object::make(std::int32_t{id_});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 48; }

 private:
  std::int32_t id_;
};

TEST(HitpathHammerTest, AllOperationsRaceCleanlyOnOneShard) {
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  constexpr int kKeySpace = 24;
  // max_entries below the key space: the clock hand sweeps constantly.
  ResponseCache cache(
      ResponseCache::Config{.max_entries = 16, .shards = 1});

  std::vector<CacheKey> keys;
  for (int i = 0; i < kKeySpace; ++i)
    keys.emplace_back("hammer-key-" + std::to_string(i));

  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const CacheKey& k = keys[(t * 7 + i) % kKeySpace];
        switch ((t + i) % 8) {
          case 0:
          case 1:
          case 2:  // hit path dominates, as in production
            if (auto v = cache.lookup(k)) {
              v->retrieve();
              observed_hits.fetch_add(1, std::memory_order_relaxed);
            } else {
              // TTL short enough that some entries die mid-run.
              cache.store(k, std::make_shared<IdValue>(i), milliseconds(50));
            }
            break;
          case 3: {
            auto stale = cache.lookup_for_revalidation(k);
            if (stale.value && !stale.fresh)
              cache.refresh(k, milliseconds(50));
            break;
          }
          case 4:
            (void)cache.lookup_allow_stale(k);
            break;
          case 5:
            cache.store(k, std::make_shared<IdValue>(i), milliseconds(80));
            break;
          case 6:
            if (i % 5 == 0) cache.invalidate(k);
            if (i % 11 == 0) cache.purge_expired();
            break;
          case 7: {
            StatsSnapshot s = cache.stats();
            // Snapshot coherence: entries/bytes are taken per shard under
            // the shard lock, so zero entries implies zero bytes.
            if (s.entries == 0) {
              EXPECT_EQ(s.bytes, 0u);
            }
            (void)cache.footprint();
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  StatsSnapshot s = cache.stats();
  EXPECT_LE(s.entries, 16u);
  EXPECT_GT(s.hits + s.misses, 0u);
  EXPECT_GE(s.hits, observed_hits.load());  // revalidation hits also count
  // The ring survived the run: a full administrative flush finds a
  // consistent table and resets the footprint to zero.
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(HitpathHammerTest, ReadersScaleWhileOneWriterChurns) {
  // Shape the contention the tentpole optimizes for: many pure readers on
  // hot fresh keys (shared lock only) while a single writer churns cold
  // keys through store/evict cycles (unique lock + ring splices).
  ResponseCache cache(
      ResponseCache::Config{.max_entries = 32, .shards = 1});
  constexpr int kHot = 8;
  std::vector<CacheKey> hot;
  for (int i = 0; i < kHot; ++i)
    hot.emplace_back("hot-" + std::to_string(i));
  for (int i = 0; i < kHot; ++i)
    cache.store(hot[i], std::make_shared<IdValue>(i), milliseconds(60'000));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.store(CacheKey("cold-" + std::to_string(i % 64)),
                  std::make_shared<IdValue>(i), milliseconds(60'000));
      ++i;
    }
  });

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> hits{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const CacheKey& k = hot[(t + i) % kHot];
        if (cache.lookup(k) != nullptr) {
          hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Read-through on the (rare) unlucky eviction: CLOCK is
          // approximate, and on a single-core runner a long writer
          // timeslice can revolve the hand past an unmarked hot key.
          cache.store(k, std::make_shared<IdValue>(i), milliseconds(60'000));
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true);
  writer.join();
  // No ratio claim (scheduling-dependent); the run must simply have
  // exercised the shared-lock hit path and kept the table within budget.
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.entry_count(), 32u);
}

}  // namespace
}  // namespace wsc::cache
