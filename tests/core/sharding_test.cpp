// Sharded cache configuration: correctness must be identical to the
// single-shard table; only lock granularity changes.
#include <gtest/gtest.h>

#include <bit>
#include <thread>

#include "core/response_cache.hpp"
#include "reflect/object.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::minutes;

class IdValue final : public CachedValue {
 public:
  explicit IdValue(int id) : id_(id) {}
  reflect::Object retrieve() const override { return Object::make(id_); }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 32; }

 private:
  std::int32_t id_;
};

class ShardCounts : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCounts, BasicOperationsBehaveIdentically) {
  ResponseCache::Config config;
  config.shards = GetParam();
  ResponseCache cache(config);
  for (int i = 0; i < 200; ++i) {
    cache.store(CacheKey("k" + std::to_string(i)),
                std::make_shared<IdValue>(i), minutes(1));
  }
  EXPECT_EQ(cache.entry_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    auto v = cache.lookup(CacheKey("k" + std::to_string(i)));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(v->retrieve().as<std::int32_t>(), i);
  }
  EXPECT_TRUE(cache.invalidate(CacheKey("k5")));
  EXPECT_EQ(cache.lookup(CacheKey("k5")), nullptr);
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST_P(ShardCounts, BudgetsEnforcedPerShard) {
  ResponseCache::Config config;
  config.shards = GetParam();
  config.max_entries = 64;
  ResponseCache cache(config);
  for (int i = 0; i < 1000; ++i) {
    cache.store(CacheKey("k" + std::to_string(i)),
                std::make_shared<IdValue>(i), minutes(1));
  }
  // Total stays at or under the global budget regardless of sharding.
  EXPECT_LE(cache.entry_count(), 64u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_P(ShardCounts, TtlExpiryStillExact) {
  util::ManualClock clock;
  ResponseCache::Config config;
  config.shards = GetParam();
  ResponseCache cache(config, clock);
  for (int i = 0; i < 50; ++i) {
    cache.store(CacheKey("k" + std::to_string(i)),
                std::make_shared<IdValue>(i), std::chrono::milliseconds(10));
  }
  clock.advance(std::chrono::milliseconds(20));
  EXPECT_EQ(cache.purge_expired(), 50u);
}

TEST_P(ShardCounts, ConcurrentHammering) {
  ResponseCache::Config config;
  config.shards = GetParam();
  ResponseCache cache(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        CacheKey k("key" + std::to_string((t * 13 + i) % 64));
        if (auto v = cache.lookup(k)) {
          v->retrieve();
        } else {
          cache.store(k, std::make_shared<IdValue>(i), minutes(1));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  StatsSnapshot s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 400u);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCounts,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

TEST(ShardingTest, DefaultShardCountIsClampedPowerOfTwo) {
  std::size_t s = default_shard_count();
  EXPECT_GE(s, 1u);
  EXPECT_LE(s, 64u);
  EXPECT_TRUE(std::has_single_bit(s)) << s;
  // The Config default picks it up (budget-split consequences documented
  // in the header: per-shard budget = global budget / shards).
  ResponseCache::Config config;
  EXPECT_EQ(config.shards, s);
}

TEST(ShardingTest, ZeroShardsClampedToOne) {
  ResponseCache::Config config;
  config.shards = 0;
  ResponseCache cache(config);
  cache.store(CacheKey("k"), std::make_shared<IdValue>(1), minutes(1));
  EXPECT_NE(cache.lookup(CacheKey("k")), nullptr);
}

TEST(ShardingTest, KeysSpreadAcrossShards) {
  // With many keys and several shards, eviction under a tight global
  // budget must not starve: every shard gets at least its share.
  ResponseCache::Config config;
  config.shards = 8;
  config.max_entries = 8;  // one entry per shard
  ResponseCache cache(config);
  for (int i = 0; i < 256; ++i) {
    cache.store(CacheKey("spread" + std::to_string(i)),
                std::make_shared<IdValue>(i), minutes(1));
  }
  // All shards non-empty is probabilistic but near-certain with 256 keys;
  // at minimum the global cap holds and the cache still functions.
  EXPECT_LE(cache.entry_count(), 8u);
  EXPECT_GE(cache.entry_count(), 4u);
}

}  // namespace
}  // namespace wsc::cache
