// Adaptive-policy hammer: choose()/probe feeds raced against the decision
// tick, snapshots and JSON rendering.  The assertions are cheap global
// invariants — the real job is giving TSan (ctest -L adaptive under the
// tsan preset) dense interleavings of:
//   per-op RNG draws + probe cursor bumps    vs  decide_now()'s model refresh
//   CostProfiles::record_* feeds             vs  snapshot()/json() readers
//   the memory-pressure bytes signal         vs  watermark transitions
// Iteration counts are modest: the suite must stay fast under TSan's
// ~10x slowdown on single-core CI runners.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_policy.hpp"
#include "core/client.hpp"
#include "obs/profiles.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using soap::Parameter;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

TEST(AdaptiveHammerTest, ChooseAndFeedsRaceTheDecisionLoop) {
  constexpr int kThreads = 4;
  constexpr int kIters = 800;
  auto profiles = std::make_shared<obs::CostProfiles>();
  AdaptivePolicy::Config config;
  config.sample_fraction = 0.5;
  config.decision_interval = std::chrono::milliseconds(1);  // ticks constantly
  config.min_samples = 1;
  AdaptivePolicy policy(profiles, config);
  std::atomic<std::uint64_t> bytes{0};
  policy.set_bytes_signal([&] { return bytes.load(std::memory_order_relaxed); },
                          /*budget_bytes=*/1000);

  const std::vector<Representation> applicable = {
      Representation::XmlMessage, Representation::Serialized,
      Representation::ReflectionCopy};
  const char* const ops[] = {"opA", "opB", "opC"};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string op = ops[(t + i) % 3];
        const AdaptivePolicy::Choice choice = policy.choose(
            "Svc", op, Representation::ReflectionCopy, applicable);
        // Whatever it picked must be applicable (and never Auto).
        EXPECT_NE(choice.representation, Representation::Auto);
        // Feed the models like the middleware would: the chosen rep takes
        // traffic, the probe (if any) takes a shadow sample.
        profiles->record_miss("Svc", op,
                              representation_name(choice.representation),
                              1000, 2000, 512);
        if (i % 3 == 0)
          profiles->record_hit("Svc", op,
                               representation_name(choice.representation),
                               700 + 100 * t);
        if (choice.probe != Representation::Auto)
          profiles->record_probe("Svc", op, representation_name(choice.probe),
                                 500 + 50 * t, 900, 256 + 64 * (t % 3));
        // Oscillate the pressure signal across both watermarks.
        if (i % 50 == 0)
          bytes.store((i % 100 == 0) ? 990 : 100, std::memory_order_relaxed);
      }
    });
  }
  std::thread decider([&] {
    for (int i = 0; i < 200; ++i) {
      policy.decide_now();
      (void)policy.snapshot();
      if (i % 10 == 0) (void)policy.json();
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  decider.join();

  EXPECT_EQ(policy.operation_count(), 3u);
  EXPECT_GE(policy.decisions(), 200u);
  EXPECT_GT(policy.explore_stores(), 0u);
  for (const char* op : ops) {
    const Representation current = policy.current(op);
    EXPECT_TRUE(current == Representation::XmlMessage ||
                current == Representation::Serialized ||
                current == Representation::ReflectionCopy)
        << representation_name(current);
  }
  // The final snapshot is internally consistent.
  for (const AdaptivePolicy::OperationState& op : policy.snapshot()) {
    EXPECT_EQ(op.candidates.size(), applicable.size());
    for (const AdaptivePolicy::OperationState::RepScore& c : op.candidates)
      EXPECT_NE(c.representation, Representation::Auto);
  }
}

TEST(AdaptiveHammerTest, ConcurrentClientInvokesWithProbesEverywhere) {
  // Whole-middleware version: real invokes over the in-process transport
  // with sample_fraction=1.0, so every miss runs a shadow probe while
  // other threads hit the same keys and a decider re-evaluates.
  auto transport = std::make_shared<transport::InProcessTransport>();
  transport->bind("inproc://svc/adaptive-hammer", make_test_service());

  AdaptivePolicy::Config config;
  config.sample_fraction = 1.0;
  config.decision_interval = std::chrono::milliseconds(1);
  config.min_samples = 1;
  auto policy = std::make_shared<AdaptivePolicy>(
      std::make_shared<obs::CostProfiles>(), config);

  CachingServiceClient::Options options;
  options.policy.cacheable("echoPolygon", std::chrono::hours(1),
                           Representation::Auto);
  options.adaptive = policy;
  CachingServiceClient client(transport, test_description(),
                              "inproc://svc/adaptive-hammer",
                              std::make_shared<ResponseCache>(),
                              std::move(options));

  constexpr int kThreads = 4;
  constexpr int kIters = 120;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Polygon p = reflect::testing::sample_polygon();
        // Small key space: threads race hits on each other's stores.
        p.name = "h-" + std::to_string((t * 3 + i) % 10);
        const Object out =
            client.invoke("echoPolygon", {{"p", Object::make(p)}});
        EXPECT_EQ(out.as<Polygon>().name, p.name);
      }
    });
  }
  std::thread decider([&] {
    for (int i = 0; i < 60; ++i) {
      policy->decide_now();
      (void)policy->json();
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  decider.join();

  EXPECT_EQ(policy->operation_count(), 1u);
  EXPECT_GT(policy->explore_stores(), 0u);
  // Probes fed alternative rows without inventing traffic: only the
  // serving representation(s) may carry hit/miss counts.
  for (const obs::CostProfiles::Row& row : policy->profiles()->snapshot()) {
    if (row.hits + row.misses == 0) {
      EXPECT_GT(row.hit_ns.count, 0u) << row.representation;
    }
  }
}

}  // namespace
}  // namespace wsc::cache
