// §3.2 HTTP consistency hook: If-Modified-Since revalidation of expired
// cache entries (extension over the paper's plain TTL, using the exact
// mechanism the paper points at: "the If-Modified-Since header enables
// conditional requests and then a server can return an empty response
// with status code 304").
#include <gtest/gtest.h>

#include <atomic>

#include "core/client.hpp"
#include "soap/dispatcher.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using soap::Parameter;
using std::chrono::milliseconds;
using std::chrono::seconds;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/reval";

// --- ResponseCache primitives ---------------------------------------------------

class DummyValue final : public CachedValue {
 public:
  reflect::Object retrieve() const override { return Object::make(7); }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 16; }
};

TEST(StaleLookupTest, FreshEntryCountsHit) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100),
              seconds(42));
  ResponseCache::StaleLookup s = cache.lookup_for_revalidation(CacheKey("k"));
  EXPECT_TRUE(s.fresh);
  ASSERT_NE(s.value, nullptr);
  EXPECT_EQ(s.last_modified, seconds(42));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(StaleLookupTest, ExpiredEntryExposedWithoutCounting) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100),
              seconds(42));
  clock.advance(milliseconds(200));
  ResponseCache::StaleLookup s = cache.lookup_for_revalidation(CacheKey("k"));
  EXPECT_FALSE(s.fresh);
  ASSERT_NE(s.value, nullptr);  // stale but present
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.entry_count(), 1u);  // not removed
}

TEST(StaleLookupTest, AbsentEntryCountsMiss) {
  ResponseCache cache;
  ResponseCache::StaleLookup s = cache.lookup_for_revalidation(CacheKey("nope"));
  EXPECT_EQ(s.value, nullptr);
  EXPECT_FALSE(s.fresh);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(StaleLookupTest, RefreshRenewsLease) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100));
  clock.advance(milliseconds(200));
  EXPECT_EQ(cache.lookup(CacheKey("k")), nullptr);  // expired... and erased!
  // Re-store and refresh before expiry this time.
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100));
  clock.advance(milliseconds(90));
  EXPECT_TRUE(cache.refresh(CacheKey("k"), milliseconds(100)));
  clock.advance(milliseconds(90));
  EXPECT_NE(cache.lookup(CacheKey("k")), nullptr);  // lease renewed
  EXPECT_EQ(cache.stats().revalidations, 1u);
}

TEST(StaleLookupTest, RefreshOnMissingEntryFails) {
  ResponseCache cache;
  EXPECT_FALSE(cache.refresh(CacheKey("ghost"), milliseconds(100)));
}

// --- full middleware flow --------------------------------------------------------

struct RevalFixture {
  RevalFixture() {
    transport = std::make_shared<transport::InProcessTransport>();
    auto service = make_test_service();
    service->bind("echoString", [this](const std::vector<Parameter>& p) {
      ++service_calls;
      return Object::make("v" + std::to_string(resource_version.load()) + ":" +
                          p.at(0).value.as<std::string>());
    });
    transport->bind(
        kEndpoint, service, {},
        [this](const std::string&) {
          return std::optional<seconds>(seconds(last_modified.load()));
        });
  }

  CachingServiceClient make_client(bool revalidate,
                                   milliseconds ttl = milliseconds(1000)) {
    CachingServiceClient::Options options;
    OperationPolicy p;
    p.cacheable = true;
    p.ttl = ttl;
    p.revalidate = revalidate;
    options.policy.set("echoString", p);
    response_cache =
        std::make_shared<ResponseCache>(ResponseCache::Config{}, clock);
    return CachingServiceClient(transport, test_description(), kEndpoint,
                                response_cache, options);
  }

  Object call(CachingServiceClient& client) {
    return client.invoke("echoString", {{"s", Object::make(std::string("q"))}});
  }

  util::ManualClock clock;
  std::shared_ptr<transport::InProcessTransport> transport;
  std::shared_ptr<ResponseCache> response_cache;
  std::atomic<int> service_calls{0};
  std::atomic<int> resource_version{1};
  std::atomic<long> last_modified{1000};  // seconds
};

TEST(RevalidationFlowTest, UnchangedResourceRenewsWithout304Refetch) {
  RevalFixture f;
  auto client = f.make_client(/*revalidate=*/true);
  EXPECT_EQ(f.call(client).as<std::string>(), "v1:q");
  EXPECT_EQ(f.service_calls, 1);

  f.clock.advance(milliseconds(2000));  // entry expires; resource unchanged
  EXPECT_EQ(f.call(client).as<std::string>(), "v1:q");
  EXPECT_EQ(f.service_calls, 1);  // 304 answered before dispatch
  EXPECT_EQ(f.response_cache->stats().revalidations, 1u);

  // The renewed lease serves fresh hits again.
  EXPECT_EQ(f.call(client).as<std::string>(), "v1:q");
  EXPECT_EQ(f.service_calls, 1);
}

TEST(RevalidationFlowTest, ChangedResourceRefetches) {
  RevalFixture f;
  auto client = f.make_client(/*revalidate=*/true);
  f.call(client);
  f.clock.advance(milliseconds(2000));
  f.resource_version = 2;
  f.last_modified = 5000;  // after the cached entry's Last-Modified
  EXPECT_EQ(f.call(client).as<std::string>(), "v2:q");
  EXPECT_EQ(f.service_calls, 2);
  EXPECT_EQ(f.response_cache->stats().revalidations, 0u);
}

TEST(RevalidationFlowTest, DisabledPolicyAlwaysRefetches) {
  RevalFixture f;
  auto client = f.make_client(/*revalidate=*/false);
  f.call(client);
  f.clock.advance(milliseconds(2000));
  EXPECT_EQ(f.call(client).as<std::string>(), "v1:q");
  EXPECT_EQ(f.service_calls, 2);  // full round trip despite no change
}

TEST(RevalidationFlowTest, NoLastModifiedFallsBackToRefetch) {
  RevalFixture f;
  // Rebind without a Last-Modified provider.
  f.transport = std::make_shared<transport::InProcessTransport>();
  auto service = make_test_service();
  service->bind("echoString", [&f](const std::vector<Parameter>& p) {
    ++f.service_calls;
    return Object::make("plain:" + p.at(0).value.as<std::string>());
  });
  f.transport->bind(kEndpoint, service);

  auto client = f.make_client(/*revalidate=*/true);
  f.call(client);
  f.clock.advance(milliseconds(2000));
  EXPECT_EQ(f.call(client).as<std::string>(), "plain:q");
  EXPECT_EQ(f.service_calls, 2);  // stale entry, no validator: refetch
}

TEST(RevalidationFlowTest, StaleEntriesStayUsableWhileRevalidating) {
  // The stale value handle remains retrievable even if the entry is
  // replaced concurrently (shared_ptr semantics).
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(10));
  clock.advance(milliseconds(20));
  ResponseCache::StaleLookup s = cache.lookup_for_revalidation(CacheKey("k"));
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(10));
  EXPECT_EQ(s.value->retrieve().as<std::int32_t>(), 7);
}

// --- peek_operation (used by conditional dispatch) --------------------------------

TEST(PeekOperationTest, FindsFirstBodyChild) {
  soap::RpcRequest r;
  r.ns = "urn:Test";
  r.operation = "echoString";
  r.params = {{"s", Object::make(std::string("x"))}};
  EXPECT_EQ(soap::peek_operation(soap::serialize_request(r)), "echoString");
}

TEST(PeekOperationTest, NonSoapInputsYieldEmpty) {
  EXPECT_EQ(soap::peek_operation("<html/>"), "");
  EXPECT_EQ(soap::peek_operation("not xml at all"), "");
  EXPECT_EQ(soap::peek_operation(""), "");
  EXPECT_EQ(soap::peek_operation(
                "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
                "<e:Body/></e:Envelope>"),
            "");
}

TEST(PeekOperationTest, IgnoresHeaderBlocks) {
  const char* doc =
      "<e:Envelope xmlns:e=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<e:Header><sec><token>x</token></sec></e:Header>"
      "<e:Body><w:theOp xmlns:w=\"urn:T\"/></e:Body></e:Envelope>";
  EXPECT_EQ(soap::peek_operation(doc), "theOp");
}

}  // namespace
}  // namespace wsc::cache
