// Stale-if-error degraded mode: lookup_allow_stale must expose expired
// entries with zero side effects (the plain lookup() would evict them on
// sight), and CachingServiceClient must serve an expired-but-in-grace
// entry when the wire call fails for good — counting every such serve.
#include <gtest/gtest.h>

#include <memory>

#include "core/client.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/fault_injection.hpp"
#include "transport/inproc_transport.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using soap::Parameter;
using std::chrono::milliseconds;
using std::chrono::seconds;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/stale";

class DummyValue final : public CachedValue {
 public:
  reflect::Object retrieve() const override { return Object::make(7); }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 16; }
};

// --- ResponseCache::lookup_allow_stale ------------------------------------------

TEST(LookupAllowStaleTest, FreshEntryReportedWithZeroStaleness) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100),
              seconds(42));
  clock.advance(milliseconds(40));
  ResponseCache::StaleLookup s = cache.lookup_allow_stale(CacheKey("k"));
  ASSERT_NE(s.value, nullptr);
  EXPECT_TRUE(s.fresh);
  EXPECT_EQ(s.staleness, util::Duration(0));
  EXPECT_EQ(s.last_modified, seconds(42));
}

TEST(LookupAllowStaleTest, ExpiredEntryReportsHowStaleItIs) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100),
              seconds(42));
  clock.advance(milliseconds(250));
  ResponseCache::StaleLookup s = cache.lookup_allow_stale(CacheKey("k"));
  ASSERT_NE(s.value, nullptr);
  EXPECT_FALSE(s.fresh);
  EXPECT_EQ(s.staleness, util::Duration(milliseconds(150)));
}

TEST(LookupAllowStaleTest, HasNoSideEffectsAtAll) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.store(CacheKey("k"), std::make_shared<DummyValue>(), milliseconds(100),
              seconds(42));
  clock.advance(milliseconds(500));

  // Repeated stale lookups: no hit/miss/expiration accounting, and — the
  // point of the method — no eviction of the expired entry.
  for (int i = 0; i < 3; ++i) {
    ResponseCache::StaleLookup s = cache.lookup_allow_stale(CacheKey("k"));
    ASSERT_NE(s.value, nullptr);
  }
  StatsSnapshot stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.expirations, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // The plain lookup() keeps its eager-eviction contract.
  EXPECT_EQ(cache.lookup(CacheKey("k")), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.lookup_allow_stale(CacheKey("k")).value, nullptr);
}

TEST(LookupAllowStaleTest, AbsentKeyReturnsEmptyWithoutCountingAMiss) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  ResponseCache::StaleLookup s = cache.lookup_allow_stale(CacheKey("nope"));
  EXPECT_EQ(s.value, nullptr);
  EXPECT_FALSE(s.fresh);
  EXPECT_EQ(cache.stats().misses, 0u);
}

// --- CachingServiceClient stale-on-error ----------------------------------------

struct ClientRig {
  explicit ClientRig(CachePolicy policy) {
    auto inproc = std::make_shared<transport::InProcessTransport>();
    inproc->bind(kEndpoint, make_test_service());
    faults = std::make_shared<transport::FaultInjectingTransport>(
        inproc, transport::FaultSpec{});
    cache = std::make_shared<ResponseCache>(ResponseCache::Config{}, clock);
    CachingServiceClient::Options options;
    options.policy = std::move(policy);
    client = std::make_unique<CachingServiceClient>(
        faults, test_description(), kEndpoint, cache, std::move(options));
  }

  std::string echo(const std::string& s) {
    return client->invoke("echoString", {{"s", Object::make(s)}})
        .as<std::string>();
  }

  util::ManualClock clock;
  std::shared_ptr<transport::FaultInjectingTransport> faults;
  std::shared_ptr<ResponseCache> cache;
  std::unique_ptr<CachingServiceClient> client;
};

CachePolicy grace_policy(milliseconds ttl = milliseconds(100),
                         milliseconds grace = seconds(10)) {
  CachePolicy policy;
  policy.cacheable("echoString", ttl);
  policy.stale_if_error("echoString", grace);
  return policy;
}

TEST(StaleOnErrorTest, OutageWithinGraceServesExpiredEntry) {
  ClientRig rig(grace_policy());
  EXPECT_EQ(rig.echo("hi"), "echo:hi");  // warm
  rig.clock.advance(milliseconds(200));  // expire
  rig.faults->set_down(true);            // origin gone
  EXPECT_EQ(rig.echo("hi"), "echo:hi");  // degraded serve, correct value
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.stale_serves, 1u);
  EXPECT_EQ(stats.entries, 1u);  // the fallback entry was not destroyed
}

TEST(StaleOnErrorTest, RepeatedOutageCallsKeepServingStale) {
  ClientRig rig(grace_policy());
  rig.echo("hi");
  rig.clock.advance(milliseconds(200));
  rig.faults->set_down(true);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rig.echo("hi"), "echo:hi");
  EXPECT_EQ(rig.cache->stats().stale_serves, 5u);
}

TEST(StaleOnErrorTest, BeyondGraceFailsLoudly) {
  ClientRig rig(grace_policy(milliseconds(100), milliseconds(500)));
  rig.echo("hi");
  rig.clock.advance(milliseconds(700));  // 600ms past expiry > 500ms grace
  rig.faults->set_down(true);
  EXPECT_THROW(rig.echo("hi"), TransportError);
  EXPECT_EQ(rig.cache->stats().stale_serves, 0u);
}

TEST(StaleOnErrorTest, NoGraceConfiguredFailsLoudly) {
  CachePolicy policy;
  policy.cacheable("echoString", milliseconds(100));
  ClientRig rig(std::move(policy));
  rig.echo("hi");
  rig.clock.advance(milliseconds(200));
  rig.faults->set_down(true);
  EXPECT_THROW(rig.echo("hi"), TransportError);
  EXPECT_EQ(rig.cache->stats().stale_serves, 0u);
}

TEST(StaleOnErrorTest, ColdCacheCannotAbsorbTheFailure) {
  ClientRig rig(grace_policy());
  rig.faults->set_down(true);
  EXPECT_THROW(rig.echo("never-seen"), TransportError);
}

TEST(StaleOnErrorTest, FreshEntryStillServedNormallyUnderGracePolicy) {
  ClientRig rig(grace_policy());
  rig.echo("hi");
  rig.faults->set_down(true);  // origin down, but the entry is still fresh
  EXPECT_EQ(rig.echo("hi"), "echo:hi");
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.stale_serves, 0u);  // that was a plain fresh hit
  EXPECT_EQ(stats.hits, 1u);
}

TEST(StaleOnErrorTest, CorruptXmlAlsoTriggersStaleServe) {
  ClientRig rig(grace_policy());
  rig.echo("hi");
  rig.clock.advance(milliseconds(200));
  transport::FaultSpec corrupt;
  corrupt.p_corrupt_xml = 1.0;  // origin answers, but with mangled XML
  rig.faults->set_spec(corrupt);
  EXPECT_EQ(rig.echo("hi"), "echo:hi");
  EXPECT_EQ(rig.cache->stats().stale_serves, 1u);
}

TEST(StaleOnErrorTest, RecoveryRefreshesInsteadOfServingStale) {
  ClientRig rig(grace_policy());
  rig.echo("hi");
  rig.clock.advance(milliseconds(200));
  rig.faults->set_down(true);
  EXPECT_EQ(rig.echo("hi"), "echo:hi");  // stale serve during outage
  rig.faults->set_down(false);
  EXPECT_EQ(rig.echo("hi"), "echo:hi");  // origin back: a real refetch
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.stale_serves, 1u);  // did not grow after recovery
  // The refetch re-stored the entry: it is fresh again.
  EXPECT_EQ(rig.echo("hi"), "echo:hi");
  EXPECT_GE(rig.cache->stats().hits, 1u);
}

TEST(StaleOnErrorTest, UncacheableOperationsAreNeverServedStale) {
  CachePolicy policy;  // voidOp left unconfigured: uncacheable
  policy.cacheable("echoString", milliseconds(100));
  policy.stale_if_error("echoString", seconds(10));
  ClientRig rig(std::move(policy));
  rig.echo("hi");
  rig.faults->set_down(true);
  EXPECT_THROW(
      rig.client->invoke("voidOp", {{"x", Object::make(std::int32_t(1))}}),
      TransportError);
}

}  // namespace
}  // namespace wsc::cache
