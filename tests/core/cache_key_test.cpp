// Table 2 key generation: correctness (equal requests -> equal keys,
// different requests -> different keys) and limitations per method.
#include "core/cache_key.hpp"

#include <gtest/gtest.h>

#include "tests/reflect/test_types.hpp"
#include "util/error.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using reflect::testing::ensure_test_types;
using reflect::testing::NoSerialize;
using reflect::testing::Opaque;
using reflect::testing::Point;

soap::RpcRequest request(const std::string& op, std::string endpoint,
                         std::vector<soap::Parameter> params) {
  ensure_test_types();
  soap::RpcRequest r;
  r.endpoint = std::move(endpoint);
  r.ns = "urn:Test";
  r.operation = op;
  r.params = std::move(params);
  return r;
}

soap::RpcRequest search_like(const std::string& q) {
  return request("doSearch", "http://svc/x",
                 {{"key", Object::make(std::string("k"))},
                  {"q", Object::make(q)},
                  {"start", Object::make(std::int32_t{0})},
                  {"safe", Object::make(false)}});
}

class AllKeyMethods : public ::testing::TestWithParam<KeyMethod> {
 protected:
  std::unique_ptr<KeyGenerator> gen() { return make_key_generator(GetParam()); }
};

TEST_P(AllKeyMethods, EqualRequestsProduceEqualKeys) {
  CacheKey a = gen()->generate(search_like("caching"));
  CacheKey b = gen()->generate(search_like("caching"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST_P(AllKeyMethods, DifferentParameterValuesDiffer) {
  EXPECT_NE(gen()->generate(search_like("caching")),
            gen()->generate(search_like("Caching")));
}

TEST_P(AllKeyMethods, DifferentOperationsDiffer) {
  auto params = [] {
    return std::vector<soap::Parameter>{{"s", Object::make(std::string("x"))}};
  };
  EXPECT_NE(gen()->generate(request("opA", "http://svc/x", params())),
            gen()->generate(request("opB", "http://svc/x", params())));
}

TEST_P(AllKeyMethods, DifferentEndpointsDiffer) {
  auto params = [] {
    return std::vector<soap::Parameter>{{"s", Object::make(std::string("x"))}};
  };
  EXPECT_NE(gen()->generate(request("op", "http://svc/A", params())),
            gen()->generate(request("op", "http://svc/B", params())));
}

TEST_P(AllKeyMethods, ParameterOrderMatters) {
  // RPC parameter positions are meaningful; swapped names/values differ.
  auto ab = request("op", "http://svc/x",
                    {{"a", Object::make(std::string("1"))},
                     {"b", Object::make(std::string("2"))}});
  auto ba = request("op", "http://svc/x",
                    {{"b", Object::make(std::string("2"))},
                     {"a", Object::make(std::string("1"))}});
  EXPECT_NE(gen()->generate(ab), gen()->generate(ba));
}

TEST_P(AllKeyMethods, MethodReported) {
  EXPECT_EQ(gen()->method(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Methods, AllKeyMethods,
                         ::testing::Values(KeyMethod::XmlMessage,
                                           KeyMethod::Serialization,
                                           KeyMethod::ToString),
                         [](const ::testing::TestParamInfo<KeyMethod>& info) {
                           switch (info.param) {
                             case KeyMethod::XmlMessage: return "XmlMessage";
                             case KeyMethod::Serialization: return "Serialization";
                             case KeyMethod::ToString: return "ToString";
                           }
                           return "unknown";
                         });

// --- method-specific limitations (Table 2) ------------------------------------

TEST(KeyLimitationsTest, SerializationRejectsNonSerializableParam) {
  ensure_test_types();
  auto r = request("op", "http://svc/x",
                   {{"p", Object::make(NoSerialize{1})}});
  EXPECT_THROW(SerializationKeyGenerator{}.generate(r), SerializationError);
  // The universal XML method still works? No — Opaque has no fields, but
  // NoSerialize is a bean: the XML method serializes it fine.
  EXPECT_NO_THROW(XmlMessageKeyGenerator{}.generate(r));
}

TEST(KeyLimitationsTest, ToStringRejectsTypesWithoutToString) {
  ensure_test_types();
  auto r = request("op", "http://svc/x",
                   {{"p", Object::make(std::vector<std::uint8_t>{1, 2})}});
  EXPECT_THROW(ToStringKeyGenerator{}.generate(r), SerializationError);
  EXPECT_NO_THROW(SerializationKeyGenerator{}.generate(r));
}

TEST(KeyLimitationsTest, ToStringHandlesBeansReflectively) {
  ensure_test_types();
  auto r = request("op", "http://svc/x",
                   {{"p", Object::make(Point{1, 2, "L"})}});
  CacheKey k = ToStringKeyGenerator{}.generate(r);
  EXPECT_NE(k.material().find("test.Point{x=1,y=2,label=L}"), std::string::npos);
}

// --- Table 8 shape: key sizes --------------------------------------------------

TEST(KeySizeTest, XmlLargestToStringSmallest) {
  auto r = search_like("some query terms");
  // Compare material lengths (Table 8 reports sizes, not allocator
  // round-ups).
  std::size_t xml = XmlMessageKeyGenerator{}.generate(r).material().size();
  std::size_t ser = SerializationKeyGenerator{}.generate(r).material().size();
  std::size_t str = ToStringKeyGenerator{}.generate(r).material().size();
  EXPECT_GT(xml, ser);
  EXPECT_GT(ser, str);
}

TEST(KeySizeTest, XmlKeyInTable8Ballpark) {
  // Table 8: SpellingSuggestion request XML key ~586 bytes.
  auto r = request("doSpellingSuggestion", "http://api.google.com/search/beta2",
                   {{"key", Object::make(std::string(32, '0'))},
                    {"phrase", Object::make(std::string("web servies"))}});
  std::size_t size = XmlMessageKeyGenerator{}.generate(r).material().size();
  EXPECT_GT(size, 350u);
  EXPECT_LT(size, 900u);
}

// --- CacheKey value semantics ---------------------------------------------------

TEST(CacheKeyTest, DefaultKeyIsEmpty) {
  CacheKey k;
  EXPECT_TRUE(k.material().empty());
  EXPECT_EQ(k.hash(), 0u);
}

TEST(CacheKeyTest, HashMatchesMaterial) {
  CacheKey a("hello");
  CacheKey b("hello");
  CacheKey c("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(CacheKey::Hasher{}(a), CacheKey::Hasher{}(b));
}

TEST(CacheKeyTest, BinarySafeMaterial) {
  std::string m1("a\0b", 3);
  std::string m2("a\0c", 3);
  EXPECT_NE(CacheKey(m1), CacheKey(m2));
}

}  // namespace
}  // namespace wsc::cache
