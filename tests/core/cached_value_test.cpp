// Table 3 / §3.1 semantics: each representation must return equal objects
// on every hit, and all except Reference must be isolated from client
// mutations both at store time and at hit time.
#include "core/cached_value.hpp"

#include <gtest/gtest.h>

#include "reflect/algorithms.hpp"
#include "soap/serializer.hpp"
#include "tests/soap/test_service.hpp"
#include "util/error.hpp"
#include "xml/sax_parser.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using reflect::deep_equals;
using reflect::testing::Opaque;
using reflect::testing::sample_polygon;
using wsc::soap::testing::Polygon;
using wsc::soap::testing::test_description;

std::shared_ptr<const wsdl::OperationInfo> shared_op(const char* name) {
  auto desc = test_description();
  return {desc, &desc->require_operation(name)};
}

/// Simulate the miss-path capture for a response object.
struct Captured {
  std::string xml;
  xml::EventSequence events;
  xml::CompactEventSequence compact_events;
  Object object;
  std::shared_ptr<const wsdl::OperationInfo> op;

  ResponseCapture capture() {
    ResponseCapture c;
    c.response_xml = &xml;
    c.events = &events;
    c.compact_events = &compact_events;
    c.object = object;
    c.op = op;
    return c;
  }
};

Captured capture_response(const char* op_name, Object object) {
  Captured c;
  c.op = shared_op(op_name);
  c.object = std::move(object);
  c.xml = soap::serialize_response(*c.op, "urn:Test", c.object);
  xml::EventRecorder recorder;
  xml::CompactEventRecorder compact_recorder;
  xml::TeeHandler tee(recorder, compact_recorder);
  xml::SaxParser{}.parse(c.xml, tee);
  c.events = recorder.take();
  c.compact_events = compact_recorder.take();
  return c;
}

Captured polygon_capture() {
  reflect::testing::ensure_test_types();
  return capture_response("echoPolygon", Object::make(sample_polygon()));
}

class AllRepresentations : public ::testing::TestWithParam<Representation> {};

TEST_P(AllRepresentations, RetrieveEqualsOriginal) {
  Captured c = polygon_capture();
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value = make_cached_value(GetParam(), cap);
  EXPECT_EQ(value->representation(), GetParam());
  Object out = value->retrieve();
  EXPECT_TRUE(deep_equals(out, c.object));
}

TEST_P(AllRepresentations, RepeatedRetrievalsEqual) {
  Captured c = polygon_capture();
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value = make_cached_value(GetParam(), cap);
  Object a = value->retrieve();
  Object b = value->retrieve();
  EXPECT_TRUE(deep_equals(a, b));
}

TEST_P(AllRepresentations, MemorySizeNonTrivial) {
  Captured c = polygon_capture();
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value = make_cached_value(GetParam(), cap);
  EXPECT_GT(value->memory_size(), sizeof(void*));
}

INSTANTIATE_TEST_SUITE_P(
    Representations, AllRepresentations,
    ::testing::Values(Representation::XmlMessage, Representation::SaxEvents,
                      Representation::SaxEventsCompact,
                      Representation::Serialized,
                      Representation::ReflectionCopy,
                      Representation::CloneCopy, Representation::Reference),
    [](const ::testing::TestParamInfo<Representation>& info) {
      std::string name(representation_name(info.param));
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

class IsolatedRepresentations : public ::testing::TestWithParam<Representation> {};

TEST_P(IsolatedRepresentations, HitTimeMutationDoesNotPoisonCache) {
  // §3.1: "at the next cache hit, the cached object modified by the client
  // application can be returned" — unless the representation copies.
  Captured c = polygon_capture();
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value = make_cached_value(GetParam(), cap);

  Object first = value->retrieve();
  first.as<Polygon>().name = "HACKED";
  first.as<Polygon>().points.clear();

  Object second = value->retrieve();
  EXPECT_TRUE(deep_equals(second, c.object))
      << representation_name(GetParam());
}

TEST_P(IsolatedRepresentations, StoreTimeMutationDoesNotPoisonCache) {
  // The object handed to the application on the MISS is mutated after the
  // cache stored its entry.
  Captured c = polygon_capture();
  Object snapshot = reflect::deep_copy(c.object);
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value = make_cached_value(GetParam(), cap);

  c.object.as<Polygon>().weight = -1;
  c.object.as<Polygon>().tags.push_back("post-store mutation");

  EXPECT_TRUE(deep_equals(value->retrieve(), snapshot))
      << representation_name(GetParam());
}

TEST_P(IsolatedRepresentations, RetrievalsAreStorageIndependent) {
  Captured c = polygon_capture();
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value = make_cached_value(GetParam(), cap);
  Object a = value->retrieve();
  Object b = value->retrieve();
  EXPECT_NE(a.data(), b.data()) << representation_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    CopyingRepresentations, IsolatedRepresentations,
    ::testing::Values(Representation::XmlMessage, Representation::SaxEvents,
                      Representation::SaxEventsCompact,
                      Representation::Serialized,
                      Representation::ReflectionCopy,
                      Representation::CloneCopy));

// --- Reference: documented aliasing -------------------------------------------

TEST(ReferenceValueTest, SharesTheStoredObject) {
  Captured c = polygon_capture();
  ResponseCapture cap = c.capture();
  std::unique_ptr<CachedValue> value =
      make_cached_value(Representation::Reference, cap);
  Object a = value->retrieve();
  Object b = value->retrieve();
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.data(), c.object.data());
  // The §3.1 hazard this representation accepts by contract:
  a.as<Polygon>().name = "visible-to-everyone";
  EXPECT_EQ(b.as<Polygon>().name, "visible-to-everyone");
}

// --- applicability failures ----------------------------------------------------

TEST(CachedValueLimitsTest, SerializedRejectsNonSerializable) {
  reflect::testing::ensure_test_types();
  ResponseCapture cap;
  cap.object = Object::make(reflect::testing::NoSerialize{7});
  EXPECT_THROW(make_cached_value(Representation::Serialized, cap),
               SerializationError);
}

TEST(CachedValueLimitsTest, ReflectionRejectsNonBean) {
  reflect::testing::ensure_test_types();
  ResponseCapture cap;
  cap.object = Object::make(Opaque{"x"});
  EXPECT_THROW(make_cached_value(Representation::ReflectionCopy, cap),
               SerializationError);
}

TEST(CachedValueLimitsTest, ReflectionRejectsPlainString) {
  // Table 7: reflection is n/a for the SpellingSuggestion String result.
  ResponseCapture cap;
  cap.object = Object::make(std::string("s"));
  EXPECT_THROW(make_cached_value(Representation::ReflectionCopy, cap),
               SerializationError);
}

TEST(CachedValueLimitsTest, CloneRejectsUncloneable) {
  reflect::testing::ensure_test_types();
  ResponseCapture cap;
  cap.object = Object::make(reflect::testing::NoClone{"p"});
  EXPECT_THROW(make_cached_value(Representation::CloneCopy, cap),
               SerializationError);
}

TEST(CachedValueLimitsTest, XmlNeedsDocument) {
  ResponseCapture cap;  // no response_xml
  cap.object = Object::make(std::string("s"));
  EXPECT_THROW(make_cached_value(Representation::XmlMessage, cap), Error);
}

TEST(CachedValueLimitsTest, AutoMustBeResolved) {
  ResponseCapture cap;
  cap.object = Object::make(std::string("s"));
  EXPECT_THROW(make_cached_value(Representation::Auto, cap), Error);
}

// --- Table 9 shape: footprint ordering ----------------------------------------

TEST(CachedValueFootprintTest, XmlLargestForComplexObjects) {
  Captured c = polygon_capture();
  ResponseCapture cap1 = c.capture();
  auto xml_value = make_cached_value(Representation::XmlMessage, cap1);
  ResponseCapture cap2 = c.capture();
  auto ser_value = make_cached_value(Representation::Serialized, cap2);
  ResponseCapture cap3 = c.capture();
  auto obj_value = make_cached_value(Representation::CloneCopy, cap3);
  // "The Java serialization form and the Java object were much smaller
  // than the XML message" (except byte-array payloads).
  EXPECT_GT(xml_value->memory_size(), ser_value->memory_size());
  EXPECT_GT(xml_value->memory_size(), obj_value->memory_size());
}

TEST(CachedValueFootprintTest, BytesPayloadSimilarAcrossRepresentations) {
  // CachedPage case: a single byte array dominates every representation.
  std::vector<std::uint8_t> page(3600);
  for (std::size_t i = 0; i < page.size(); ++i)
    page[i] = static_cast<std::uint8_t>(i);
  Captured c = capture_response("getBytes", Object::make(page));

  ResponseCapture cap1 = c.capture();
  auto ser_value = make_cached_value(Representation::Serialized, cap1);
  ResponseCapture cap2 = c.capture();
  auto ref_value = make_cached_value(Representation::ReflectionCopy, cap2);
  double ratio = static_cast<double>(ser_value->memory_size()) /
                 static_cast<double>(ref_value->memory_size());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.3);
}

}  // namespace
}  // namespace wsc::cache
