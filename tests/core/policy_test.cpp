// §3.2 cache policy: administrator configuration + server directives.
#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace wsc::cache {
namespace {

using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::seconds;

TEST(PolicyTest, DefaultIsUncacheable) {
  CachePolicy policy;
  EXPECT_FALSE(policy.lookup("anything").cacheable);
}

TEST(PolicyTest, CacheableShorthand) {
  CachePolicy policy;
  policy.cacheable("op", minutes(5), Representation::SaxEvents);
  const OperationPolicy& p = policy.lookup("op");
  EXPECT_TRUE(p.cacheable);
  EXPECT_EQ(p.ttl, minutes(5));
  EXPECT_EQ(p.representation, Representation::SaxEvents);
  EXPECT_FALSE(p.read_only);
}

TEST(PolicyTest, UncacheableOverridesPrevious) {
  CachePolicy policy;
  policy.cacheable("op");
  policy.uncacheable("op");
  EXPECT_FALSE(policy.lookup("op").cacheable);
}

TEST(PolicyTest, SetFullPolicy) {
  CachePolicy policy;
  OperationPolicy p;
  p.cacheable = true;
  p.read_only = true;
  p.prefer_clone = true;
  policy.set("op", p);
  EXPECT_TRUE(policy.lookup("op").read_only);
  EXPECT_TRUE(policy.lookup("op").prefer_clone);
}

TEST(PolicyTest, PerOperationIndependence) {
  CachePolicy policy;
  policy.cacheable("a", minutes(1));
  policy.cacheable("b", minutes(2));
  EXPECT_EQ(policy.lookup("a").ttl, minutes(1));
  EXPECT_EQ(policy.lookup("b").ttl, minutes(2));
}

// --- effective TTL with server directives --------------------------------------

TEST(PolicyTest, EffectiveTtlWithoutDirectives) {
  CachePolicy policy;
  policy.cacheable("op", minutes(10));
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), {}), minutes(10));
}

TEST(PolicyTest, UncacheableHasNoTtl) {
  CachePolicy policy;
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), {}), std::nullopt);
}

TEST(PolicyTest, ServerNoStoreSuppressesCaching) {
  CachePolicy policy;
  policy.cacheable("op");
  http::CacheDirectives d;
  d.no_store = true;
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), d), std::nullopt);
}

TEST(PolicyTest, ServerMaxAgeLowersTtl) {
  CachePolicy policy;
  policy.cacheable("op", minutes(60));
  http::CacheDirectives d;
  d.max_age = seconds(30);
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), d), seconds(30));
}

TEST(PolicyTest, ServerMaxAgeCannotRaiseTtl) {
  CachePolicy policy;
  policy.cacheable("op", seconds(10));
  http::CacheDirectives d;
  d.max_age = minutes(60);
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), d), seconds(10));
}

TEST(PolicyTest, ServerDirectivesCanBeIgnored) {
  CachePolicy policy;
  policy.cacheable("op", minutes(10));
  policy.honor_server_directives(false);
  http::CacheDirectives d;
  d.no_store = true;
  d.max_age = seconds(1);
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), d), minutes(10));
}

TEST(PolicyTest, ServerCannotEnableCaching) {
  // Directives only tighten: an uncacheable op stays uncacheable even with
  // a permissive max-age from the server.
  CachePolicy policy;
  http::CacheDirectives d;
  d.max_age = minutes(60);
  EXPECT_EQ(policy.effective_ttl(policy.lookup("op"), d), std::nullopt);
}

}  // namespace
}  // namespace wsc::cache
