// Zero-allocation key generation (Table 6: key-generation cost decides
// whether response caching pays off).
//
// The contract under test: after a warm-up that grows the KeyScratch
// buffer to its steady-state capacity, ToStringKeyGenerator::generate_into
// plus a ResponseCache lookup through the borrowed CacheKeyRef perform ZERO
// heap allocations — the owned CacheKey is only materialized on the miss
// path.  Verified with a counting global operator new, armed only inside
// the measuring test so the other suites in this binary are unaffected.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/cache_key.hpp"
#include "core/response_cache.hpp"
#include "reflect/object.hpp"
#include "tests/reflect/test_types.hpp"

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::minutes;

class IdValue final : public CachedValue {
 public:
  explicit IdValue(int id) : id_(id) {}
  reflect::Object retrieve() const override {
    return Object::make(std::int32_t{id_});
  }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 32; }

 private:
  std::int32_t id_;
};

soap::RpcRequest search_request(const std::string& q) {
  reflect::testing::ensure_test_types();
  soap::RpcRequest r;
  r.endpoint = "http://svc/search";
  r.ns = "urn:Test";
  r.operation = "doSearch";
  r.params = {{"key", Object::make(std::string("devkey"))},
              {"q", Object::make(q)},
              {"start", Object::make(std::int32_t{10})},
              {"maxResults", Object::make(std::int64_t{25})},
              {"score", Object::make(0.5)},
              {"safeSearch", Object::make(false)}};
  return r;
}

TEST(KeygenScratchTest, GenerateIntoMatchesGenerate) {
  ToStringKeyGenerator gen;
  soap::RpcRequest req = search_request("caching");
  CacheKey owned = gen.generate(req);
  KeyScratch scratch;
  gen.generate_into(req, scratch);
  // Byte-identical material and hash: refs and owned keys always agree, so
  // an entry stored under the owned key is found via the borrowed ref.
  EXPECT_EQ(scratch.ref().material, owned.material());
  EXPECT_EQ(scratch.ref().hash, owned.hash());
  EXPECT_EQ(scratch.to_key(), owned);
}

TEST(KeygenScratchTest, RefLookupFindsEntryStoredUnderOwnedKey) {
  ToStringKeyGenerator gen;
  soap::RpcRequest req = search_request("caching");
  ResponseCache cache;
  cache.store(gen.generate(req), std::make_shared<IdValue>(7), minutes(1));
  KeyScratch scratch;
  gen.generate_into(req, scratch);
  auto hit = cache.lookup(scratch.ref());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->retrieve().as<std::int32_t>(), 7);
  // And through the revalidation probe as well.
  EXPECT_TRUE(cache.lookup_for_revalidation(scratch.ref()).fresh);
}

TEST(KeygenScratchTest, SteadyStateHitPathDoesNotAllocate) {
  ToStringKeyGenerator gen;
  soap::RpcRequest req = search_request("caching");
  ResponseCache cache(ResponseCache::Config{});
  cache.store(gen.generate(req), std::make_shared<IdValue>(1), minutes(1));

  KeyScratch scratch;
  // Warm-up: first calls may grow the scratch buffer to the material size.
  for (int i = 0; i < 4; ++i) {
    gen.generate_into(req, scratch);
    ASSERT_NE(cache.lookup(scratch.ref()), nullptr);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 64; ++i) {
    gen.generate_into(req, scratch);
    auto hit = cache.lookup(scratch.ref());
    if (hit == nullptr) break;  // would allocate in the assert below anyway
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state generate_into + ref lookup must not touch the heap";
}

TEST(KeygenScratchTest, ScratchReusedAcrossDifferentRequests) {
  // One scratch serving many distinct requests (the per-thread usage in
  // CachingServiceClient): each generate_into fully resets the material.
  ToStringKeyGenerator gen;
  KeyScratch scratch;
  soap::RpcRequest a = search_request("alpha");
  soap::RpcRequest b = search_request("beta");
  gen.generate_into(a, scratch);
  CacheKey key_a = scratch.to_key();
  gen.generate_into(b, scratch);
  CacheKey key_b = scratch.to_key();
  EXPECT_NE(key_a, key_b);
  EXPECT_EQ(key_a, gen.generate(a));
  EXPECT_EQ(key_b, gen.generate(b));
}

TEST(KeygenScratchTest, DefaultGenerateIntoDelegatesToGenerate) {
  // Generators without an append-style implementation still satisfy the
  // generate_into contract via the assign() fallback.
  XmlMessageKeyGenerator gen;
  soap::RpcRequest req = search_request("caching");
  KeyScratch scratch;
  gen.generate_into(req, scratch);
  CacheKey owned = gen.generate(req);
  EXPECT_EQ(scratch.ref().material, owned.material());
  EXPECT_EQ(scratch.ref().hash, owned.hash());
}

}  // namespace
}  // namespace wsc::cache
