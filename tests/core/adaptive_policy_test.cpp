// AdaptivePolicy decision engine under deterministic synthetic cost
// feeds: convergence to the known optimum per objective, drift
// switching, hysteresis, the memory-pressure objective override, and
// seed-reproducible sampling.  Every test drives its own ManualClock and
// its own CostProfiles registry — no wall clock, no wall RNG.
#include "core/adaptive_policy.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "obs/events.hpp"
#include "obs/profiles.hpp"
#include "util/clock.hpp"

namespace wsc::cache {
namespace {

constexpr const char* kService = "TestService";
constexpr const char* kOp = "doGoogleSearch";

const std::vector<Representation>& all_but_reference() {
  static const std::vector<Representation> reps = {
      Representation::XmlMessage,     Representation::SaxEvents,
      Representation::SaxEventsCompact, Representation::Serialized,
      Representation::ReflectionCopy, Representation::CloneCopy,
  };
  return reps;
}

/// Synthetic cost feed: n probe samples of (hit_ns, store_ns, bytes) for
/// one representation, exactly what the client's shadow probes record.
void feed(obs::CostProfiles& profiles, Representation r, std::uint64_t hit_ns,
          std::uint64_t bytes, int n = 3, std::uint64_t store_ns = 0) {
  for (int i = 0; i < n; ++i)
    profiles.record_probe(kService, kOp, representation_name(r), hit_ns,
                          store_ns, bytes);
}

struct Harness {
  explicit Harness(AdaptivePolicy::Config config) {
    profiles = std::make_shared<obs::CostProfiles>();
    policy = std::make_unique<AdaptivePolicy>(profiles, config, clock);
  }
  AdaptivePolicy::Choice choose(
      Representation static_choice = Representation::ReflectionCopy,
      const std::vector<Representation>& applicable = all_but_reference()) {
    return policy->choose(kService, kOp, static_choice, applicable);
  }
  util::ManualClock clock;
  std::shared_ptr<obs::CostProfiles> profiles;
  std::unique_ptr<AdaptivePolicy> policy;
};

AdaptivePolicy::Config config_for(AdaptiveObjective objective) {
  AdaptivePolicy::Config config;
  config.objective = objective;
  config.sample_fraction = 0;  // decision tests: no probe noise
  return config;
}

TEST(AdaptivePolicyTest, FirstChoiceIsTheStaticTraitChoice) {
  Harness h(config_for(AdaptiveObjective::Latency));
  AdaptivePolicy::Choice choice = h.choose(Representation::ReflectionCopy);
  EXPECT_EQ(choice.representation, Representation::ReflectionCopy);
  EXPECT_EQ(choice.probe, Representation::Auto);  // sampling off
  EXPECT_EQ(h.policy->current(kOp), Representation::ReflectionCopy);
  EXPECT_EQ(h.policy->current("neverSeen"), Representation::Auto);
}

TEST(AdaptivePolicyTest, ConvergesToLatencyOptimum) {
  Harness h(config_for(AdaptiveObjective::Latency));
  h.choose(Representation::ReflectionCopy);
  feed(*h.profiles, Representation::ReflectionCopy, 1000, 100);
  feed(*h.profiles, Representation::Serialized, 200, 100);
  feed(*h.profiles, Representation::XmlMessage, 5000, 100);
  const std::uint64_t switch_events =
      obs::event_log().count(obs::EventKind::AdaptiveSwitch);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);
  EXPECT_EQ(h.policy->decisions(), 1u);
  EXPECT_EQ(h.policy->switches(), 1u);
  EXPECT_EQ(obs::event_log().count(obs::EventKind::AdaptiveSwitch),
            switch_events + 1);
}

TEST(AdaptivePolicyTest, ConvergesToBytesOptimum) {
  Harness h(config_for(AdaptiveObjective::Bytes));
  h.choose(Representation::ReflectionCopy);
  // Serialized is the SLOWEST here but the smallest: the bytes objective
  // must pick it anyway.
  feed(*h.profiles, Representation::ReflectionCopy, 100, 12994);
  feed(*h.profiles, Representation::Serialized, 9999, 2530);
  feed(*h.profiles, Representation::SaxEventsCompact, 500, 4200);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);
}

TEST(AdaptivePolicyTest, WeightedObjectiveTradesLatencyAgainstBytes) {
  Harness h(config_for(AdaptiveObjective::Weighted));  // alpha = beta = 1
  h.choose(Representation::ReflectionCopy);
  feed(*h.profiles, Representation::ReflectionCopy, 1000, 10000);  // J = 11000
  feed(*h.profiles, Representation::Serialized, 5000, 2000);       // J = 7000
  feed(*h.profiles, Representation::SaxEventsCompact, 100, 20000); // J = 20100
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);
}

TEST(AdaptivePolicyTest, HysteresisHoldsSmallImprovements) {
  Harness h(config_for(AdaptiveObjective::Latency));  // min_improvement 5%
  h.choose(Representation::ReflectionCopy);
  feed(*h.profiles, Representation::ReflectionCopy, 1000, 100);
  feed(*h.profiles, Representation::Serialized, 970, 100);  // only 3% better
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::ReflectionCopy);
  EXPECT_EQ(h.policy->switches(), 0u);
  // A decisive improvement in the next epoch does switch (EWMA folds the
  // new samples in: 0.4 * 500 + 0.6 * 970 = 782 < 950).
  feed(*h.profiles, Representation::Serialized, 500, 100);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);
  EXPECT_EQ(h.policy->switches(), 1u);
}

TEST(AdaptivePolicyTest, MinSamplesGateHoldsThinEvidence) {
  Harness h(config_for(AdaptiveObjective::Latency));  // min_samples 3
  h.choose(Representation::ReflectionCopy);
  feed(*h.profiles, Representation::ReflectionCopy, 1000, 100);
  feed(*h.profiles, Representation::Serialized, 10, 100, /*n=*/2);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::ReflectionCopy);
  feed(*h.profiles, Representation::Serialized, 10, 100, /*n=*/1);  // third
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);
}

TEST(AdaptivePolicyTest, UnmeasuredIncumbentHolds) {
  Harness h(config_for(AdaptiveObjective::Latency));
  h.choose(Representation::ReflectionCopy);
  // Only a challenger has data: with nothing to compare against, the
  // policy must not leap.
  feed(*h.profiles, Representation::Serialized, 10, 100);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::ReflectionCopy);
  EXPECT_EQ(h.policy->switches(), 0u);
}

TEST(AdaptivePolicyTest, DriftTriggersReSwitch) {
  Harness h(config_for(AdaptiveObjective::Latency));
  h.choose(Representation::ReflectionCopy);
  feed(*h.profiles, Representation::ReflectionCopy, 1000, 100);
  feed(*h.profiles, Representation::Serialized, 200, 100);
  feed(*h.profiles, Representation::SaxEventsCompact, 1500, 100);
  h.policy->decide_now();
  ASSERT_EQ(h.policy->current(kOp), Representation::Serialized);
  // Payload shape drifts: serialization degrades, compact SAX improves.
  // EWMA after one epoch: Serialized 0.4*5000 + 0.6*200 = 2120,
  // SaxEventsCompact 0.4*100 + 0.6*1500 = 940 < 2014 -> switch.
  feed(*h.profiles, Representation::Serialized, 5000, 100);
  feed(*h.profiles, Representation::SaxEventsCompact, 100, 100);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::SaxEventsCompact);
  EXPECT_EQ(h.policy->switches(), 2u);
}

TEST(AdaptivePolicyTest, NeverSelectsOrProbesInapplicable) {
  AdaptivePolicy::Config config = config_for(AdaptiveObjective::Latency);
  config.sample_fraction = 1.0;  // probe on every store
  Harness h(config);
  const std::vector<Representation> applicable = {
      Representation::XmlMessage, Representation::SaxEventsCompact};
  // Reference and Serialized get spectacular (but inapplicable) rows —
  // the result type is a mutable non-serializable object, say.
  feed(*h.profiles, Representation::Reference, 1, 1);
  feed(*h.profiles, Representation::Serialized, 1, 1);
  feed(*h.profiles, Representation::XmlMessage, 5000, 100);
  feed(*h.profiles, Representation::SaxEventsCompact, 800, 100);
  for (int i = 0; i < 200; ++i) {
    AdaptivePolicy::Choice c =
        h.choose(Representation::SaxEventsCompact, applicable);
    EXPECT_TRUE(c.representation == Representation::XmlMessage ||
                c.representation == Representation::SaxEventsCompact);
    EXPECT_TRUE(c.probe == Representation::Auto ||
                c.probe == Representation::XmlMessage ||
                c.probe == Representation::SaxEventsCompact)
        << representation_name(c.probe);
    if (i == 100) h.policy->decide_now();
  }
  EXPECT_NE(h.policy->current(kOp), Representation::Reference);
  EXPECT_NE(h.policy->current(kOp), Representation::Serialized);
}

TEST(AdaptivePolicyTest, ProbesRoundRobinTheAlternatives) {
  AdaptivePolicy::Config config = config_for(AdaptiveObjective::Latency);
  config.sample_fraction = 1.0;
  Harness h(config);
  const std::vector<Representation> applicable = {
      Representation::XmlMessage, Representation::Serialized,
      Representation::ReflectionCopy};
  std::vector<Representation> probes;
  for (int i = 0; i < 6; ++i)
    probes.push_back(h.choose(Representation::ReflectionCopy, applicable).probe);
  // Current (ReflectionCopy) is never probed; the others alternate.
  EXPECT_EQ(probes, (std::vector<Representation>{
                        Representation::XmlMessage, Representation::Serialized,
                        Representation::XmlMessage, Representation::Serialized,
                        Representation::XmlMessage, Representation::Serialized}));
  EXPECT_EQ(h.policy->explore_stores(), 6u);
}

TEST(AdaptivePolicyTest, MemoryPressureForcesBytesObjectiveWithHysteresis) {
  Harness h(config_for(AdaptiveObjective::Latency));
  std::atomic<std::uint64_t> bytes{0};
  h.policy->set_bytes_signal([&] { return bytes.load(); },
                             /*budget_bytes=*/1000);
  h.choose(Representation::ReflectionCopy);
  // Latency favors ReflectionCopy; bytes favor Serialized.
  feed(*h.profiles, Representation::ReflectionCopy, 100, 12994);
  feed(*h.profiles, Representation::Serialized, 1000, 2530);
  const std::uint64_t pressure_events =
      obs::event_log().count(obs::EventKind::MemoryPressure);
  h.policy->decide_now();
  EXPECT_EQ(h.policy->current(kOp), Representation::ReflectionCopy);
  EXPECT_FALSE(h.policy->memory_pressure());

  bytes = 950;  // > 0.90 * budget: enter pressure
  h.policy->decide_now();
  EXPECT_TRUE(h.policy->memory_pressure());
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);
  EXPECT_EQ(h.policy->pressure_transitions(), 1u);

  bytes = 800;  // inside the hysteresis band: stays under pressure
  h.policy->decide_now();
  EXPECT_TRUE(h.policy->memory_pressure());
  EXPECT_EQ(h.policy->current(kOp), Representation::Serialized);

  bytes = 500;  // < 0.70 * budget: exit, latency objective resumes
  h.policy->decide_now();
  EXPECT_FALSE(h.policy->memory_pressure());
  EXPECT_EQ(h.policy->current(kOp), Representation::ReflectionCopy);
  EXPECT_EQ(h.policy->pressure_transitions(), 2u);
  EXPECT_EQ(obs::event_log().count(obs::EventKind::MemoryPressure),
            pressure_events + 2);
}

TEST(AdaptivePolicyTest, DecisionsTickOnTheInjectedClockOnly) {
  AdaptivePolicy::Config config = config_for(AdaptiveObjective::Latency);
  config.decision_interval = std::chrono::milliseconds(1000);
  Harness h(config);
  h.choose();  // arms the interval
  h.clock.advance(std::chrono::milliseconds(999));
  h.choose();
  EXPECT_EQ(h.policy->decisions(), 0u);
  h.clock.advance(std::chrono::milliseconds(2));
  h.choose();
  EXPECT_EQ(h.policy->decisions(), 1u);
  // The tick re-arms from the decision, not from every store.
  h.clock.advance(std::chrono::milliseconds(500));
  h.choose();
  EXPECT_EQ(h.policy->decisions(), 1u);
}

TEST(AdaptivePolicyTest, SampleStreamIsSeedReproducible) {
  AdaptivePolicy::Config config = config_for(AdaptiveObjective::Latency);
  config.sample_fraction = 0.25;
  config.seed = 42;
  auto run = [](const AdaptivePolicy::Config& c) {
    Harness h(c);
    std::vector<Representation> probes;
    for (int i = 0; i < 400; ++i) probes.push_back(h.choose().probe);
    return probes;
  };
  const std::vector<Representation> a = run(config);
  const std::vector<Representation> b = run(config);
  EXPECT_EQ(a, b);  // same seed -> identical exploration, sample by sample
  AdaptivePolicy::Config other = config;
  other.seed = 43;
  EXPECT_NE(a, run(other));  // and the seed genuinely drives it
}

TEST(AdaptivePolicyTest, SnapshotAndJsonExposeTheModel) {
  Harness h(config_for(AdaptiveObjective::Weighted));
  h.choose(Representation::ReflectionCopy);
  feed(*h.profiles, Representation::ReflectionCopy, 1000, 10000);
  feed(*h.profiles, Representation::Serialized, 100, 2000);
  h.policy->decide_now();
  const std::vector<AdaptivePolicy::OperationState> ops = h.policy->snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].service, kService);
  EXPECT_EQ(ops[0].operation, kOp);
  EXPECT_EQ(ops[0].representation, Representation::Serialized);
  EXPECT_EQ(ops[0].static_choice, Representation::ReflectionCopy);
  EXPECT_EQ(ops[0].switches, 1u);
  ASSERT_EQ(ops[0].candidates.size(), all_but_reference().size());
  bool saw_serialized = false;
  for (const auto& c : ops[0].candidates)
    if (c.representation == Representation::Serialized) {
      saw_serialized = true;
      EXPECT_NEAR(c.hit_ns, 100, 1e-6);
      EXPECT_NEAR(c.bytes_per_entry, 2000, 1e-6);
      EXPECT_GE(c.score, 0);
    }
  EXPECT_TRUE(saw_serialized);

  const std::string json = h.policy->json();
  EXPECT_NE(json.find("\"objective\": \"weighted\""), std::string::npos);
  EXPECT_NE(json.find("\"operation\": \"doGoogleSearch\""), std::string::npos);
  EXPECT_NE(json.find("\"representation\": \"Java serialization\""),
            std::string::npos);
  EXPECT_NE(json.find("\"memory_pressure\": false"), std::string::npos);
}

}  // namespace
}  // namespace wsc::cache
