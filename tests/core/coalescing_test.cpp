// Single-flight miss coalescing, stale-while-revalidate, and soft-TTL
// refresh-ahead (DESIGN.md §11).
//
// The deterministic actor in these tests is GateTransport: it parks every
// wire call on a condition variable while the gate is closed, so a "slow
// leader" or an N-thread herd is scripted, not timed.  Condition-variable
// waits need real time (a ManualClock cannot wake a parked follower), so
// the timeout tests use short real deadlines; everything else is
// gate-sequenced and free of sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "http/cache_headers.hpp"
#include "obs/events.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/retry.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::milliseconds;
using std::chrono::seconds;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/coalesce";

/// Transport decorator that parks every post() while the gate is closed,
/// and can be told to throw instead of forwarding once released.
class GateTransport final : public transport::Transport {
 public:
  explicit GateTransport(std::shared_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  transport::WireResponse post(const util::Uri& endpoint,
                               const transport::WireRequest& request) override {
    bool fail;
    {
      std::unique_lock lock(mu_);
      ++calls_;
      arrived_.notify_all();
      released_.wait(lock, [this] { return open_; });
      fail = fail_;
    }
    if (fail)
      throw TransportError("gate: scripted wire failure", /*retryable=*/false);
    return inner_->post(endpoint, request);
  }
  using Transport::post;

  void open() {
    std::lock_guard lock(mu_);
    open_ = true;
    released_.notify_all();
  }
  void close() {
    std::lock_guard lock(mu_);
    open_ = false;
  }
  void fail_released_calls() {
    std::lock_guard lock(mu_);
    fail_ = true;
  }
  /// Block until at least n calls have arrived at the gate (counting every
  /// call since construction, parked or already released).
  void await_calls(int n) {
    std::unique_lock lock(mu_);
    arrived_.wait(lock, [&] { return calls_ >= n; });
  }
  int calls() const {
    std::lock_guard lock(mu_);
    return calls_;
  }

 private:
  std::shared_ptr<Transport> inner_;
  mutable std::mutex mu_;
  std::condition_variable arrived_, released_;
  int calls_ = 0;
  bool open_ = false;
  bool fail_ = false;
};

struct Rig {
  explicit Rig(CachePolicy policy, CachingServiceClient::Options extra = {}) {
    auto inproc = std::make_shared<transport::InProcessTransport>();
    inproc->bind(kEndpoint, make_test_service());
    gate = std::make_shared<GateTransport>(inproc);
    cache = std::make_shared<ResponseCache>(ResponseCache::Config{}, clock);
    CachingServiceClient::Options options = std::move(extra);
    options.policy = std::move(policy);
    client = std::make_unique<CachingServiceClient>(
        gate, test_description(), kEndpoint, cache, std::move(options));
  }

  std::string echo(const std::string& s) {
    return client->invoke("echoString", {{"s", Object::make(s)}})
        .as<std::string>();
  }

  /// Poll (real time) until pred() holds or ~2s elapse.
  template <typename Pred>
  static bool eventually(Pred pred) {
    for (int i = 0; i < 2000; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(milliseconds(1));
    }
    return pred();
  }

  util::ManualClock clock;
  std::shared_ptr<GateTransport> gate;
  std::shared_ptr<ResponseCache> cache;
  std::unique_ptr<CachingServiceClient> client;
};

CachePolicy plain_policy(milliseconds ttl = std::chrono::hours(1)) {
  CachePolicy policy;
  policy.cacheable("echoString", ttl);
  return policy;
}

/// Launch `n` concurrent echo("same") calls; join() returns when all ended.
struct Herd {
  Herd(Rig& rig, int n) : results(n), errors(n) {
    threads.reserve(n);
    for (int i = 0; i < n; ++i)
      threads.emplace_back([&rig, this, i] {
        try {
          results[i] = rig.echo("same");
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
  }
  void join() {
    for (auto& t : threads) t.join();
  }
  std::vector<std::thread> threads;
  std::vector<std::string> results;
  std::vector<std::exception_ptr> errors;
};

// --- The herd: N identical misses, one backend call ---------------------

TEST(CoalescingTest, HerdOfIdenticalMissesMakesOneBackendCall) {
  constexpr int kThreads = 16;
  Rig rig(plain_policy());
  Herd herd(rig, kThreads);
  // One leader reaches the wire and parks at the gate; every other thread
  // must end up parked on its flight before we let the call finish.
  rig.gate->await_calls(1);
  ASSERT_TRUE(Rig::eventually([&] {
    return rig.cache->stats().coalesced_waits >= kThreads - 1;
  }));
  rig.gate->open();
  herd.join();

  EXPECT_EQ(rig.gate->calls(), 1);  // the whole point
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(herd.errors[i], nullptr);
    EXPECT_EQ(herd.results[i], "echo:same");
  }
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.coalesced_waits, kThreads - 1u);
  EXPECT_EQ(stats.coalesced_failures, 0u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(CoalescingTest, DisabledCoalescingMakesOneCallPerCaller) {
  constexpr int kThreads = 4;
  CachingServiceClient::Options options;
  options.coalesce_misses = false;
  Rig rig(plain_policy(), options);
  Herd herd(rig, kThreads);
  // Without single-flight, all four misses reach the wire SIMULTANEOUSLY —
  // four calls parked at the closed gate is the thundering herd itself.
  rig.gate->await_calls(kThreads);
  rig.gate->open();
  herd.join();
  EXPECT_EQ(rig.gate->calls(), kThreads);
  EXPECT_EQ(rig.cache->stats().coalesced_waits, 0u);
}

// --- Leader failure: ONE broadcast, not N retries -----------------------

TEST(CoalescingTest, LeaderFailureIsBroadcastToAllFollowersOnce) {
  constexpr int kThreads = 8;
  const std::uint64_t failures_before =
      obs::event_log().count(obs::EventKind::LeaderFailure);
  Rig rig(plain_policy());
  Herd herd(rig, kThreads);
  rig.gate->await_calls(1);
  ASSERT_TRUE(Rig::eventually([&] {
    return rig.cache->stats().coalesced_waits >= kThreads - 1;
  }));
  rig.gate->fail_released_calls();
  rig.gate->open();
  herd.join();

  EXPECT_EQ(rig.gate->calls(), 1);  // nobody retried the origin
  int failed = 0;
  for (auto& error : herd.errors) {
    if (!error) continue;
    ++failed;
    EXPECT_THROW(std::rethrow_exception(error), TransportError);
  }
  EXPECT_EQ(failed, kThreads);  // everyone saw the one failure
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.coalesced_failures, kThreads - 1u);
  EXPECT_EQ(obs::event_log().count(obs::EventKind::LeaderFailure),
            failures_before + 1);
}

TEST(CoalescingTest, FollowersDegradeToStaleOnBroadcastFailure) {
  constexpr int kThreads = 4;
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.stale_if_error("echoString", seconds(10));
  Rig rig(std::move(policy));
  rig.gate->open();
  EXPECT_EQ(rig.echo("same"), "echo:same");  // warm: wire call #1
  rig.clock.advance(milliseconds(200));      // expire within grace
  rig.gate->close();
  rig.gate->fail_released_calls();

  Herd herd(rig, kThreads);
  rig.gate->await_calls(2);  // the refetch leader parked at the gate
  ASSERT_TRUE(Rig::eventually([&] {
    return rig.cache->stats().coalesced_waits >= kThreads - 1;
  }));
  rig.gate->open();  // leader's call fails; ONE failure broadcast
  herd.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(herd.errors[i], nullptr) << "caller " << i << " threw";
    EXPECT_EQ(herd.results[i], "echo:same");  // stale value, correct bytes
  }
  // Leader and every follower each made their own degraded-mode decision.
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.stale_serves, kThreads + 0u);
  EXPECT_EQ(stats.coalesced_failures, kThreads - 1u);
  EXPECT_EQ(rig.gate->calls(), 2);  // warm + the one failed refetch
}

// --- Follower deadlines --------------------------------------------------

TEST(CoalescingTest, FollowerDeadlineExpiresWhileLeaderIsSlow) {
  CachingServiceClient::Options options;
  options.coalesce_wait = milliseconds(50);
  Rig rig(plain_policy(), options);

  std::thread leader([&] { EXPECT_EQ(rig.echo("same"), "echo:same"); });
  rig.gate->await_calls(1);
  // Follower: parks 50ms on the leader's flight, then gives up.  No stale
  // entry, no grace -> TimeoutError, and the origin saw ONE call.
  EXPECT_THROW(rig.echo("same"), TimeoutError);
  EXPECT_EQ(rig.gate->calls(), 1);
  rig.gate->open();
  leader.join();
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.coalesced_waits, 1u);
  EXPECT_EQ(stats.coalesced_failures, 0u);
}

TEST(CoalescingTest, FollowerDeadlineFallsBackToStaleWithinGrace) {
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.stale_if_error("echoString", seconds(10));
  CachingServiceClient::Options options;
  options.coalesce_wait = milliseconds(50);
  Rig rig(std::move(policy), options);
  rig.gate->open();
  EXPECT_EQ(rig.echo("same"), "echo:same");  // warm: wire call #1
  rig.clock.advance(milliseconds(200));      // expire within grace
  rig.gate->close();

  std::thread leader([&] { EXPECT_EQ(rig.echo("same"), "echo:same"); });
  rig.gate->await_calls(2);  // the refetch leader is parked (slow)
  // Follower gives up after 50ms but holds a grace-eligible stale entry:
  // it degrades to the stale value instead of surfacing the timeout.
  EXPECT_EQ(rig.echo("same"), "echo:same");
  StatsSnapshot mid = rig.cache->stats();
  EXPECT_EQ(mid.stale_serves, 1u);
  EXPECT_EQ(mid.coalesced_waits, 1u);
  rig.gate->open();
  leader.join();
  EXPECT_EQ(rig.gate->calls(), 2);
  EXPECT_EQ(rig.cache->stats().stores, 2u);  // the slow leader did land
}

// --- Shutdown with parked waiters ---------------------------------------

TEST(CoalescingTest, ShutdownWakesParkedFollowers) {
  constexpr int kThreads = 4;
  Rig rig(plain_policy());
  Herd herd(rig, kThreads);
  rig.gate->await_calls(1);
  ASSERT_TRUE(Rig::eventually([&] {
    return rig.cache->stats().coalesced_waits >= kThreads - 1;
  }));
  rig.cache->shutdown_flights();
  // Followers wake with FlightWait::Shutdown and surface a plain Error
  // (not a timeout: shutdown is immediate).  The leader is still parked at
  // the gate; release it — its complete_flight becomes a no-op.
  rig.gate->open();
  herd.join();

  int shutdown_errors = 0, ok = 0;
  for (int i = 0; i < kThreads; ++i) {
    if (!herd.errors[i]) {
      ++ok;
      EXPECT_EQ(herd.results[i], "echo:same");
      continue;
    }
    ++shutdown_errors;
    try {
      std::rethrow_exception(herd.errors[i]);
    } catch (const TransportError&) {
      ADD_FAILURE() << "follower surfaced a transport error on shutdown";
    } catch (const Error&) {
      // expected: "cache shut down while waiting..."
    }
  }
  EXPECT_EQ(ok, 1);  // the leader
  EXPECT_EQ(shutdown_errors, kThreads - 1);
}

TEST(CoalescingTest, DestructionWithWaitersParkedIsCleanAndDeadlockFree) {
  constexpr int kThreads = 3;
  auto rig = std::make_unique<Rig>(plain_policy());
  Herd herd(*rig, kThreads);
  rig->gate->await_calls(1);
  ASSERT_TRUE(Rig::eventually([&] {
    return rig->cache->stats().coalesced_waits >= kThreads - 1;
  }));
  // Shut flights down exactly as ~ResponseCache would, then release the
  // leader so every thread (and only then the rig) can wind down.
  rig->cache->shutdown_flights();
  rig->gate->open();
  herd.join();
  rig.reset();  // full destruction: refresh queue joined, second shutdown
                // is a no-op, nothing leaks, nothing deadlocks
}

// --- NoValue: leader's answer was not storable --------------------------

TEST(CoalescingTest, UnstorableLeaderResultReleasesFollowersToTheirOwnCalls) {
  constexpr int kThreads = 4;
  // The origin says no-store on every response: the leader completes its
  // flight with NO value, and each follower falls back to its own call.
  auto inproc = std::make_shared<transport::InProcessTransport>();
  http::CacheDirectives no_store;
  no_store.no_store = true;
  inproc->bind(kEndpoint, make_test_service(), no_store);
  auto gate = std::make_shared<GateTransport>(inproc);
  util::ManualClock clock;
  auto cache = std::make_shared<ResponseCache>(ResponseCache::Config{}, clock);
  CachingServiceClient::Options options;
  options.policy = plain_policy();
  CachingServiceClient client(gate, test_description(), kEndpoint, cache,
                              std::move(options));

  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      if (client.invoke("echoString", {{"s", Object::make(std::string("x"))}})
              .as<std::string>() == "echo:x")
        ++ok;
    });
  gate->await_calls(1);
  ASSERT_TRUE(Rig::eventually(
      [&] { return cache->stats().coalesced_waits >= kThreads - 1; }));
  gate->open();
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  // Leader called once; every follower woke with NoValue and called too.
  EXPECT_EQ(gate->calls(), kThreads);
  EXPECT_EQ(cache->stats().stores, 0u);
}

// --- Stale-while-revalidate ----------------------------------------------

TEST(CoalescingTest, StaleWithinGraceIsServedWithoutBlockingOnTheWire) {
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.stale_while_revalidate("echoString", seconds(10));
  Rig rig(std::move(policy));
  rig.gate->open();
  EXPECT_EQ(rig.echo("same"), "echo:same");  // warm: 1 call, 1 store
  ASSERT_EQ(rig.gate->calls(), 1);
  rig.clock.advance(milliseconds(150));  // 50ms past expiry, within grace
  rig.gate->close();                     // the wire is now SLOW

  // The entry is expired-within-grace: this call must return the stale
  // value IMMEDIATELY even though the refresh it kicked off is parked at
  // the gate — the non-blocking property, not a fast-backend accident.
  EXPECT_EQ(rig.echo("same"), "echo:same");
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.stale_while_revalidate_served, 1u);

  // Release the wire: the background refresh lands as call #2 + store #2.
  rig.gate->open();
  ASSERT_TRUE(Rig::eventually([&] { return rig.cache->stats().stores >= 2; }));
  EXPECT_EQ(rig.gate->calls(), 2);
  // The entry is fresh again: the next call is a plain hit.
  EXPECT_EQ(rig.echo("same"), "echo:same");
  EXPECT_EQ(rig.gate->calls(), 2);
}

TEST(CoalescingTest, ExpiryStormOnSwrKeyNeverBlocksCallers) {
  constexpr int kThreads = 8;
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.stale_while_revalidate("echoString", seconds(10));
  Rig rig(std::move(policy));
  rig.gate->open();
  EXPECT_EQ(rig.echo("same"), "echo:same");  // warm
  const int warm_calls = rig.gate->calls();
  rig.clock.advance(milliseconds(150));  // everyone arrives to a stale entry

  Herd herd(rig, kThreads);
  herd.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(herd.errors[i], nullptr);
    EXPECT_EQ(herd.results[i], "echo:same");
  }
  // All callers were served (stale or, after the refresh landed, fresh);
  // the refresh itself was deduplicated by the flight table.  The bound is
  // not exactly 1 extra call: a caller that read "stale" just as the
  // refresh retired its flight may lead one more — but never a herd.
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_GE(stats.stale_while_revalidate_served, 1u);
  ASSERT_TRUE(Rig::eventually(
      [&] { return rig.cache->stats().stores >= 2; }));
  EXPECT_LE(rig.gate->calls(), warm_calls + 3);
}

TEST(CoalescingTest, BeyondSwrGraceFallsBackToSynchronousMiss) {
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.stale_while_revalidate("echoString", milliseconds(200));
  Rig rig(std::move(policy));
  rig.gate->open();
  rig.echo("same");
  rig.clock.advance(milliseconds(500));  // 400ms past expiry > 200ms grace
  EXPECT_EQ(rig.echo("same"), "echo:same");
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.stale_while_revalidate_served, 0u);
  EXPECT_EQ(rig.gate->calls(), 2);  // a plain synchronous refetch
}

// --- Refresh-ahead -------------------------------------------------------

TEST(CoalescingTest, SoftTtlHitTriggersExactlyOneBackgroundRefresh) {
  const std::uint64_t events_before =
      obs::event_log().count(obs::EventKind::RefreshAhead);
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.refresh_ahead("echoString", 0.5);
  Rig rig(std::move(policy));
  rig.gate->open();
  EXPECT_EQ(rig.echo("same"), "echo:same");  // warm; soft TTL = 50ms
  rig.clock.advance(milliseconds(60));       // fresh, past the soft TTL

  // First hit past the soft TTL wins the claim and schedules ONE refresh;
  // further hits (claim consumed) trigger nothing.
  EXPECT_EQ(rig.echo("same"), "echo:same");
  EXPECT_EQ(rig.echo("same"), "echo:same");
  EXPECT_EQ(rig.echo("same"), "echo:same");
  StatsSnapshot stats = rig.cache->stats();
  EXPECT_EQ(stats.refresh_ahead_triggered, 1u);
  EXPECT_EQ(obs::event_log().count(obs::EventKind::RefreshAhead),
            events_before + 1);

  // The refresh lands in the background and re-arms the claim...
  ASSERT_TRUE(Rig::eventually([&] { return rig.cache->stats().stores >= 2; }));
  EXPECT_EQ(rig.gate->calls(), 2);
  // ...so the cycle repeats: past the NEW soft TTL, one more trigger.
  rig.clock.advance(milliseconds(60));
  EXPECT_EQ(rig.echo("same"), "echo:same");
  EXPECT_EQ(rig.cache->stats().refresh_ahead_triggered, 2u);
}

TEST(CoalescingTest, HitsBeforeSoftTtlNeverTrigger) {
  CachePolicy policy = plain_policy(milliseconds(100));
  policy.refresh_ahead("echoString", 0.8);
  Rig rig(std::move(policy));
  rig.gate->open();
  rig.echo("same");
  rig.clock.advance(milliseconds(40));  // soft TTL is 80ms
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rig.echo("same"), "echo:same");
  EXPECT_EQ(rig.cache->stats().refresh_ahead_triggered, 0u);
  EXPECT_EQ(rig.gate->calls(), 1);
}

// --- Breaker open mid-herd -----------------------------------------------

TEST(CoalescingTest, OpenBreakerFailsTheWholeHerdWithoutTouchingTheWire) {
  constexpr int kThreads = 6;
  // Stack: inproc -> gate (failing) -> retrying with a low breaker
  // threshold.  The breaker lives ABOVE the gate, so once it opens nothing
  // reaches the gate's call counter.
  auto inproc = std::make_shared<transport::InProcessTransport>();
  inproc->bind(kEndpoint, make_test_service());
  auto gate = std::make_shared<GateTransport>(inproc);
  gate->fail_released_calls();
  gate->open();  // origin hard-down from the start, failing instantly
  transport::RetryPolicy retry_policy;
  retry_policy.max_attempts = 1;
  retry_policy.breaker_threshold = 3;
  retry_policy.breaker_cooldown = std::chrono::hours(1);
  auto retrying =
      std::make_shared<transport::RetryingTransport>(gate, retry_policy);
  util::ManualClock clock;
  auto cache = std::make_shared<ResponseCache>(ResponseCache::Config{}, clock);
  CachingServiceClient::Options options;
  options.policy = plain_policy();
  CachingServiceClient client(retrying, test_description(), kEndpoint, cache,
                              std::move(options));

  auto call = [&] {
    return client.invoke("echoString", {{"s", Object::make(std::string("x"))}});
  };
  // Trip the breaker: 3 straight failures.
  for (int i = 0; i < 3; ++i) EXPECT_THROW(call(), TransportError);
  const int wire_calls_at_open = gate->calls();

  // The herd: every caller fails fast — via its own BreakerOpenError or
  // via the one broadcast from whoever led a flight.  Nobody touches the
  // wire.  (BreakerOpenError is-a TransportError, so one catch covers
  // both shapes.)
  std::vector<std::thread> threads;
  std::atomic<int> failed{0};
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&] {
      try {
        call();
      } catch (const TransportError&) {
        ++failed;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failed.load(), kThreads);
  EXPECT_EQ(gate->calls(), wire_calls_at_open);
}

// --- Direct flight API ---------------------------------------------------

class UnitValue final : public CachedValue {
 public:
  reflect::Object retrieve() const override { return Object::make(7); }
  Representation representation() const override {
    return Representation::Reference;
  }
  std::size_t memory_size() const override { return 16; }
};

TEST(FlightApiTest, LeaderCompletesFollowerReceivesValue) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  CacheKey key("k");
  ResponseCache::FlightHandle leader = cache.join_flight(key.ref());
  ASSERT_TRUE(static_cast<bool>(leader));
  EXPECT_TRUE(leader.leader);
  ResponseCache::FlightHandle follower = cache.join_flight(key.ref());
  ASSERT_TRUE(static_cast<bool>(follower));
  EXPECT_FALSE(follower.leader);
  EXPECT_EQ(leader.flight, follower.flight);

  std::thread waiter([&] {
    ResponseCache::FlightResult r = cache.wait_flight(follower, seconds(5));
    EXPECT_EQ(r.outcome, ResponseCache::FlightWait::Value);
    EXPECT_NE(r.value, nullptr);
  });
  cache.complete_flight(leader, std::make_shared<UnitValue>());
  waiter.join();
  // The flight is retired: the next joiner leads a NEW flight.
  ResponseCache::FlightHandle next = cache.join_flight(key.ref());
  EXPECT_TRUE(next.leader);
  cache.complete_flight(next, nullptr);
  EXPECT_EQ(cache.stats().coalesced_waits, 1u);
}

TEST(FlightApiTest, FailureDeliversTheExceptionAndCountsOnce) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  CacheKey key("k");
  ResponseCache::FlightHandle leader = cache.join_flight(key.ref());
  ResponseCache::FlightHandle follower = cache.join_flight(key.ref());
  cache.fail_flight(leader, std::make_exception_ptr(TransportError("boom")));
  ResponseCache::FlightResult r = cache.wait_flight(follower, seconds(1));
  EXPECT_EQ(r.outcome, ResponseCache::FlightWait::Error);
  ASSERT_NE(r.error, nullptr);
  EXPECT_THROW(std::rethrow_exception(r.error), TransportError);
  EXPECT_EQ(cache.stats().coalesced_failures, 1u);
}

TEST(FlightApiTest, CompletingTwiceAndFollowerMisuseAreNoOps) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  CacheKey key("k");
  ResponseCache::FlightHandle leader = cache.join_flight(key.ref());
  ResponseCache::FlightHandle follower = cache.join_flight(key.ref());
  cache.complete_flight(follower, nullptr);  // follower cannot complete
  cache.complete_flight(leader, nullptr);
  cache.fail_flight(leader, std::make_exception_ptr(Error("late")));  // no-op
  ResponseCache::FlightResult r = cache.wait_flight(follower, seconds(1));
  EXPECT_EQ(r.outcome, ResponseCache::FlightWait::NoValue);
  EXPECT_EQ(r.error, nullptr);
  EXPECT_EQ(cache.stats().coalesced_failures, 0u);
}

TEST(FlightApiTest, WaitOnNullOrLeaderHandleReturnsShutdownImmediately) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  ResponseCache::FlightHandle null_handle;
  EXPECT_EQ(cache.wait_flight(null_handle, seconds(5)).outcome,
            ResponseCache::FlightWait::Shutdown);
  CacheKey key("k");
  ResponseCache::FlightHandle leader = cache.join_flight(key.ref());
  EXPECT_EQ(cache.wait_flight(leader, seconds(5)).outcome,
            ResponseCache::FlightWait::Shutdown);
  EXPECT_EQ(cache.stats().coalesced_waits, 0u);  // misuse never counts
  cache.complete_flight(leader, nullptr);
}

TEST(FlightApiTest, ShutdownMakesJoinReturnNullHandles) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  cache.shutdown_flights();
  EXPECT_FALSE(static_cast<bool>(cache.join_flight(CacheKey("k").ref())));
  cache.shutdown_flights();  // idempotent
}

TEST(FlightApiTest, SeparateKeysFlySeparately) {
  util::ManualClock clock;
  ResponseCache cache(ResponseCache::Config{}, clock);
  ResponseCache::FlightHandle a = cache.join_flight(CacheKey("a").ref());
  ResponseCache::FlightHandle b = cache.join_flight(CacheKey("b").ref());
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
  EXPECT_NE(a.flight, b.flight);
  cache.complete_flight(a, nullptr);
  cache.complete_flight(b, nullptr);
}

}  // namespace
}  // namespace wsc::cache
