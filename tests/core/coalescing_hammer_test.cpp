// Concurrency hammer for the single-flight layer (runs under TSan in CI):
// mixed hit / miss / expiry / invalidate traffic on ONE hot key, with
// stale-while-revalidate and refresh-ahead enabled, against a real clock —
// every ordering the scheduler can produce is a legal ordering here, and
// the assertions check invariants, not schedules.
//
// This file is part of hitpath_tests, whose binary also counts heap
// allocations via a replaced operator new; nothing here asserts on
// allocation counts, it only rides along for the tsan/asan jobs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/client.hpp"
#include "tests/soap/test_service.hpp"
#include "transport/inproc_transport.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace wsc::cache {
namespace {

using reflect::Object;
using std::chrono::milliseconds;
using wsc::soap::testing::make_test_service;
using wsc::soap::testing::test_description;

constexpr const char* kEndpoint = "inproc://svc/hammer";

struct HammerRig {
  explicit HammerRig(CachePolicy policy) {
    auto inproc = std::make_shared<transport::InProcessTransport>();
    inproc->bind(kEndpoint, make_test_service());
    cache = std::make_shared<ResponseCache>(ResponseCache::Config{}, clock);
    CachingServiceClient::Options options;
    options.policy = std::move(policy);
    options.coalesce_wait = milliseconds(2000);
    client = std::make_unique<CachingServiceClient>(
        inproc, test_description(), kEndpoint, cache, std::move(options));
  }

  util::SteadyClock clock;  // real time: entries really expire mid-run
  std::shared_ptr<ResponseCache> cache;
  std::unique_ptr<CachingServiceClient> client;
};

TEST(CoalescingHammerTest, MixedTrafficOnOneHotKeyStaysCoherent) {
  CachePolicy policy;
  // A TTL of a few ms against the real clock: entries expire continuously
  // under the herd, so every path — fresh hit, soft-TTL claim, SWR stale
  // serve, coalesced miss, synchronous miss — runs concurrently.
  policy.cacheable("echoString", milliseconds(5));
  policy.stale_while_revalidate("echoString", milliseconds(3));
  policy.refresh_ahead("echoString", 0.5);
  HammerRig rig(policy);

  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Thread 0 sporadically invalidates the hot key mid-flight, and
        // every thread occasionally yields so expiry interleaves.
        if (t == 0 && i % 17 == 0) rig.cache->clear();
        try {
          std::string got =
              rig.client
                  ->invoke("echoString",
                           {{"s", Object::make(std::string("hot"))}})
                  .as<std::string>();
          if (got != "echo:hot") ++wrong;
        } catch (const Error&) {
          // Acceptable under the storm (e.g. a coalesce deadline on a
          // heavily loaded TSan run); correctness here means no wrong
          // VALUE and no data race, not zero failures.
        }
        if (i % 13 == 0) std::this_thread::yield();
      }
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(wrong.load(), 0);
  // The flight table must be fully drained: no leaked in-flight entries
  // keeping followers parked (join after the storm must lead instantly).
  ResponseCache::FlightHandle probe =
      rig.cache->join_flight(CacheKey("probe").ref());
  EXPECT_TRUE(probe.leader);
  rig.cache->complete_flight(probe, nullptr);
}

TEST(CoalescingHammerTest, ShutdownUnderLoadReleasesEveryThread) {
  CachePolicy policy;
  policy.cacheable("echoString", milliseconds(2));
  HammerRig rig(policy);

  constexpr int kThreads = 6;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          rig.client->invoke("echoString",
                             {{"s", Object::make(std::string("hot"))}});
        } catch (const Error&) {
          // After shutdown_flights() coalesced callers surface an Error;
          // the loop keeps hammering to exercise the down path too.
        }
      }
    });
  std::this_thread::sleep_for(milliseconds(50));
  rig.cache->shutdown_flights();  // flights refuse new joins from here on
  std::this_thread::sleep_for(milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
  // Post-shutdown the client still works, just without coalescing.
  EXPECT_EQ(rig.client
                ->invoke("echoString",
                         {{"s", Object::make(std::string("after"))}})
                .as<std::string>(),
            "echo:after");
}

}  // namespace
}  // namespace wsc::cache
